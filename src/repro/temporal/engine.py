"""Time-parameterised query processing.

The §VII vision is that "an indoor space model must be able to return
corresponding indoor distances for different time points" — and the same
goes for queries: a kNN for "open pharmacies" at 3 a.m. must not route
through doors that are locked at 3 a.m.

:class:`TemporalQueryEngine` keeps one :class:`~repro.index.framework.IndexFramework`
per door *regime* (distinct open-door set), sharing a single object store
across all of them — partition entities are shared between snapshots, so
buckets remain valid regardless of which doors are currently passable.
Building a regime's framework recomputes M_d2d for the reduced door graph
once; subsequent queries at any time point in that regime are as fast as
static ones.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.index.objects import DEFAULT_CELL_SIZE, IndoorObject, ObjectStore
from repro.queries.knn_query import knn_query
from repro.queries.range_query import range_query
from repro.temporal.temporal_space import TemporalIndoorSpace


class TemporalQueryEngine:
    """Range / kNN queries evaluated "as of" a time point."""

    def __init__(
        self,
        temporal: TemporalIndoorSpace,
        objects: Optional[Iterable[IndoorObject]] = None,
        cell_size: float = DEFAULT_CELL_SIZE,
    ) -> None:
        self.temporal = temporal
        # One store for all regimes: host partitions don't depend on doors.
        self._store = ObjectStore(temporal.base_space, cell_size)
        if objects is not None:
            self._store.add_all(objects)
        self._frameworks: Dict[FrozenSet[int], IndexFramework] = {}

    # ------------------------------------------------------------------
    # Object maintenance (shared across all regimes)
    # ------------------------------------------------------------------
    @property
    def objects(self) -> ObjectStore:
        """The shared object store."""
        return self._store

    def add_object(self, obj: IndoorObject) -> int:
        """Insert an object (visible at every time point)."""
        return self._store.add(obj)

    def remove_object(self, object_id: int) -> IndoorObject:
        """Remove an object."""
        return self._store.remove(object_id)

    def move_object(self, object_id: int, new_position: Point) -> IndoorObject:
        """Relocate an object."""
        return self._store.move(object_id, new_position)

    # ------------------------------------------------------------------
    # Time-parameterised queries
    # ------------------------------------------------------------------
    def framework_at(self, t: float) -> IndexFramework:
        """The index framework for the regime in force at time ``t``
        (built on first use, cached per distinct open-door set)."""
        key = self.temporal.open_doors(t)
        framework = self._frameworks.get(key)
        if framework is None:
            snapshot = self.temporal.snapshot(t)
            framework = IndexFramework.build(snapshot).with_objects(self._store)
            self._frameworks[key] = framework
        return framework

    def range_query(
        self, t: float, position: Point, radius: float
    ) -> List[int]:
        """Algorithm 5 at time ``t``."""
        return range_query(self.framework_at(t), position, radius)

    def knn(self, t: float, position: Point, k: int) -> List[Tuple[int, float]]:
        """Algorithm 6 (k extension) at time ``t``."""
        return knn_query(self.framework_at(t), position, k)

    def distance(self, t: float, source: Point, target: Point) -> float:
        """Minimum walking distance at time ``t``."""
        return self.temporal.distance(t, source, target)

    @property
    def regime_count(self) -> int:
        """How many distinct door regimes have been indexed so far."""
        return len(self._frameworks)
