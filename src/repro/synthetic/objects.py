"""Random indoor object (POI) generation (paper §VI-B).

"Given an indoor space ..., a floor is first chosen at random, and then a
partition is picked at random on that floor.  Subsequently, a random
position within the particular indoor partition is chosen as the object's
position.  In summary, all indoor objects are distributed randomly in the
given indoor space."
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.geometry import Point
from repro.index.objects import DEFAULT_CELL_SIZE, IndoorObject, ObjectStore
from repro.model.builder import IndoorSpace
from repro.model.entities import Partition
from repro.synthetic.building import SyntheticBuilding


def random_point_in_partition(partition: Partition, rng: random.Random) -> Point:
    """Rejection-sample a uniform position inside a partition (on its base
    floor, avoiding obstacle interiors)."""
    box = partition.polygon.bounding_box
    while True:
        point = Point(
            rng.uniform(box.min_x, box.max_x),
            rng.uniform(box.min_y, box.max_y),
            partition.floor,
        )
        if partition.contains(point):
            return point


def generate_objects(
    space: IndoorSpace,
    count: int,
    seed: int = 0,
    partition_ids: Optional[Sequence[int]] = None,
) -> List[Tuple[IndoorObject, int]]:
    """``count`` uniformly random objects with their host partition ids.

    Args:
        space: the indoor space to populate.
        count: how many objects.
        seed: RNG seed; same seed, same objects.
        partition_ids: candidate host partitions (defaults to every
            partition in the space).

    Returns:
        ``(object, partition_id)`` pairs — the partition id is returned so
        bulk loading can skip the host-partition lookup.
    """
    rng = random.Random(seed)
    candidates = list(partition_ids) if partition_ids else list(space.partition_ids)
    results: List[Tuple[IndoorObject, int]] = []
    for object_id in range(count):
        partition_id = rng.choice(candidates)
        partition = space.partition(partition_id)
        position = random_point_in_partition(partition, rng)
        results.append((IndoorObject(object_id, position), partition_id))
    return results


def build_object_store(
    building: SyntheticBuilding,
    count: int,
    seed: int = 0,
    cell_size: float = DEFAULT_CELL_SIZE,
) -> ObjectStore:
    """A populated :class:`ObjectStore` for a synthetic building.

    Mirrors the paper's generation recipe exactly: first a random floor,
    then a random partition on that floor (rooms and the hallway — objects
    are points of interest, which do not live in staircases), then a random
    position within it.
    """
    rng = random.Random(seed)
    space = building.space
    store = ObjectStore(space, cell_size)
    for object_id in range(count):
        floor = rng.randrange(building.floors)
        partition_id = rng.choice(
            building.rooms_on_floor(floor) + [building.hallway_on_floor(floor)]
        )
        partition = space.partition(partition_id)
        position = random_point_in_partition(partition, rng)
        store.add(IndoorObject(object_id, position), partition_id=partition_id)
    return store
