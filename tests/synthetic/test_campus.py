"""Tests for the campus-scale composite generator (repro.synthetic.campus)."""

import json
import math

import pytest

from repro.exceptions import ModelError
from repro.io import space_to_dict
from repro.model.validation import Severity, validate_space
from repro.synthetic import BuildingConfig, CampusConfig, generate_campus


@pytest.fixture(scope="module")
def small_campus():
    """3 buildings x 3 floors x 6 rooms, 1 skybridge per gap."""
    return generate_campus(
        CampusConfig(
            buildings=3,
            building=BuildingConfig(floors=3, rooms_per_floor=6),
            skybridges_per_gap=1,
            seed=11,
        )
    )


class TestConfig:
    def test_invalid_configs_raise(self):
        with pytest.raises(ModelError):
            CampusConfig(buildings=0)
        with pytest.raises(ModelError):
            CampusConfig(corridor_length=0.0)
        with pytest.raises(ModelError):
            CampusConfig(skybridges_per_gap=-1)

    def test_door_accounting(self, small_campus):
        config = small_campus.config
        assert config.joins_per_gap == 2  # ground corridor + 1 skybridge
        assert small_campus.door_count == config.doors_total

    def test_skybridges_capped_by_floors(self):
        config = CampusConfig(
            buildings=2,
            building=BuildingConfig(floors=2, rooms_per_floor=4),
            skybridges_per_gap=10,
        )
        assert config.joins_per_gap == 2  # corridor + the single upper floor

    def test_ten_times_paper_scale(self):
        """The labels-benchmark campus really is >= 10x the paper's
        ~1 300-door building."""
        config = CampusConfig(
            buildings=10,
            building=BuildingConfig(floors=40),
            skybridges_per_gap=2,
        )
        assert config.doors_total >= 10 * 1356


class TestStructure:
    def test_counts_and_bookkeeping(self, small_campus):
        config = small_campus.config
        assert len(small_campus.buildings) == config.buildings
        assert len(small_campus.corridor_ids) == config.buildings - 1
        assert len(small_campus.skybridge_ids) == (
            (config.buildings - 1) * (config.joins_per_gap - 1)
        )
        assert small_campus.space.num_doors == config.doors_total

    def test_validates_cleanly(self, small_campus):
        """No overlap errors and no door-off-wall warnings: corridor doors
        dock exactly on staircase landings / hallway walls."""
        issues = validate_space(small_campus.space)
        assert [i for i in issues if i.severity is Severity.ERROR] == []
        assert [i for i in issues if i.code == "door-off-wall"] == []

    def test_campus_is_connected(self, small_campus):
        """A door in the west building reaches a door in the east one."""
        space = small_campus.space
        framework_doors = space.topology.door_ids
        graph = space.distance_graph
        graph.precompute()
        from repro.index import IndexFramework

        framework = IndexFramework.build(space)
        west = framework_doors[0]
        east = framework_doors[-1]
        assert math.isfinite(framework.distance_index.distance(west, east))
        assert math.isfinite(framework.distance_index.distance(east, west))

    def test_buildings_share_the_built_space(self, small_campus):
        for building in small_campus.buildings:
            assert building.space is small_campus.space


class TestDeterminism:
    def test_same_config_same_campus(self):
        config = CampusConfig(
            buildings=2,
            building=BuildingConfig(floors=4, rooms_per_floor=6),
            skybridges_per_gap=2,
            seed=5,
        )
        first = json.dumps(
            space_to_dict(generate_campus(config).space), sort_keys=True
        )
        second = json.dumps(
            space_to_dict(generate_campus(config).space), sort_keys=True
        )
        assert first == second

    def test_seed_moves_the_skybridges(self):
        building = BuildingConfig(floors=6, rooms_per_floor=6)
        layouts = {
            json.dumps(
                space_to_dict(
                    generate_campus(
                        CampusConfig(
                            buildings=2,
                            building=building,
                            skybridges_per_gap=2,
                            seed=seed,
                        )
                    ).space
                ),
                sort_keys=True,
            )
            for seed in (1, 2, 3)
        }
        assert len(layouts) > 1
