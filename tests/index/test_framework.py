"""Tests for the assembled IndexFramework and the ObjectStore."""

import pytest

from repro.exceptions import ModelError, UnknownEntityError
from repro.geometry import Point
from repro.index import IndexFramework, IndoorObject, ObjectStore
from repro.model.figure1 import (
    HALLWAY,
    P,
    ROOM_11,
    ROOM_13,
    build_figure1,
)


@pytest.fixture
def space():
    return build_figure1()


@pytest.fixture
def objects():
    return [
        IndoorObject(1, Point(6.5, 9.0), payload="defibrillator"),
        IndoorObject(2, Point(1.0, 5.0), payload="extinguisher"),
        IndoorObject(3, Point(2.0, 8.0), payload="printer"),
    ]


class TestObjectStore:
    def test_add_resolves_host_partition(self, space, objects):
        store = ObjectStore(space)
        assert store.add(objects[0]) == ROOM_13
        assert store.add(objects[1]) == HALLWAY
        assert store.host_partition_id(1) == ROOM_13

    def test_add_with_explicit_partition_skips_lookup(self, space):
        store = ObjectStore(space)
        store.add(IndoorObject(9, Point(6.5, 9.0)), partition_id=ROOM_13)
        assert store.host_partition_id(9) == ROOM_13

    def test_duplicate_id_raises(self, space, objects):
        store = ObjectStore(space)
        store.add(objects[0])
        with pytest.raises(ModelError):
            store.add(IndoorObject(1, Point(1, 5)))

    def test_remove_and_len(self, space, objects):
        store = ObjectStore(space)
        store.add_all(objects)
        assert len(store) == 3
        removed = store.remove(2)
        assert removed.payload == "extinguisher"
        assert len(store) == 2
        assert 2 not in store
        with pytest.raises(UnknownEntityError):
            store.remove(2)

    def test_move_across_partitions(self, space, objects):
        store = ObjectStore(space)
        store.add(objects[0])
        moved = store.move(1, Point(1.0, 5.0))
        assert moved.payload == "defibrillator"
        assert store.host_partition_id(1) == HALLWAY
        assert store.objects_in(ROOM_13) == []

    def test_objects_in_and_occupied(self, space, objects):
        store = ObjectStore(space)
        store.add_all(objects)
        assert {o.object_id for o in store.objects_in(ROOM_11)} == {3}
        assert store.occupied_partitions == (HALLWAY, ROOM_11, ROOM_13)
        assert store.bucket(999) is None

    def test_add_outside_any_partition_raises(self, space):
        store = ObjectStore(space)
        with pytest.raises(ModelError):
            store.add(IndoorObject(1, Point(100, 100)))

    def test_invalid_cell_size(self, space):
        with pytest.raises(ModelError):
            ObjectStore(space, cell_size=-1)

    def test_negative_object_id_raises(self):
        with pytest.raises(ModelError):
            IndoorObject(-1, Point(0, 0))

    def test_iteration(self, space, objects):
        store = ObjectStore(space)
        store.add_all(objects)
        assert {o.object_id for o in store} == {1, 2, 3}


class TestIndexFramework:
    def test_build_assembles_everything(self, space, objects):
        framework = IndexFramework.build(space, objects)
        assert framework.distance_index.size == space.num_doors
        assert len(framework.dpt) == space.num_doors
        assert len(framework.objects) == 3
        # The R-tree is installed as the host-partition locator.
        assert space.get_host_partition(P).partition_id == ROOM_13

    def test_reference_matrix_build_matches(self, objects):
        import numpy as np

        fast = IndexFramework.build(build_figure1(), objects)
        slow = IndexFramework.build(
            build_figure1(), objects, reference_matrix=True
        )
        np.testing.assert_allclose(
            fast.distance_index.md2d, slow.distance_index.md2d
        )

    def test_memory_report(self, space, objects):
        framework = IndexFramework.build(space, objects)
        report = framework.memory_report()
        assert report["doors"] == space.num_doors
        assert report["matrix_bytes"] > 0
        assert report["dpt_bytes"] == 28 * space.num_doors
        assert report["objects"] == 3

    def test_graph_is_precomputed(self, space):
        framework = IndexFramework.build(space)
        stats = framework.graph.cache_stats()
        assert stats["fd2d_entries"] > 0
