#!/usr/bin/env python3
"""Probabilistic queries over noisy positioning (paper §I + ref [18]).

Indoor positioning is uncertain: an RFID reader places a tag "somewhere in
this room", Wi-Fi trilateration yields several candidate spots.  This demo
models staff members in a small clinic as discrete position distributions
and answers probabilistic threshold queries over exact indoor walking
distances:

* "who is within 12 m of the emergency room with probability >= 0.6?"
* "who is most likely the nearest responder (probabilistic 1-NN)?"

Run:  python examples/uncertain_positioning.py
"""

from repro import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder, PartitionKind
from repro.uncertain import UncertainObject, probabilistic_knn, probabilistic_range

WARD_A, WARD_B, CORRIDOR, ER = 1, 2, 3, 4


def build_clinic():
    builder = IndoorSpaceBuilder()
    builder.add_partition(WARD_A, rectangle(0, 0, 12, 8), name="ward A")
    builder.add_partition(WARD_B, rectangle(12, 0, 24, 8), name="ward B")
    builder.add_partition(
        CORRIDOR, rectangle(0, 8, 36, 12), PartitionKind.HALLWAY, name="corridor"
    )
    builder.add_partition(ER, rectangle(24, 0, 36, 8), name="emergency room")
    builder.add_door(1, Segment(Point(5, 8), Point(7, 8)), connects=(WARD_A, CORRIDOR))
    builder.add_door(2, Segment(Point(17, 8), Point(19, 8)), connects=(WARD_B, CORRIDOR))
    builder.add_door(3, Segment(Point(29, 8), Point(31, 8)), connects=(ER, CORRIDOR))
    return builder.build()


def staff():
    """Three staff members with increasingly uncertain positions."""
    return [
        # Dr. Amin: badge seen at the ER door a second ago — nearly certain.
        UncertainObject(
            1,
            ((Point(30, 9), 0.9), (Point(20, 10), 0.1)),
            payload="Dr. Amin",
        ),
        # Nurse Brook: RFID says ward B, but she may already be in the
        # corridor heading east.
        UncertainObject(
            2,
            ((Point(13, 2), 0.3), (Point(23, 2), 0.3), (Point(26, 10), 0.4)),
            payload="Nurse Brook",
        ),
        # Porter Chen: last seen in ward A, possibly already in the corridor.
        UncertainObject(
            3,
            ((Point(4, 4), 0.6), (Point(10, 10), 0.4)),
            payload="Porter Chen",
        ),
    ]


def main():
    space = build_clinic()
    team = staff()
    names = {member.object_id: member.payload for member in team}
    incident = Point(30, 4)  # in the emergency room

    print("== Probabilistic positioning queries ==\n")
    print("P(within 12 m of the incident) per staff member:")
    for object_id, probability in probabilistic_range(
        space, team, incident, radius=12.0, threshold=1e-9
    ):
        print(f"  {names[object_id]:<14} {probability:5.0%}")
    print()

    threshold = 0.6
    qualified = probabilistic_range(space, team, incident, 12.0, threshold)
    print(f"paged (threshold {threshold:.0%}): "
          f"{[names[oid] for oid, _ in qualified]}\n")

    print("P(nearest responder) — probabilistic 1-NN over possible worlds:")
    for object_id, probability in probabilistic_knn(
        space, team, incident, k=1, threshold=1e-9
    ):
        print(f"  {names[object_id]:<14} {probability:5.0%}")


if __name__ == "__main__":
    main()
