"""The benchmark regression gate (``python -m repro bench --gate``)."""

import pytest

from repro.bench.gate import (
    DEFAULT_TOLERANCE,
    compare_benchmarks,
    render_gate_report,
    run_gate,
)


def _serve_result(speedup=2.0, mismatches=0):
    return {"speedup": speedup, "mismatches": mismatches}


def _shard_result(speedup=2.5, vs_service=1.2, mismatches=0, degraded=0):
    return {
        "speedup": speedup,
        "speedup_vs_service": vs_service,
        "mismatches": mismatches,
        "sharded": {"degraded": degraded},
    }


def _overload_result(goodput=1.0, attainment=1.0, mismatches=0):
    return {
        "protected": {
            "goodput_ratio_capped": goodput,
            "slo_attainment": attainment,
        },
        "mismatches": mismatches,
    }


def _reconfig_result(
    availability=0.9, answered=1.0, mismatches=0, epoch_mix=0
):
    return {
        "rolling": {
            "availability": availability,
            "answered_fraction": answered,
            "mismatches": mismatches,
            "epoch_mix_violations": epoch_mix,
        },
    }


class TestCompareBenchmarks:
    def test_passes_within_tolerance(self):
        checks = compare_benchmarks(
            "BENCH_serve.json", _serve_result(2.0), _serve_result(1.7)
        )
        assert all(check["ok"] for check in checks)

    def test_fails_below_the_ratio_floor(self):
        checks = compare_benchmarks(
            "BENCH_serve.json", _serve_result(2.0), _serve_result(1.5)
        )
        ratio = next(c for c in checks if c["metric"] == "speedup")
        assert not ratio["ok"]
        # Floor is committed * (1 - tolerance).
        assert ratio["committed"] == 2.0
        assert "floor 1.600" in ratio["detail"]

    def test_faster_fresh_run_always_passes_the_ratio(self):
        checks = compare_benchmarks(
            "BENCH_serve.json", _serve_result(2.0), _serve_result(9.0)
        )
        assert all(check["ok"] for check in checks)

    def test_mismatches_have_no_tolerance(self):
        checks = compare_benchmarks(
            "BENCH_serve.json",
            _serve_result(),
            _serve_result(speedup=99.0, mismatches=1),
            tolerance=0.99,
        )
        exact = next(c for c in checks if c["metric"] == "mismatches")
        assert not exact["ok"]
        assert exact["kind"] == "exact"

    def test_shard_artifact_gates_both_ratios_and_degraded(self):
        checks = compare_benchmarks(
            "BENCH_shard.json", _shard_result(), _shard_result(degraded=3)
        )
        by_metric = {c["metric"]: c for c in checks}
        assert set(by_metric) == {
            "speedup",
            "speedup_vs_service",
            "mismatches",
            "sharded.degraded",
        }
        assert not by_metric["sharded.degraded"]["ok"]
        assert by_metric["speedup_vs_service"]["ok"]

    def test_overload_artifact_gates_goodput_attainment_and_mismatches(self):
        checks = compare_benchmarks(
            "BENCH_overload.json",
            _overload_result(),
            _overload_result(goodput=0.85, attainment=0.9),
        )
        by_metric = {c["metric"]: c for c in checks}
        assert set(by_metric) == {
            "protected.goodput_ratio_capped",
            "protected.slo_attainment",
            "mismatches",
        }
        # Committed 1.0 with the 20% tolerance puts the floor at 0.8 —
        # exactly the acceptance bar for goodput under 2x collapse load.
        assert all(check["ok"] for check in checks)
        failing = compare_benchmarks(
            "BENCH_overload.json",
            _overload_result(),
            _overload_result(goodput=0.7),
        )
        goodput = next(
            c
            for c in failing
            if c["metric"] == "protected.goodput_ratio_capped"
        )
        assert not goodput["ok"]

    def test_overload_mismatches_are_exact(self):
        checks = compare_benchmarks(
            "BENCH_overload.json",
            _overload_result(),
            _overload_result(mismatches=1),
        )
        exact = next(c for c in checks if c["metric"] == "mismatches")
        assert not exact["ok"]
        assert exact["kind"] == "exact"

    def test_reconfig_artifact_gates_availability_and_fencing(self):
        checks = compare_benchmarks(
            "BENCH_reconfig.json",
            _reconfig_result(),
            _reconfig_result(availability=0.8),
        )
        by_metric = {c["metric"]: c for c in checks}
        assert set(by_metric) == {
            "rolling.availability",
            "rolling.answered_fraction",
            "rolling.mismatches",
            "rolling.epoch_mix_violations",
        }
        # Committed 0.9 with 20% tolerance floors availability at 0.72.
        assert all(check["ok"] for check in checks)
        failing = compare_benchmarks(
            "BENCH_reconfig.json",
            _reconfig_result(),
            _reconfig_result(availability=0.6),
        )
        availability = next(
            c for c in failing if c["metric"] == "rolling.availability"
        )
        assert not availability["ok"]

    def test_reconfig_epoch_mixing_is_exact(self):
        # One merged answer straddling two epochs fails the gate no
        # matter how available the rolling run was.
        checks = compare_benchmarks(
            "BENCH_reconfig.json",
            _reconfig_result(),
            _reconfig_result(availability=1.0, epoch_mix=1),
        )
        exact = next(
            c
            for c in checks
            if c["metric"] == "rolling.epoch_mix_violations"
        )
        assert not exact["ok"]
        assert exact["kind"] == "exact"

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ValueError, match="no gate definition"):
            compare_benchmarks("BENCH_bogus.json", {}, {})


class TestRunGate:
    def test_missing_artifacts_are_skipped_not_failed(self, tmp_path):
        report = run_gate(root=tmp_path)
        assert report["ok"] is True
        assert report["checks"] == []
        assert report["skipped"] == [
            "BENCH_labels.json",
            "BENCH_overload.json",
            "BENCH_reconfig.json",
            "BENCH_serve.json",
            "BENCH_shard.json",
        ]

    def test_unknown_artifact_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no gate definition"):
            run_gate(root=tmp_path, artifacts=["BENCH_bogus.json"])


class TestRendering:
    def test_report_lines_and_verdict(self, tmp_path):
        checks = compare_benchmarks(
            "BENCH_serve.json", _serve_result(2.0), _serve_result(1.0)
        )
        text = render_gate_report(
            {"ok": False, "checks": checks, "skipped": ["BENCH_shard.json"]}
        )
        assert "FAIL  BENCH_serve.json  speedup" in text
        assert "SKIP  BENCH_shard.json" in text
        assert text.endswith("GATE FAIL")

    def test_default_tolerance_is_twenty_percent(self):
        assert DEFAULT_TOLERANCE == pytest.approx(0.20)
