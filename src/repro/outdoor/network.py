"""A minimal weighted road network (the outdoor substrate).

Nodes are junctions with planar coordinates; edges are road segments with a
length (defaulting to the Euclidean distance between their endpoints).  The
network supports directed edges (one-way streets) and provides Dijkstra
shortest distances and paths.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ModelError, UnknownEntityError
from repro.geometry import Point


class RoadNetwork:
    """A directed, weighted outdoor road graph."""

    def __init__(self) -> None:
        self._nodes: Dict[int, Point] = {}
        self._adjacency: Dict[int, List[Tuple[int, float]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, position: Point) -> None:
        """Register a junction."""
        if node_id in self._nodes:
            raise ModelError(f"duplicate road node id {node_id}")
        self._nodes[node_id] = position
        self._adjacency[node_id] = []

    def add_edge(
        self,
        from_node: int,
        to_node: int,
        length: Optional[float] = None,
        bidirectional: bool = True,
    ) -> None:
        """Register a road segment.

        Args:
            from_node / to_node: junction ids (must exist).
            length: road length; defaults to the Euclidean node distance.
            bidirectional: two-way street (default) or one-way.
        """
        for node_id in (from_node, to_node):
            if node_id not in self._nodes:
                raise UnknownEntityError("road node", node_id)
        if from_node == to_node:
            raise ModelError(f"self-loop road edge at node {from_node}")
        if length is None:
            length = self._nodes[from_node].distance_to(self._nodes[to_node])
        if length < 0:
            raise ModelError(f"negative road length {length}")
        self._adjacency[from_node].append((to_node, length))
        if bidirectional:
            self._adjacency[to_node].append((from_node, length))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> Tuple[int, ...]:
        """All junction ids, ascending."""
        return tuple(sorted(self._nodes))

    def node_position(self, node_id: int) -> Point:
        """Position of a junction."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownEntityError("road node", node_id) from None

    def neighbors(self, node_id: int) -> Tuple[Tuple[int, float], ...]:
        """Outgoing ``(node, length)`` pairs of a junction."""
        if node_id not in self._nodes:
            raise UnknownEntityError("road node", node_id)
        return tuple(self._adjacency[node_id])

    def nearest_node(self, position: Point) -> Optional[int]:
        """The junction closest (Euclidean) to an arbitrary position."""
        if not self._nodes:
            return None
        return min(
            self._nodes,
            key=lambda nid: (
                self._nodes[nid].distance_to(position.on_floor(0)),
                nid,
            ),
        )

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------
    def distance(self, from_node: int, to_node: int) -> float:
        """Shortest road distance between two junctions (``inf`` when
        disconnected)."""
        return self.shortest_path(from_node, to_node)[0]

    def shortest_path(
        self, from_node: int, to_node: int
    ) -> Tuple[float, List[int]]:
        """``(distance, node sequence)``; ``(inf, [])`` when disconnected."""
        for node_id in (from_node, to_node):
            if node_id not in self._nodes:
                raise UnknownEntityError("road node", node_id)
        dist: Dict[int, float] = {from_node: 0.0}
        prev: Dict[int, Optional[int]] = {from_node: None}
        settled = set()
        heap: List[Tuple[float, int]] = [(0.0, from_node)]
        while heap:
            d, current = heapq.heappop(heap)
            if current in settled:
                continue
            settled.add(current)
            if current == to_node:
                break
            for neighbor, length in self._adjacency[current]:
                if neighbor in settled:
                    continue
                candidate = d + length
                if candidate < dist.get(neighbor, math.inf):
                    dist[neighbor] = candidate
                    prev[neighbor] = current
                    heapq.heappush(heap, (candidate, neighbor))
        if to_node not in settled:
            return math.inf, []
        path: List[int] = []
        cursor: Optional[int] = to_node
        while cursor is not None:
            path.append(cursor)
            cursor = prev[cursor]
        path.reverse()
        return dist[to_node], path
