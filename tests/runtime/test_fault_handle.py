"""Regression tests for the FaultHandle undo contract.

Chaos campaigns undo faults from cleanup paths that may run more than
once, after the injected target was quarantined, or after a first restore
attempt failed — so :meth:`FaultHandle.undo` must be idempotent and
re-entrant, and every injector's restore must write absolute saved state
(retrying can never re-corrupt).
"""

import numpy as np
import pytest

from repro.runtime.faults import (
    FaultHandle,
    corrupt_md2d,
    flip_snapshot_byte,
)


class TestUndoContract:
    def test_successful_undo_is_idempotent(self):
        calls = []
        handle = FaultHandle("fault", _undo=lambda: calls.append(1))
        handle.undo()
        handle.undo()
        handle.undo()
        assert calls == [1]

    def test_first_failure_raises_then_retry_restores(self):
        state = {"failures_left": 1, "restored": 0}

        def undo():
            if state["failures_left"]:
                state["failures_left"] -= 1
                raise OSError("transient")
            state["restored"] += 1

        handle = FaultHandle("fault", _undo=undo)
        with pytest.raises(OSError):
            handle.undo()
        handle.undo()  # retry restores, silently
        assert state["restored"] == 1
        handle.undo()  # now inactive: a no-op
        assert state["restored"] == 1

    def test_repeat_failure_is_suppressed_after_first_raise(self):
        def undo():
            raise OSError("persistent")

        handle = FaultHandle("fault", _undo=undo)
        with pytest.raises(OSError):
            handle.undo()
        # Cleanup paths (finally blocks, heal-all sweeps) may retry; only
        # the first failure is surfaced.
        handle.undo()
        handle.undo()


class TestInjectorRestores:
    def test_corrupt_md2d_second_undo_never_clobbers(self, figure1_framework):
        matrix = figure1_framework.distance_index.md2d
        before = matrix.copy()
        handle = corrupt_md2d(figure1_framework, mode="nan", count=2, seed=3)
        assert np.isnan(matrix).any()
        handle.undo()
        np.testing.assert_array_equal(matrix, before)
        row, col = handle.cells[0]
        matrix[row, col] = 123.0  # a later, legitimate change
        handle.undo()
        assert matrix[row, col] == 123.0

    def test_flip_snapshot_undo_tolerates_quarantined_file(self, tmp_path):
        target = tmp_path / "snapshot-000001.snap"
        original = bytes(range(64))
        target.write_bytes(original)
        handle = flip_snapshot_byte(target, count=2, seed=1)
        assert target.read_bytes() != original
        # Recovery quarantined the damaged file underneath the handle.
        target.rename(target.with_suffix(".snap.corrupt"))
        handle.undo()  # nothing left to restore; must not raise
        handle.undo()

    def test_flip_snapshot_undo_restores_exact_bytes(self, tmp_path):
        target = tmp_path / "snapshot-000001.snap"
        original = bytes(range(200))
        target.write_bytes(original)
        handle = flip_snapshot_byte(target, count=5, seed=9)
        handle.undo()
        assert target.read_bytes() == original
