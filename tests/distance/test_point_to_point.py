"""Tests for Algorithms 2-4 (position-to-position distance).

The three algorithms must return identical distances everywhere; this is the
paper's central claim (they differ only in work sharing) and is checked both
on hand-computed cases and property-style over random positions.
"""

import math
import random

import pytest

from repro.distance import (
    pt2pt_distance,
    pt2pt_distance_basic,
    pt2pt_distance_memoized,
    pt2pt_distance_refined,
    pt2pt_path,
)
from repro.exceptions import ModelError
from repro.geometry import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder
from repro.model.figure1 import (
    D12,
    D13,
    D15,
    HALLWAY,
    P,
    Q,
    ROOM_12,
    ROOM_13,
    build_figure1,
)

ALGORITHMS = [
    pytest.param(pt2pt_distance_basic, id="algorithm2"),
    pytest.param(pt2pt_distance_refined, id="algorithm3"),
    pytest.param(pt2pt_distance_memoized, id="algorithm4"),
]


@pytest.fixture(scope="module")
def space():
    return build_figure1()


def motivating_example_expected():
    """p -> d15 -> d12 -> q, the Figure-1 shortest path, by hand."""
    return (
        P.distance_to(Point(6, 8))
        + Point(6, 8).distance_to(Point(5, 6))
        + Point(5, 6).distance_to(Q)
    )


class TestMotivatingExample:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_p_to_q_goes_through_d15_and_d12(self, space, algorithm):
        assert algorithm(space, P, Q) == pytest.approx(motivating_example_expected())

    def test_route_through_d13_is_longer(self, space):
        via_d13 = (
            P.distance_to(Point(8, 6)) + Point(8, 6).distance_to(Q)
        )
        assert pt2pt_distance(space, P, Q) < via_d13

    def test_path_object_reports_the_door_sequence(self, space):
        path = pt2pt_path(space, P, Q)
        assert path.doors == (D15, D12)
        assert path.partitions == (ROOM_13, ROOM_12, HALLWAY)
        assert path.distance == pytest.approx(motivating_example_expected())

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_reverse_direction_must_use_d13(self, space, algorithm):
        # One-way doors make q -> p asymmetric: entering room 13 is only
        # possible through d13.
        expected = Q.distance_to(Point(8, 6)) + Point(8, 6).distance_to(P)
        assert algorithm(space, Q, P) == pytest.approx(expected)

    def test_reverse_path_doors(self, space):
        path = pt2pt_path(space, Q, P)
        assert path.doors == (D13,)
        assert path.partitions == (HALLWAY, ROOM_13)


class TestEdgeCases:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_same_position_is_zero(self, space, algorithm):
        assert algorithm(space, P, P) == 0.0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_same_partition_is_intra_distance(self, space, algorithm):
        a, b = Point(6.5, 7), Point(9.5, 9.5)
        assert algorithm(space, a, b) == pytest.approx(a.distance_to(b))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_position_outside_any_partition_raises(self, space, algorithm):
        with pytest.raises(ModelError):
            algorithm(space, Point(100, 100), Q)
        with pytest.raises(ModelError):
            algorithm(space, Q, Point(100, 100))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_unreachable_destination_is_inf(self, algorithm):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_partition(3, rectangle(8, 0, 12, 4))
        builder.add_door(1, Segment(Point(4, 1), Point(4, 3)), connects=(1, 2))
        builder.add_door(
            2, Segment(Point(8, 1), Point(8, 3)), connects=(3, 2), one_way=True
        )
        space = builder.build()
        assert math.isinf(algorithm(space, Point(1, 1), Point(10, 2)))
        assert not math.isinf(algorithm(space, Point(10, 2), Point(1, 1)))

    def test_out_and_back_beats_obstructed_intra_path(self):
        """The Figure-5 phenomenon: leaving the partition and re-entering
        through another door can beat the intra-partition detour."""
        from repro.geometry import Polygon

        builder = IndoorSpaceBuilder()
        # Room 1 is U-shaped: two vertical arms joined by a low base.  Room 2
        # fills the notch between the arms, with a door into each arm near
        # the top, so crossing room 2 short-cuts the long walk down and
        # around the base.
        builder.add_partition(
            1,
            Polygon(
                [
                    Point(0, 0),
                    Point(14, 0),
                    Point(14, 10),
                    Point(10, 10),
                    Point(10, 2),
                    Point(4, 2),
                    Point(4, 10),
                    Point(0, 10),
                ]
            ),
        )
        builder.add_partition(2, rectangle(4, 2, 10, 10))
        builder.add_door(1, Segment(Point(4, 8.5), Point(4, 9.5)), connects=(1, 2))
        builder.add_door(2, Segment(Point(10, 8.5), Point(10, 9.5)), connects=(1, 2))
        space = builder.build()
        source, target = Point(2, 9), Point(12, 9)
        intra = space.partition(1).intra_distance(source, target)
        door_route = (
            source.distance_to(Point(4, 9))
            + Point(4, 9).distance_to(Point(10, 9))
            + Point(10, 9).distance_to(target)
        )
        assert door_route < intra
        for algorithm in (
            pt2pt_distance_basic,
            pt2pt_distance_refined,
            pt2pt_distance_memoized,
        ):
            assert algorithm(space, source, target) == pytest.approx(door_route)

    def test_intra_path_beats_door_route_in_clear_partition(self, space):
        a, b = Point(1, 4.5), Point(11, 5.5)
        assert pt2pt_distance(space, a, b) == pytest.approx(a.distance_to(b))


def random_indoor_point(space, rng):
    """A uniformly random point inside a random (non-outdoor) partition."""
    partition_ids = [p for p in space.partition_ids if p != 0]
    while True:
        partition = space.partition(rng.choice(partition_ids))
        box = partition.polygon.bounding_box
        point = Point(
            rng.uniform(box.min_x, box.max_x),
            rng.uniform(box.min_y, box.max_y),
            partition.floor,
        )
        if partition.contains(point) and space.get_host_partition(point) is not None:
            return point


class TestAlgorithmAgreement:
    def test_algorithms_agree_on_random_positions(self, space):
        rng = random.Random(42)
        for _ in range(60):
            a = random_indoor_point(space, rng)
            b = random_indoor_point(space, rng)
            basic = pt2pt_distance_basic(space, a, b)
            refined = pt2pt_distance_refined(space, a, b)
            memoized = pt2pt_distance_memoized(space, a, b)
            assert refined == pytest.approx(basic), (a, b)
            assert memoized == pytest.approx(basic), (a, b)

    def test_path_distance_agrees_with_algorithms(self, space):
        rng = random.Random(7)
        for _ in range(20):
            a = random_indoor_point(space, rng)
            b = random_indoor_point(space, rng)
            assert pt2pt_path(space, a, b).distance == pytest.approx(
                pt2pt_distance_basic(space, a, b)
            )

    def test_triangle_inequality_over_random_triples(self, space):
        rng = random.Random(11)
        for _ in range(25):
            a = random_indoor_point(space, rng)
            b = random_indoor_point(space, rng)
            c = random_indoor_point(space, rng)
            ab = pt2pt_distance(space, a, b)
            bc = pt2pt_distance(space, b, c)
            ac = pt2pt_distance(space, a, c)
            assert ac <= ab + bc + 1e-6
