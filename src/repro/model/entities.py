"""Indoor entities: partitions and doors.

A *partition* is the smallest piece of independent indoor space — a room, a
hallway, or a staircase — connected to other partitions by one or more doors
(paper §III, running example).  The exterior of the building is itself a
special partition, so that doors to the outside need no special casing; unlike
the paper's abstract "all of outdoor space" partition, we give the outdoor
partition a finite polygon (an apron strip around the entrance), which lets
every partition carry geometry.

A *door* is a doorway segment in a wall.  All door-related distances use the
door's midpoint (paper footnote 3).  Directionality is a property of the
topology (which D2P pairs exist), not of the door entity itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import GeometryError, ModelError
from repro.geometry import Point, Polygon, Segment
from repro.geometry.visibility import VisibilityGraph


class PartitionKind(enum.Enum):
    """Semantic role of a partition; affects nothing but presentation,
    except that ``STAIRCASE`` partitions carry a walking-length override used
    when flattening multi-floor buildings (paper §VI-A)."""

    ROOM = "room"
    HALLWAY = "hallway"
    STAIRCASE = "staircase"
    OUTDOOR = "outdoor"


@dataclass(frozen=True)
class Door:
    """A doorway: an identifier plus the wall segment it occupies.

    Attributes:
        door_id: unique non-negative integer; Algorithm 4's optimisations
            compare door identifiers, so ids are totally ordered.
        segment: the doorway segment in the wall.  A zero-length segment
            (``start == end``) models a door known only by a point.
        name: optional human-readable label (``"d15"``).
    """

    door_id: int
    segment: Segment
    name: str = ""

    def __post_init__(self) -> None:
        if self.door_id < 0:
            raise ModelError(f"door id must be non-negative, got {self.door_id}")

    @property
    def midpoint(self) -> Point:
        """The point all door-to-door and door-to-position distances use."""
        return self.segment.midpoint

    @property
    def floor(self) -> int:
        """Floor the doorway lies on."""
        return self.segment.floor

    @property
    def width(self) -> float:
        """Doorway width (zero for point doors)."""
        return self.segment.length

    @property
    def label(self) -> str:
        """Display name: the explicit name or ``d<door_id>``."""
        return self.name or f"d{self.door_id}"

    @staticmethod
    def at_point(door_id: int, point: Point, name: str = "") -> "Door":
        """Create a zero-width door located at ``point``."""
        return Door(door_id, Segment(point, point), name)

    def __str__(self) -> str:
        return f"{self.label}@{self.midpoint}"


class Partition:
    """A room, hallway, staircase, or outdoor apron with optional obstacles.

    Intra-partition distances are Euclidean when the partition is convex and
    obstacle-free; otherwise they are measured on a lazily built visibility
    graph (paper §III-C1).

    Args:
        partition_id: unique non-negative integer; id 0 is conventionally the
            outdoor partition.
        polygon: the partition outline.
        kind: semantic role of the partition.
        name: optional human-readable label (``"room 13"``).
        obstacles: polygons inside the outline that block movement.
        stair_length: for ``STAIRCASE`` partitions, the actual walking length
            of the stairs; used as the door-to-door distance when the
            staircase is flattened into a virtual room.  ``None`` means
            "use planar geometry".
    """

    def __init__(
        self,
        partition_id: int,
        polygon: Polygon,
        kind: PartitionKind = PartitionKind.ROOM,
        name: str = "",
        obstacles: Tuple[Polygon, ...] = (),
        stair_length: Optional[float] = None,
    ) -> None:
        if partition_id < 0:
            raise ModelError(f"partition id must be non-negative, got {partition_id}")
        if stair_length is not None:
            if kind is not PartitionKind.STAIRCASE:
                raise ModelError("stair_length is only valid for staircases")
            if stair_length <= 0:
                raise ModelError(f"stair_length must be positive, got {stair_length}")
        for obstacle in obstacles:
            if obstacle.floor != polygon.floor:
                raise GeometryError("obstacle floor differs from partition floor")
        self.partition_id = partition_id
        self.polygon = polygon
        self.kind = kind
        self.name = name
        self.obstacles: Tuple[Polygon, ...] = tuple(obstacles)
        self.stair_length = stair_length
        self._visibility: Optional[VisibilityGraph] = None
        # Convex and obstacle-free: any segment between interior points stays
        # inside, so intra distances are plain Euclidean (fast path).
        self._convex_clear = not obstacles and polygon.is_convex()

    @property
    def floor(self) -> int:
        """Base floor the partition lies on."""
        return self.polygon.floor

    @property
    def floors(self) -> Tuple[int, ...]:
        """Floors the partition spans.

        A staircase with a ``stair_length`` is the paper's "virtual room"
        (§VI-A): it spans its base floor and the floor above, with one door on
        each.  Every other partition spans exactly its polygon's floor.
        """
        if self.kind is PartitionKind.STAIRCASE and self.stair_length is not None:
            return (self.polygon.floor, self.polygon.floor + 1)
        return (self.polygon.floor,)

    def _project(self, point: Point) -> Point:
        """Project a point of an upper landing down to the polygon's floor."""
        return point.on_floor(self.polygon.floor)

    @property
    def label(self) -> str:
        """Display name: the explicit name or ``v<partition_id>``."""
        return self.name or f"v{self.partition_id}"

    @property
    def has_obstacles(self) -> bool:
        """True when the partition declares at least one obstacle."""
        return bool(self.obstacles)

    @property
    def visibility(self) -> VisibilityGraph:
        """The partition's visibility graph (built on first use)."""
        if self._visibility is None:
            self._visibility = VisibilityGraph(self.polygon, self.obstacles)
        return self._visibility

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies inside the partition outline (boundary
        inclusive), on a floor the partition spans, and not strictly inside
        any obstacle."""
        if point.floor not in self.floors:
            return False
        projected = self._project(point)
        if not self.polygon.contains_point(projected):
            return False
        return not any(o.strictly_contains_point(projected) for o in self.obstacles)

    def intra_distance(self, source: Point, target: Point) -> float:
        """Minimum walking distance between two points inside this partition
        without leaving it.

        Straight-line Euclidean when nothing obstructs; a visibility-graph
        shortest path otherwise; ``inf`` when the points are separated by
        obstacles.  Inside a flattened staircase, two points on *different*
        floors are ``stair_length`` apart — the actual stair walking distance
        of the paper's §VI-A transformation.
        """
        if source.floor != target.floor:
            if self.stair_length is not None:
                return self.stair_length
            return float("inf")
        source, target = self._project(source), self._project(target)
        if self._convex_clear:
            return source.distance_to(target)
        # Non-convex but obstacle-free: straight line if it stays inside,
        # otherwise route via the boundary's visibility graph.
        if not self.has_obstacles and self.polygon.contains_segment(
            Segment(source, target)
        ):
            return source.distance_to(target)
        return self.visibility.distance(source, target)

    def intra_path(self, source: Point, target: Point):
        """Like :meth:`intra_distance` but also returns the waypoints.

        Cross-floor staircase paths report the two endpoints as waypoints.
        """
        if source.floor != target.floor:
            if self.stair_length is not None:
                return self.stair_length, [source, target]
            return float("inf"), []
        return self.visibility.shortest_path(
            self._project(source), self._project(target)
        )

    def max_distance_from(self, point: Point) -> float:
        """``max_{p in partition} ‖point, p‖`` — the farthest one can walk
        within the partition starting from ``point`` (used by f_dv, §III-C1).

        Exact for obstacle-free convex partitions (the maximum is attained at
        a vertex); for obstructed or non-convex partitions the maximum over
        outline and obstacle vertices is a tight, conservative-enough
        approximation that we document as such.  For flattened staircases the
        farthest reachable point is the far end of the stairs, so the answer
        is at least ``stair_length``.
        """
        if self.stair_length is not None:
            planar_max = max(
                self._project(point).distance_to(v) for v in self.polygon.vertices
            )
            return max(self.stair_length, planar_max)
        candidates = list(self.polygon.vertices)
        for obstacle in self.obstacles:
            candidates.extend(obstacle.vertices)
        best = 0.0
        for vertex in candidates:
            d = self.intra_distance(point, vertex)
            if d != float("inf") and d > best:
                best = d
        return best

    def __repr__(self) -> str:
        return (
            f"Partition({self.partition_id}, kind={self.kind.value}, "
            f"floor={self.floor}, label={self.label!r})"
        )
