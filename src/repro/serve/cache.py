"""The serving layer's epoch-aware bounded LRU distance cache.

Indoor topologies mutate (doors open, close, are demolished), and PR 1's
staleness machinery already stamps every mutation with a monotone
``topology_epoch``.  :class:`EpochLRUCache` rides on that: every entry is
stored together with the epoch it was computed at, and a lookup only hits
when the stored epoch equals the caller's current epoch.  A topology
mutation therefore invalidates the whole cache *for free* — no listener
registration, no explicit flush, no risk of a missed invalidation path.
Stale entries are dropped lazily as they are touched (or eagerly via
:meth:`purge_stale`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Tuple

_MISS = object()


class EpochLRUCache:
    """A bounded, thread-safe LRU cache keyed by ``(key, epoch)`` pairs.

    Args:
        capacity: maximum number of live entries; the least recently used
            entry is evicted when a put would exceed it.  A capacity of 0
            disables the cache (every get misses, every put is dropped).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._data: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def get(self, key: Hashable, epoch: int, default: Any = None) -> Any:
        """The cached value for ``key`` at ``epoch``, or ``default``.

        An entry stored at a different epoch counts as a miss *and* is
        dropped (it can never hit again: epochs are monotone).
        """
        with self._lock:
            entry = self._data.get(key, _MISS)
            if entry is _MISS:
                self._misses += 1
                return default
            stored_epoch, value = entry
            if stored_epoch != epoch:
                del self._data[key]
                self._invalidations += 1
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def contains(self, key: Hashable, epoch: int) -> bool:
        """True when ``key`` is cached at exactly ``epoch`` (no LRU touch,
        no stats update)."""
        with self._lock:
            entry = self._data.get(key, _MISS)
            return entry is not _MISS and entry[0] == epoch

    def put(self, key: Hashable, epoch: int, value: Any) -> None:
        """Store ``value`` for ``key`` as computed at ``epoch``."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._data:
                del self._data[key]
            self._data[key] = (epoch, value)
            if len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def purge_stale(self, epoch: int) -> int:
        """Eagerly drop every entry not computed at ``epoch``.

        Returns the number of entries dropped.  Lazy dropping in
        :meth:`get` makes this optional; it exists for callers that want
        memory back immediately after a topology mutation.
        """
        with self._lock:
            stale = [k for k, (e, _) in self._data.items() if e != epoch]
            for key in stale:
                del self._data[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        with self._lock:
            self._data.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live entries."""
        with self._lock:
            return len(self._data)

    @property
    def capacity(self) -> int:
        """The configured maximum entry count."""
        return self._capacity

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), or 0.0 before any lookup."""
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """A snapshot of the cache counters, for the metrics registry."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self._capacity,
                "entries": len(self._data),
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / total if total else 0.0,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }
