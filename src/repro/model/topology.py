"""Topology information mappings (paper §III-A).

The fundamental mapping is D2P, which sends a door ``d_k`` to the set of
ordered partition pairs ``(v_i, v_j)`` such that one can move from ``v_i`` to
``v_j`` through ``d_k``.  Everything else — D2P⊣ (enterable partitions),
D2P⊢ (leaveable partitions), P2D⊣ (enterable doors), P2D⊢ (leaveable doors)
and the undirected P2D — is derived from it, exactly as in the paper.

The paper stipulates that each door connects exactly two partitions (outdoor
space being itself a partition); :meth:`Topology.connect` enforces it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.exceptions import TopologyError, UnknownEntityError


class Topology:
    """The D2P mapping and its derived P2D views.

    Partitions and doors are referred to by integer identifiers; the entity
    objects live in :class:`~repro.model.builder.IndoorSpace`.
    """

    def __init__(self) -> None:
        self._d2p: Dict[int, Set[Tuple[int, int]]] = {}
        self._enterable_doors: Dict[int, Set[int]] = {}
        self._leaveable_doors: Dict[int, Set[int]] = {}
        self._partitions: Set[int] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_partition(self, partition_id: int) -> None:
        """Register a partition identifier (idempotent)."""
        self._partitions.add(partition_id)
        self._enterable_doors.setdefault(partition_id, set())
        self._leaveable_doors.setdefault(partition_id, set())

    def connect(
        self,
        door_id: int,
        from_partition: int,
        to_partition: int,
        bidirectional: bool = True,
    ) -> None:
        """Declare that ``door_id`` permits movement ``from → to``.

        With ``bidirectional=True`` (the common case) the reverse movement is
        registered too.  A door may be connected incrementally, but it must
        always touch exactly the same two distinct partitions.

        Raises:
            TopologyError: if the two partitions are equal, a partition is
                unknown, or the door already connects a different pair.
        """
        if from_partition == to_partition:
            raise TopologyError(
                f"door {door_id} cannot connect partition "
                f"{from_partition} to itself"
            )
        for partition_id in (from_partition, to_partition):
            if partition_id not in self._partitions:
                raise UnknownEntityError("partition", partition_id)

        pair = {from_partition, to_partition}
        existing = self._d2p.get(door_id)
        if existing:
            touched = {p for edge in existing for p in edge}
            if touched != pair:
                raise TopologyError(
                    f"door {door_id} already connects partitions {sorted(touched)}; "
                    f"cannot also connect {sorted(pair)} "
                    "(each door connects exactly two partitions)"
                )
        edges = self._d2p.setdefault(door_id, set())
        edges.add((from_partition, to_partition))
        if bidirectional:
            edges.add((to_partition, from_partition))
        for from_p, to_p in edges:
            self._leaveable_doors[from_p].add(door_id)
            self._enterable_doors[to_p].add(door_id)

    def disconnect(self, door_id: int) -> None:
        """Remove a door from the mapping entirely (all its edges).

        Raises:
            UnknownEntityError: if the door was never connected.
        """
        self._require_door(door_id)
        edges = self._d2p.pop(door_id)
        for from_p, to_p in edges:
            self._leaveable_doors[from_p].discard(door_id)
            self._enterable_doors[to_p].discard(door_id)

    # ------------------------------------------------------------------
    # The fundamental mapping and its derivations (paper Eq. 1-5)
    # ------------------------------------------------------------------
    def d2p(self, door_id: int) -> FrozenSet[Tuple[int, int]]:
        """D2P(d): the ordered partition pairs the door permits."""
        self._require_door(door_id)
        return frozenset(self._d2p[door_id])

    def enterable_partitions(self, door_id: int) -> FrozenSet[int]:
        """D2P⊣(d) = π₂(D2P(d)): partitions one can *enter* through d."""
        self._require_door(door_id)
        return frozenset(to_p for _, to_p in self._d2p[door_id])

    def leaveable_partitions(self, door_id: int) -> FrozenSet[int]:
        """D2P⊢(d) = π₁(D2P(d)): partitions one can *leave* through d."""
        self._require_door(door_id)
        return frozenset(from_p for from_p, _ in self._d2p[door_id])

    def partitions_of(self, door_id: int) -> FrozenSet[int]:
        """The (exactly two) partitions the door touches."""
        self._require_door(door_id)
        return frozenset(p for edge in self._d2p[door_id] for p in edge)

    def enterable_doors(self, partition_id: int) -> FrozenSet[int]:
        """P2D⊣(v): doors through which one can enter v."""
        self._require_partition(partition_id)
        return frozenset(self._enterable_doors[partition_id])

    def leaveable_doors(self, partition_id: int) -> FrozenSet[int]:
        """P2D⊢(v): doors through which one can leave v."""
        self._require_partition(partition_id)
        return frozenset(self._leaveable_doors[partition_id])

    def doors_of(self, partition_id: int) -> FrozenSet[int]:
        """P2D(v) = P2D⊣(v) ∪ P2D⊢(v): all doors touching v."""
        return self.enterable_doors(partition_id) | self.leaveable_doors(partition_id)

    def touches(self, door_id: int, partition_id: int) -> bool:
        """True when the door touches the partition (either direction)."""
        return partition_id in self.partitions_of(door_id)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def door_ids(self) -> Tuple[int, ...]:
        """All registered door ids, ascending."""
        return tuple(sorted(self._d2p))

    @property
    def partition_ids(self) -> Tuple[int, ...]:
        """All registered partition ids, ascending."""
        return tuple(sorted(self._partitions))

    def is_unidirectional(self, door_id: int) -> bool:
        """True when |D2P(d)| = 1 — the door permits one direction only."""
        self._require_door(door_id)
        return len(self._d2p[door_id]) == 1

    def is_bidirectional(self, door_id: int) -> bool:
        """True when |D2P(d)| = 2."""
        return not self.is_unidirectional(door_id)

    def has_door(self, door_id: int) -> bool:
        """True when the door id is registered with at least one edge."""
        return door_id in self._d2p

    def has_partition(self, partition_id: int) -> bool:
        """True when the partition id is registered."""
        return partition_id in self._partitions

    def directed_edges(self) -> Iterable[Tuple[int, int, int]]:
        """All ``(from_partition, to_partition, door_id)`` triples — the edge
        set E_a of the accessibility graph (paper §III-B)."""
        for door_id in sorted(self._d2p):
            for from_p, to_p in sorted(self._d2p[door_id]):
                yield (from_p, to_p, door_id)

    def validate(self) -> None:
        """Check global invariants; raises :class:`TopologyError` on failure.

        Invariants: every door touches exactly two distinct partitions, and
        every referenced partition is registered.
        """
        for door_id, edges in self._d2p.items():
            touched = {p for edge in edges for p in edge}
            if len(touched) != 2:
                raise TopologyError(
                    f"door {door_id} touches partitions {sorted(touched)}; "
                    "exactly two are required"
                )
            if not touched <= self._partitions:
                missing = sorted(touched - self._partitions)
                raise TopologyError(
                    f"door {door_id} references unregistered partitions {missing}"
                )

    def _require_door(self, door_id: int) -> None:
        if door_id not in self._d2p:
            raise UnknownEntityError("door", door_id)

    def _require_partition(self, partition_id: int) -> None:
        if partition_id not in self._partitions:
            raise UnknownEntityError("partition", partition_id)
