"""Tests for the benchmark CLI plumbing (figures stubbed for speed)."""

import pytest

import repro.bench.__main__ as bench_cli


@pytest.fixture
def stubbed_figures(monkeypatch):
    rows = [
        {"floors": 10, "algorithm3_ms": 1.5},
        {"floors": 20, "algorithm3_ms": 3.25},
    ]
    monkeypatch.setattr(
        bench_cli,
        "FIGURES",
        {
            "fig6": ("Stub figure six", lambda: rows),
            "fig7": ("Stub figure seven", lambda: rows),
        },
    )
    return rows


class TestBenchCli:
    def test_single_figure(self, stubbed_figures, capsys):
        assert bench_cli.main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "Stub figure six" in out
        assert "3.25" in out
        assert "scale:" in out

    def test_all_runs_every_figure(self, stubbed_figures, capsys):
        assert bench_cli.main(["all"]) == 0
        out = capsys.readouterr().out
        assert "Stub figure six" in out
        assert "Stub figure seven" in out

    def test_markdown_output(self, stubbed_figures, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert bench_cli.main(["fig6", "--out", str(target)]) == 0
        content = target.read_text()
        assert "### Stub figure six" in content
        assert "| floors | algorithm3_ms |" in content
        assert "| 20 | 3.25 |" in content

    def test_unknown_figure_rejected(self, stubbed_figures):
        with pytest.raises(SystemExit):
            bench_cli.main(["nonexistent"])

    def test_json_output(self, stubbed_figures, capsys, tmp_path):
        import json

        target = tmp_path / "rows.json"
        assert bench_cli.main(["fig6", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["scale"] in ("quick", "paper")
        assert payload["figures"]["fig6"]["title"] == "Stub figure six"
        assert payload["figures"]["fig6"]["rows"][1]["algorithm3_ms"] == 3.25
