"""The indoor distance-aware indexing framework (paper §IV).

* :mod:`repro.index.distance_matrix` — the Door-to-Door Distance Matrix
  M_d2d and the Distance Index Matrix M_idx (§IV-A, Figures 3-4).
* :mod:`repro.index.dpt` — the Door-to-Partition Table (§IV-B).
* :mod:`repro.index.rtree` — an STR bulk-loaded R-tree used to implement the
  ``getHostPartition`` point query (§III-D2 mentions "a spatial access
  method (e.g., an R-tree)"); built from scratch.
* :mod:`repro.index.grid` — the per-partition uniform grid over object
  buckets / sub-buckets (§V-B).
* :mod:`repro.index.objects` — indoor objects and the per-partition bucket
  store.
* :mod:`repro.index.framework` — ties everything together into the structure
  the query algorithms of §V consume.
"""

from repro.index.backend import BACKEND_KINDS, DistanceBackend, validate_backend
from repro.index.distance_matrix import DistanceIndexMatrix
from repro.index.dpt import DoorPartitionTable, DptRecord
from repro.index.grid import PartitionGrid
from repro.index.objects import IndoorObject, ObjectStore
from repro.index.rtree import PartitionRTree
from repro.index.framework import IndexFramework

__all__ = [
    "BACKEND_KINDS",
    "DistanceBackend",
    "validate_backend",
    "DistanceIndexMatrix",
    "DoorPartitionTable",
    "DptRecord",
    "PartitionGrid",
    "IndoorObject",
    "ObjectStore",
    "PartitionRTree",
    "IndexFramework",
]
