"""Shared-work batching: planning, exactness, and row sharing."""

import math

from repro.distance import pt2pt_distance
from repro.geometry import Point
from repro.queries import knn_query, range_query
from repro.serve import (
    QueryRequest,
    SharedDoorScans,
    batched_knn_query,
    batched_pt2pt_distances,
    batched_range_query,
    execute_group,
    plan_batches,
)


class TestPlanning:
    def test_same_partition_requests_group(self, serve_framework, query_positions):
        space = serve_framework.space
        position = query_positions[0]
        requests = [
            QueryRequest.range_query(position, 5.0),
            QueryRequest.range_query(position, 9.0),
        ]
        groups = plan_batches(space, requests)
        assert len(groups) == 1
        assert groups[0].shared

    def test_kinds_never_mix(self, serve_framework, query_positions):
        position = query_positions[0]
        requests = [
            QueryRequest.range_query(position, 5.0),
            QueryRequest.knn(position, k=3),
        ]
        groups = plan_batches(serve_framework.space, requests)
        assert len(groups) == 2

    def test_pt2pt_groups_by_source(self, serve_framework, query_positions):
        source = query_positions[0]
        requests = [
            QueryRequest.pt2pt(source, query_positions[1]),
            QueryRequest.pt2pt(source, query_positions[2]),
            QueryRequest.pt2pt(query_positions[3], query_positions[1]),
        ]
        groups = plan_batches(serve_framework.space, requests)
        assert [len(g.requests) for g in groups] == [2, 1]

    def test_unlocatable_position_gets_a_singleton(
        self, serve_framework, query_positions
    ):
        outside = Point(500.0, 500.0)
        requests = [
            QueryRequest.range_query(query_positions[0], 5.0),
            QueryRequest.range_query(outside, 5.0),
        ]
        groups = plan_batches(serve_framework.space, requests)
        assert len(groups) == 2
        results = execute_group(serve_framework, groups[1])
        assert isinstance(results[0][1], Exception)


class TestBitIdentical:
    """Batched execution must equal sequential execution exactly —
    same ids, same floats, same ordering."""

    def test_range_matches_sequential(self, serve_framework, query_positions):
        scans = SharedDoorScans(serve_framework.distance_index)
        for position in query_positions:
            for radius in (3.0, 8.0, 15.0):
                assert batched_range_query(
                    serve_framework, position, radius, scans
                ) == range_query(serve_framework, position, radius, use_index=True)

    def test_knn_matches_sequential(self, serve_framework, query_positions):
        scans = SharedDoorScans(serve_framework.distance_index)
        for position in query_positions:
            for k in (1, 3, 10):
                assert batched_knn_query(
                    serve_framework, position, k, scans
                ) == knn_query(serve_framework, position, k, use_index=True)

    def test_pt2pt_matches_sequential(self, serve_framework, query_positions):
        space = serve_framework.space
        source = query_positions[0]
        targets = query_positions[1:]
        got = batched_pt2pt_distances(space, source, targets)
        want = [pt2pt_distance(space, source, target) for target in targets]
        assert got == want

    def test_pt2pt_same_partition_direct_candidate(
        self, serve_framework, query_positions
    ):
        space = serve_framework.space
        source = query_positions[0]
        got = batched_pt2pt_distances(space, source, [source])
        assert got == [pt2pt_distance(space, source, source)]
        assert got[0] == 0.0

    def test_executed_group_matches_sequential(
        self, serve_framework, query_positions
    ):
        position = query_positions[0]
        requests = [
            QueryRequest.range_query(position, radius)
            for radius in (4.0, 8.0, 16.0)
        ]
        (group,) = plan_batches(serve_framework.space, requests)
        for request, value in execute_group(serve_framework, group):
            assert value == range_query(
                serve_framework, request.position, request.radius, use_index=True
            )


class TestSharing:
    def test_rows_are_walked_once_per_batch(
        self, serve_framework, query_positions
    ):
        scans = SharedDoorScans(serve_framework.distance_index)
        position = query_positions[0]
        batched_range_query(serve_framework, position, 12.0, scans)
        opened_after_first = scans.rows_opened
        batched_range_query(serve_framework, position, 12.0, scans)
        assert scans.rows_opened == opened_after_first
        assert scans.rows_reused > 0

    def test_shared_row_prefix_grows_to_deepest_consumer(
        self, serve_framework, query_positions
    ):
        scans = SharedDoorScans(serve_framework.distance_index)
        position = query_positions[0]
        shallow = batched_range_query(serve_framework, position, 2.0, scans)
        deep = batched_range_query(serve_framework, position, 20.0, scans)
        assert set(shallow) <= set(deep)

    def test_unreachable_pt2pt_target_is_inf_not_error(self, serve_framework):
        space = serve_framework.space
        # Distances to a same-position target are exact; unreachable pairs
        # must come back inf without poisoning reachable ones.
        from tests.queries.conftest import random_point_in
        import random

        rng = random.Random(5)
        indoor = [p for p in space.partition_ids if p != 0]
        source = random_point_in(space, rng, indoor)
        target = random_point_in(space, rng, indoor)
        values = batched_pt2pt_distances(space, source, [target, source])
        assert values[1] == 0.0
        assert values[0] == pt2pt_distance(space, source, target)
        assert all(v >= 0.0 or math.isinf(v) for v in values)
