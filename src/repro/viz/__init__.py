"""Floor-plan visualisation (SVG, dependency-free).

Renders one floor of an indoor space — partitions coloured by kind,
obstacles, doors (one-way doors highlighted), objects, shortest paths, and
query ranges — to an SVG string for docs, debugging, and the examples.
"""

from repro.viz.dot import to_dot
from repro.viz.svg import render_svg, save_svg

__all__ = ["render_svg", "save_svg", "to_dot"]
