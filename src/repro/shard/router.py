"""Scatter-gather query routing with explicit partial-result semantics.

:class:`ScatterGatherRouter` turns per-shard exact answers into one
building-wide answer.  Its merges are *proofs*, not heuristics, because
the placement partitions the object population exactly:

* **range** — each healthy shard returns the sorted ids of *its* objects
  inside the radius; the slices are disjoint, so their sorted union is
  bit-identical to the single-process engine's answer.
* **kNN** — each healthy shard returns its local exact top-k as
  ``(id, distance)`` pairs; the global top-k is contained in the union of
  local top-ks, and re-sorting the union by ``(distance, id)`` reproduces
  the engine's tie-breaking exactly.
* **pt2pt** — every shard indexes the whole topology, so any one shard's
  answer is *the* answer; the router hedges sequentially from the shard
  owning the query floor to the rest.

The scatter itself is *distance-aware*: before fanning out, the router
bounds each shard's best possible contribution from below via the
framework's distance backend (``min_distance_between`` — a dense
submatrix minimum for M_d2d, a label join for :mod:`repro.labels`; both
produce bit-identical bounds).
Any indoor path from the query's host partition to an object hosted
elsewhere must leave through one of the partition's leaveable doors and
enter the object's partition through an enterable door, so

    dist(p, o)  >=  min over (d, d') of  M_d2d[d, d']

with ``d`` ranging over P2D⊢(π(p)) and ``d'`` over the enterable doors
of the shard's object-hosting partitions.  A range query therefore skips
every shard whose bound exceeds the radius, and kNN probes the
lowest-bound shard first, then visits only the shards whose bound does
not exceed the k-th local distance.  The bound is a true lower bound on
the indoor walking distance, so pruning never changes the answer — the
merges stay bit-identical to the single-process engine — it only removes
provably irrelevant work from the fan-out.

When a shard is down, hung past its timeout, or circuit-broken, the
router never fails the query and never silently omits the shard's slice:
it fills the gap from the Euclidean rung of the
:class:`~repro.runtime.ladder.QualityLevel` ladder using its local object
table, marks the response ``quality=EUCLIDEAN`` with the culprit shards
in ``missing_shards``, and lets the per-shard
:class:`~repro.serve.breaker.CircuitBreaker` stop hammering the corpse.
The rung guarantees still hold for the merged answer: a range fill is a
superset of the missing slice (Euclidean lower bound ≤ true distance) and
kNN / pt2pt report only lower-bound distances — exactly what the chaos
:class:`~repro.chaos.oracles.DifferentialOracle` checks.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures import wait as wait_futures
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.exceptions import ReproError, ShardUnavailableError
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.overload.budget import RetryBudget
from repro.overload.hedge import HedgePolicy
from repro.runtime.ladder import QualityLevel, euclidean_lower_bound
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import EpochLRUCache
from repro.serve.metrics import MetricsRegistry
from repro.serve.requests import QueryKind, QueryRequest, QueryResponse
from repro.shard.placement import FloorPlacement
from repro.shard.supervisor import ShardSupervisor

#: Matches the engine's range-predicate slack (see runtime.ladder).
_RANGE_EPS = 1e-9

#: Everything a gather can fail with.  ``FutureTimeout`` is distinct
#: from the builtin ``TimeoutError`` before Python 3.11, and
#: ``Future.result`` raises the former.
_GATHER_FAULTS = (FutureTimeout, TimeoutError, ReproError, OSError)


class ScatterGatherRouter:
    """Cross-shard range / kNN / pt2pt with degraded partial results.

    Args:
        supervisor: the worker fleet to scatter over.
        placement: the partition→shard map (must match the supervisor's
            specs).
        framework: the supervisor-side framework the shards were carved
            from; the router keeps per-shard ``(id, position)`` tables
            from it for Euclidean gap filling.
        metrics: shared registry (router metrics under ``serve.*``,
            per-shard ones under ``shard.<id>.serve.*``).
        shard_timeout_s: per-shard answer budget; it is also forwarded to
            the worker as its query deadline, so a slow query degrades at
            both ends.
        failure_threshold / cooldown_ops: per-shard breaker tuning.
        cache_capacity: entries in the exact-answer cache (0 disables).
        hedge_policy: an :class:`~repro.overload.HedgePolicy`.  With one
            installed, a probe still pending after the policy's delay
            (p95-derived from observed probe latency) is re-issued to the
            same shard's worker and the first answer wins — because both
            probes ask the same worker population the same question, the
            merge stays bit-identical to the unhedged path.  ``None``
            (default) keeps plain single-probe gathers.
        retry_budget: a :class:`~repro.overload.RetryBudget` that hedges
            and pt2pt re-scatters draw from, so a struggling fleet is not
            pelted with duplicates; shard successes refill it.
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        placement: FloorPlacement,
        framework: IndexFramework,
        *,
        metrics: Optional[MetricsRegistry] = None,
        shard_timeout_s: float = 2.0,
        failure_threshold: int = 3,
        cooldown_ops: int = 8,
        cache_capacity: int = 1024,
        hedge_policy: Optional[HedgePolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
    ) -> None:
        self.supervisor = supervisor
        self.placement = placement
        self.metrics = metrics or MetricsRegistry()
        self.shard_timeout_s = shard_timeout_s
        self.hedge_policy = hedge_policy
        self.retry_budget = retry_budget
        self._probe_ms = self.metrics.histogram("serve.probe_ms")
        # The sharded tier serves a static topology: the epoch is fixed at
        # construction and every response carries it.
        self._epoch = framework.space.topology_epoch
        self._cache = EpochLRUCache(cache_capacity)
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._shard_metrics: Dict[int, Any] = {}
        self._objects: Dict[int, List[Tuple[int, Point]]] = {}
        store = framework.objects
        for shard_id in placement.shard_ids:
            scoped = self.metrics.scoped(f"shard.{shard_id}")
            self._shard_metrics[shard_id] = scoped
            self._breakers[shard_id] = CircuitBreaker(
                failure_threshold=failure_threshold,
                cooldown_ops=cooldown_ops,
                fallback=QualityLevel.EUCLIDEAN,
                metrics=scoped,
            )
            self._objects[shard_id] = []
        shard_partitions: Dict[int, Set[int]] = {
            shard_id: set() for shard_id in placement.shard_ids
        }
        for obj in store:
            partition_id = store.host_partition_id(obj.object_id)
            shard_id = placement.shard_for_partition(partition_id)
            self._objects[shard_id].append((obj.object_id, obj.position))
            shard_partitions[shard_id].add(partition_id)
        for table in self._objects.values():
            table.sort()
        # Distance-aware pruning state: the distance backend plus, per
        # shard, the enterable doors of its object-hosting partitions.
        # Works for any DistanceBackend via `min_distance_between` (dense
        # submatrix min for the matrix, vectorised label join for labels).
        # Per-partition bounds are memoised lazily in `_bounds`.
        self._topology = framework.space.topology
        self._rtree = framework.rtree
        self._distance_index = framework.distance_index
        known_doors = set(framework.distance_index.door_ids)
        self._known_doors = known_doors
        self._shard_doors: Dict[int, List[int]] = {}
        for shard_id, partitions in shard_partitions.items():
            doors: Set[int] = set()
            for partition_id in partitions:
                doors |= self._topology.enterable_doors(partition_id)
            self._shard_doors[shard_id] = sorted(doors & known_doors)
        self._bounds: Dict[int, Dict[int, float]] = {}
        self._bounds_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def execute(self, request: QueryRequest) -> QueryResponse:
        """Serve one request; never raises for shard failures.

        Healthy fleet → ``EXACT_INDEXED``, bit-identical to the
        single-process engine.  Any missing shard → ``EUCLIDEAN`` with
        ``missing_shards`` naming the gap — degraded, never silently
        wrong.
        """
        start = time.perf_counter()
        self.metrics.increment("serve.requests")
        cached = self._cache.get(request.cache_key(), self._epoch, None)
        if cached is not None:
            self.metrics.increment("serve.cache_hits")
            return self._respond(
                request, cached, QualityLevel.EXACT_INDEXED, (),
                start, from_cache=True,
            )
        self.metrics.increment("serve.cache_misses")
        if request.kind is QueryKind.RANGE:
            value, quality, missing = self._range(request)
        elif request.kind is QueryKind.KNN:
            value, quality, missing = self._knn(request)
        else:
            value, quality, missing = self._pt2pt(request)
        if quality is QualityLevel.EXACT_INDEXED:
            self._cache.put(request.cache_key(), self._epoch, value)
        else:
            self.metrics.increment("serve.degraded")
        return self._respond(request, value, quality, missing, start)

    def shed_execute(self, request: QueryRequest) -> QueryResponse:
        """Answer at the Euclidean rung from the router's local object
        tables without touching the fleet (the admission limiter's shed
        path).

        The rung guarantee matches the gap fill: range answers are
        supersets (Euclidean bound ≤ true walk), kNN / pt2pt report
        lower-bound distances — degraded, never silently wrong.
        """
        start = time.perf_counter()
        self.metrics.increment("serve.requests")
        self.metrics.increment("serve.shed")
        if request.kind is QueryKind.RANGE:
            limit = request.radius + _RANGE_EPS
            value: Any = sorted(
                oid
                for table in self._objects.values()
                for oid, position in table
                if euclidean_lower_bound(request.position, position) <= limit
            )
        elif request.kind is QueryKind.KNN:
            ranked = sorted(
                (euclidean_lower_bound(request.position, position), oid)
                for table in self._objects.values()
                for oid, position in table
            )
            value = [(oid, dist) for dist, oid in ranked[: request.k]]
        else:
            value = euclidean_lower_bound(request.position, request.target)
        self.metrics.increment("serve.degraded")
        return self._respond(
            request, value, QualityLevel.EUCLIDEAN, (), start, shed=True
        )

    def breaker_snapshot(self) -> Dict[int, Dict[str, Any]]:
        """Per-shard breaker state."""
        return {
            shard: breaker.snapshot()
            for shard, breaker in sorted(self._breakers.items())
        }

    def reset_breakers(self) -> None:
        """Force every shard breaker CLOSED (heal / campaign probe)."""
        for breaker in self._breakers.values():
            breaker.reset()

    @property
    def served_epoch(self) -> int:
        return self._epoch

    # ------------------------------------------------------------------
    # Scatter-gather internals
    # ------------------------------------------------------------------
    def _respond(
        self,
        request: QueryRequest,
        value: Any,
        quality: QualityLevel,
        missing: Tuple[int, ...],
        start: float,
        from_cache: bool = False,
        shed: bool = False,
    ) -> QueryResponse:
        latency_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.increment("serve.responses")
        self.metrics.observe("serve.latency_ms", latency_ms)
        self.metrics.observe(
            f"serve.latency_ms.{request.kind.value}", latency_ms
        )
        return QueryResponse(
            request=request,
            value=value,
            quality=quality,
            served_epoch=self._epoch,
            cached=from_cache,
            shed=shed,
            breaker=bool(missing),
            latency_ms=latency_ms,
            missing_shards=missing,
        )

    def _scatter(
        self, shard_ids: List[int], request: QueryRequest
    ) -> Tuple[Dict[int, Any], List[int]]:
        """Fan ``request`` out to ``shard_ids`` and gather within the
        timeout. Returns (answers by shard, missing shard ids)."""
        futures: Dict[int, Future] = {}
        missing: List[int] = []
        for shard_id in shard_ids:
            breaker = self._breakers[shard_id]
            if not breaker.allow_exact():
                missing.append(shard_id)
                continue
            shard_metrics = self._shard_metrics[shard_id]
            try:
                futures[shard_id] = self.supervisor.submit(
                    shard_id, request, budget_s=self.shard_timeout_s
                )
                shard_metrics.increment("serve.requests")
            except ShardUnavailableError:
                shard_metrics.increment("serve.unavailable")
                breaker.record_failure()
                missing.append(shard_id)
        answers: Dict[int, Any] = {}
        scattered_at = time.monotonic()
        deadline = scattered_at + self.shard_timeout_s
        for shard_id, future in futures.items():
            breaker = self._breakers[shard_id]
            shard_metrics = self._shard_metrics[shard_id]
            try:
                answers[shard_id] = self._gather_one(
                    shard_id, request, future, deadline
                )
            except _GATHER_FAULTS:
                shard_metrics.increment("serve.failures")
                breaker.record_failure()
                missing.append(shard_id)
            else:
                self._probe_ms.observe(
                    (time.monotonic() - scattered_at) * 1000.0
                )
                shard_metrics.increment("serve.responses")
                breaker.record_success()
                if self.retry_budget is not None:
                    self.retry_budget.record_success()
        return answers, sorted(missing)

    def _gather_one(
        self,
        shard_id: int,
        request: QueryRequest,
        future: Future,
        deadline: float,
    ) -> Any:
        """One shard's answer, hedged when a policy is installed.

        Waits out the hedge delay on the primary probe; if it is still
        pending, pays one retry-budget token to re-issue the probe to the
        same shard (its restarted worker, after a casualty) and returns
        whichever answer lands first.  Raises a :data:`_GATHER_FAULTS`
        member when no probe answers inside the deadline — the caller
        turns that into the Euclidean gap fill, exactly as unhedged.
        """
        remaining = deadline - time.monotonic()
        if self.hedge_policy is None:
            return future.result(timeout=max(0.0, remaining))
        delay = self.hedge_policy.delay_s(self._probe_ms, self.shard_timeout_s)
        if delay >= remaining:
            return future.result(timeout=max(0.0, remaining))
        try:
            return future.result(timeout=max(0.0, delay))
        except (FutureTimeout, TimeoutError):
            pass
        hedge = self._launch_hedge(shard_id, request, deadline)
        if hedge is None:
            return future.result(timeout=max(0.0, deadline - time.monotonic()))
        return self._first_answer(future, hedge, deadline)

    def _launch_hedge(
        self, shard_id: int, request: QueryRequest, deadline: float
    ) -> Optional[Future]:
        """Re-issue a straggler's probe; None when denied or impossible."""
        if self.retry_budget is not None and not self.retry_budget.try_spend():
            return None
        try:
            hedge = self.supervisor.submit(
                shard_id,
                request,
                budget_s=max(0.0, deadline - time.monotonic()),
            )
        except ShardUnavailableError:
            # Worker mid-restart: nothing to hedge to.  The Euclidean
            # gap fill covers the shard if the primary stays silent.
            self._shard_metrics[shard_id].increment("serve.unavailable")
            return None
        self.metrics.increment("overload.hedged")
        self._shard_metrics[shard_id].increment("serve.hedges")
        return hedge

    def _first_answer(
        self, primary: Future, hedge: Future, deadline: float
    ) -> Any:
        """First successful result of the two probes (first-answer-wins).

        The loser is cancelled best-effort; if one probe errors the
        other is still waited out.  Raises the last probe error, or the
        timeout, when neither answers.
        """
        pending = [primary, hedge]
        last_error: Optional[BaseException] = None
        while pending:
            remaining = deadline - time.monotonic()
            done, _ = wait_futures(
                pending,
                timeout=max(0.0, remaining),
                return_when=FIRST_COMPLETED,
            )
            if not done:
                break  # deadline: neither probe answered in time
            for future in list(pending):
                if future not in done:
                    continue
                pending.remove(future)
                try:
                    value = future.result(timeout=0)
                except _GATHER_FAULTS as exc:
                    last_error = exc
                    continue
                for loser in pending:
                    loser.cancel()
                    self.metrics.increment("overload.hedge_cancelled")
                if future is hedge:
                    self.metrics.increment("overload.hedge_wins")
                return value
        if last_error is not None:
            raise last_error
        raise FutureTimeout(
            "neither primary nor hedge probe answered within the deadline"
        )

    def _populated(self) -> List[int]:
        """Shards that own at least one object (empty shards cannot
        contribute to range/kNN answers and are never scattered to)."""
        return [
            shard_id
            for shard_id in self.placement.shard_ids
            if self._objects[shard_id]
        ]

    def _shard_bounds(
        self, position: Point
    ) -> Optional[Dict[int, float]]:
        """Lower bounds on the indoor distance from ``position`` to any
        object of each shard (0.0 for the position's own shard; ``inf``
        when no door path can reach the shard's partitions).  ``None``
        when the position cannot be located, which disables pruning."""
        partition_id = self._rtree.locate(position)
        if partition_id is None:
            return None
        with self._bounds_lock:
            bounds = self._bounds.get(partition_id)
        if bounds is not None:
            return bounds
        leave_doors = sorted(
            self._topology.leaveable_doors(partition_id) & self._known_doors
        )
        home = self.placement.shard_for_partition(partition_id)
        bounds = {}
        for shard_id in self.placement.shard_ids:
            doors = self._shard_doors[shard_id]
            if shard_id == home:
                bounds[shard_id] = 0.0
            else:
                bounds[shard_id] = self._distance_index.min_distance_between(
                    leave_doors, doors
                )
        with self._bounds_lock:
            self._bounds[partition_id] = bounds
        return bounds

    def _range(
        self, request: QueryRequest
    ) -> Tuple[List[int], QualityLevel, Tuple[int, ...]]:
        populated = self._populated()
        bounds = self._shard_bounds(request.position)
        if bounds is None:
            targets = populated
        else:
            # Sound: every object of a pruned shard sits at a walking
            # distance >= its bound > radius + slack, so the engine's
            # range predicate excludes it too.
            limit = request.radius + _RANGE_EPS
            targets = [s for s in populated if bounds[s] <= limit]
        if len(targets) < len(populated):
            self.metrics.increment(
                "serve.shards_pruned", len(populated) - len(targets)
            )
        answers, missing = self._scatter(targets, request)
        merged: List[int] = []
        for ids in answers.values():
            merged.extend(ids)
        for shard_id in missing:
            merged.extend(
                oid
                for oid, position in self._objects[shard_id]
                if euclidean_lower_bound(request.position, position)
                <= request.radius + _RANGE_EPS
            )
        quality = (
            QualityLevel.EXACT_INDEXED if not missing else QualityLevel.EUCLIDEAN
        )
        return sorted(merged), quality, tuple(missing)

    def _knn(
        self, request: QueryRequest
    ) -> Tuple[List[Tuple[int, float]], QualityLevel, Tuple[int, ...]]:
        populated = self._populated()
        bounds = self._shard_bounds(request.position)
        if bounds is None or len(populated) <= 1:
            answers, missing = self._scatter(populated, request)
        else:
            # Two-phase scatter: probe the lowest-bound shard, then visit
            # only shards whose bound can still improve its k-th local
            # distance.  A pruned shard's objects all sit strictly beyond
            # that distance, so they cannot enter the global top-k even
            # under (distance, id) tie-breaking.
            order = sorted(populated, key=lambda s: (bounds[s], s))
            first = order[0]
            answers, missing = self._scatter([first], request)
            pairs = answers.get(first)
            if pairs is not None and len(pairs) >= request.k:
                kth = pairs[-1][1]
                rest = [s for s in order[1:] if bounds[s] <= kth]
            else:
                rest = order[1:]
            if len(rest) < len(order) - 1:
                self.metrics.increment(
                    "serve.shards_pruned", len(order) - 1 - len(rest)
                )
            if rest:
                more, missing_rest = self._scatter(rest, request)
                answers.update(more)
                missing = sorted(missing + missing_rest)
        ranked: List[Tuple[float, int]] = []
        for pairs in answers.values():
            ranked.extend((dist, oid) for oid, dist in pairs)
        for shard_id in missing:
            # Every object of the missing shard enters at its Euclidean
            # lower bound: reported distances stay <= the true walk, the
            # rung guarantee the differential oracle checks.
            ranked.extend(
                (euclidean_lower_bound(request.position, position), oid)
                for oid, position in self._objects[shard_id]
            )
        ranked.sort()
        quality = (
            QualityLevel.EXACT_INDEXED if not missing else QualityLevel.EUCLIDEAN
        )
        return (
            [(oid, dist) for dist, oid in ranked[: request.k]],
            quality,
            tuple(missing),
        )

    def _pt2pt(
        self, request: QueryRequest
    ) -> Tuple[float, QualityLevel, Tuple[int, ...]]:
        preferred = self.placement.preferred_shard_for_floor(
            request.position.floor
        )
        order = [preferred] + [
            shard_id
            for shard_id in self.placement.shard_ids
            if shard_id != preferred
        ]
        failed: List[int] = []
        for index, shard_id in enumerate(order):
            if (
                index > 0
                and self.retry_budget is not None
                and not self.retry_budget.try_spend()
            ):
                # Every shard after the preferred one is a re-scatter;
                # when the budget is broke, stop hammering the fleet and
                # answer at the Euclidean bound.
                break
            answers, missing = self._scatter([shard_id], request)
            if shard_id in answers:
                # Any shard's pt2pt answer is exact over the full
                # topology; earlier casualties don't degrade it.
                return float(answers[shard_id]), QualityLevel.EXACT_INDEXED, ()
            failed.extend(missing)
        value = euclidean_lower_bound(request.position, request.target)
        return value, QualityLevel.EUCLIDEAN, tuple(sorted(set(failed)))
