"""Synthetic experimental apparatus (paper §VI).

* :mod:`repro.synthetic.building` — the paper's multi-floor office building
  generator: 30 rooms + 2 staircases per floor, star-connected to a hallway,
  staircases flattened into virtual rooms (§VI-A).
* :mod:`repro.synthetic.campus` — N-building composites joined by ground
  corridors and seed-chosen skybridges, for door graphs 10x-100x the
  paper's single-building scale (the labels-backend benchmark regime).
* :mod:`repro.synthetic.objects` — uniformly random indoor objects / POIs
  (§VI-B: random floor → random partition → random position).
* :mod:`repro.synthetic.workload` — random query positions, position pairs,
  and parameter sweeps for the benchmark harness.
"""

from repro.synthetic.building import BuildingConfig, SyntheticBuilding, generate_building
from repro.synthetic.campus import CampusConfig, SyntheticCampus, generate_campus
from repro.synthetic.objects import build_object_store, generate_objects
from repro.synthetic.workload import (
    FlashCrowdConfig,
    TimedOp,
    WorkloadOp,
    flash_crowd_ops,
    flash_crowd_workload,
    query_workload,
    random_position,
    random_position_pairs,
    random_positions,
)

__all__ = [
    "BuildingConfig",
    "CampusConfig",
    "FlashCrowdConfig",
    "SyntheticBuilding",
    "SyntheticCampus",
    "TimedOp",
    "WorkloadOp",
    "flash_crowd_ops",
    "flash_crowd_workload",
    "generate_building",
    "generate_campus",
    "generate_objects",
    "build_object_store",
    "query_workload",
    "random_position",
    "random_positions",
    "random_position_pairs",
]
