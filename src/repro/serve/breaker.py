""":class:`CircuitBreaker` — stop hammering a failing index, degrade instead.

When the exact indexed path starts failing repeatedly (a corrupt M_d2d
caught by the integrity gate, mid-query index loss, deadline blowouts),
retrying every request against it wastes work and — worse — risks serving
answers off a structure known to be damaged.  The breaker is the standard
three-state machine, adapted to the degradation ladder:

* **CLOSED** — healthy; exact requests pass through.  ``failure_threshold``
  *consecutive* index failures trip it OPEN.
* **OPEN** — exact serving suspended; every request is routed straight to
  the configured fallback rung of the
  :class:`~repro.runtime.ladder.QualityLevel` ladder (default
  ``EXACT_FALLBACK``: still paper-exact, just index-free).  After
  ``cooldown_ops`` short-circuited rounds the breaker moves to HALF_OPEN.
* **HALF_OPEN** — probing; exact requests are allowed again.  The first
  success closes the breaker, the first failure re-opens it (and restarts
  the cooldown).

Time is measured in *operations*, not seconds: a breaker that only heals on
a wall clock is untestable deterministically, and chaos campaigns
(:mod:`repro.chaos`) replay by seed.  Every transition is observable via
the shared :class:`~repro.serve.metrics.MetricsRegistry`
(``serve.breaker.opened`` / ``.half_open`` / ``.closed`` /
``.short_circuited``).
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Dict, Optional

from repro.runtime.ladder import QualityLevel
from repro.serve.metrics import MetricsRegistry


class BreakerState(enum.Enum):
    """The three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker over the exact serving path.

    Args:
        failure_threshold: consecutive exact-path failures that trip the
            breaker from CLOSED to OPEN.
        cooldown_ops: short-circuited rounds the breaker stays OPEN before
            probing again (operation-counted, so campaigns replay
            deterministically).
        fallback: the ladder rung requests are served at while the exact
            path is suspended.  The default ``EXACT_FALLBACK`` keeps
            answers paper-exact (index-free evaluation); drop to
            ``DOOR_COUNT`` / ``EUCLIDEAN`` to also shed CPU.
        metrics: registry for transition counters (one is created when
            omitted; pass the service's to share).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_ops: int = 8,
        fallback: QualityLevel = QualityLevel.EXACT_FALLBACK,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_ops < 1:
            raise ValueError(f"cooldown_ops must be >= 1, got {cooldown_ops}")
        if fallback is QualityLevel.EXACT_INDEXED:
            raise ValueError("fallback must be a rung below EXACT_INDEXED")
        self.failure_threshold = failure_threshold
        self.cooldown_ops = cooldown_ops
        self.fallback = fallback
        self.metrics = metrics or MetricsRegistry()
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._cooldown_remaining = 0
        self._opened_total = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """The current breaker state."""
        with self._lock:
            return self._state

    def allow_exact(self) -> bool:
        """Whether the exact indexed path may be tried right now.

        OPEN counts this call against the cooldown; the call that spends
        the last cooldown op moves the breaker to HALF_OPEN and is
        *itself* the probe — short-circuiting it too would waste one
        operation per cooldown, and under concurrent callers the
        remaining count could underflow far below zero, stretching the
        next cooldown.  HALF_OPEN always allows the probe — a probing
        round that happens to be answered entirely from cache simply
        leaves the breaker probing, it can never wedge it.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                self._cooldown_remaining = max(0, self._cooldown_remaining - 1)
                if self._cooldown_remaining <= 0:
                    self._state = BreakerState.HALF_OPEN
                    self.metrics.increment("serve.breaker.half_open")
                    return True  # this call is the probe
                self.metrics.increment("serve.breaker.short_circuited")
                return False
            return True  # HALF_OPEN: probe

    def record_success(self) -> None:
        """An exact-path answer was produced and passed its gates."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self.metrics.increment("serve.breaker.closed")

    def record_failure(self) -> None:
        """The exact path failed (corrupt index, deadline, index loss)."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._consecutive_failures = 0
        self._cooldown_remaining = self.cooldown_ops
        self._opened_total += 1
        self.metrics.increment("serve.breaker.opened")

    def reset(self) -> None:
        """Force the breaker CLOSED (operator action / campaign heal)."""
        with self._lock:
            if self._state is not BreakerState.CLOSED:
                self.metrics.increment("serve.breaker.closed")
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._cooldown_remaining = 0

    def snapshot(self) -> Dict[str, Any]:
        """Current state and counters as one plain dict."""
        with self._lock:
            return {
                "state": self._state.value,
                "consecutive_failures": self._consecutive_failures,
                "cooldown_remaining": max(0, self._cooldown_remaining),
                "opened_total": self._opened_total,
                "fallback": self.fallback.name,
            }
