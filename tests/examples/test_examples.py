"""Smoke tests: every shipped example must run end-to-end and print the
claims its scenario is built around."""

import runpy
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "M_d2d" in out
    assert "d15 -> d12" in out  # the motivating shortest path
    assert "asymmetry" in out
    assert "kNN" in out


def test_airport_boarding(capsys):
    out = run_example("airport_boarding.py", capsys)
    assert "one-way security: unreachable" in out
    assert "REMIND" in out
    assert "reminders sent:" in out
    # Not everyone gets pinged — the whole point of the service.
    assert "14/14" not in out


def test_museum_guide(capsys):
    out = run_example("museum_guide.py", capsys)
    assert "nearest exhibits" in out
    assert "stand in the way" in out
    assert "door-count model crosses 1 door" in out


def test_emergency_evacuation(capsys):
    out = run_example("emergency_evacuation.py", capsys)
    assert "Evacuation planning" in out
    assert "during the fire" in out
    assert "east exit" in out  # the fire forces rerouting eastwards


def test_campus_navigation(capsys):
    out = run_example("campus_navigation.py", capsys)
    assert "indoor-only model: seat -> desk = inf" in out
    assert "integrated model" in out
    assert "matches: yes" in out


def test_airport_live_monitor(capsys):
    out = run_example("airport_boarding.py", capsys)
    assert "Live gate-area monitor" in out
    assert "enters the gate area" in out
    assert "exits the gate area" in out


def test_uncertain_positioning(capsys):
    out = run_example("uncertain_positioning.py", capsys)
    assert "Dr. Amin         90%" in out
    assert "paged (threshold 60%): ['Dr. Amin']" in out
    assert "Nurse Brook       4%" in out


def test_facility_audit(capsys):
    out = run_example("facility_audit.py", capsys)
    assert "lint: 0 issue(s)" in out
    assert "single points of failure" in out
    assert "B2C" in out
    assert "trapped = ['C']" in out


def test_floorplan_render(capsys, tmp_path, monkeypatch):
    import sys
    import xml.etree.ElementTree as ET

    monkeypatch.setattr(sys, "argv", ["floorplan_render.py", str(tmp_path)])
    out = run_example("floorplan_render.py", capsys)
    assert "figure1.svg" in out
    for name in ("figure1.svg", "office_floor0.svg"):
        ET.fromstring((tmp_path / name).read_text())
