"""Tests for the floor-plan linter."""


from repro.geometry import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder
from repro.model.figure1 import build_figure1
from repro.model.validation import (
    Issue,
    Severity,
    check_connectivity,
    check_door_placement,
    check_obstacles,
    check_partition_overlaps,
    validate_space,
)
from repro.synthetic import BuildingConfig, generate_building


class TestCleanPlans:
    def test_figure1_is_clean(self):
        assert validate_space(build_figure1()) == []

    def test_synthetic_building_is_clean(self):
        building = generate_building(BuildingConfig(floors=2, rooms_per_floor=4))
        assert validate_space(building.space) == []


class TestOverlapCheck:
    def test_overlapping_partitions_detected(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(5, 0, 15, 10))  # overlaps 1
        builder.add_door(1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2))
        issues = check_partition_overlaps(builder.build())
        assert len(issues) == 1
        assert issues[0].code == "partition-overlap"
        assert issues[0].severity is Severity.ERROR

    def test_different_floors_do_not_overlap(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10, floor=0))
        builder.add_partition(2, rectangle(0, 0, 10, 10, floor=1))
        assert check_partition_overlaps(builder.build()) == []

    def test_touching_walls_are_fine(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_door(1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2))
        assert check_partition_overlaps(builder.build()) == []


class TestDoorPlacementCheck:
    def test_door_inside_partition_flagged(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        # The door sits strictly inside partition 1, not on the shared wall.
        builder.add_door(1, Point(5, 5), connects=(1, 2))
        issues = check_door_placement(builder.build(validate_geometry=False))
        codes = {issue.code for issue in issues}
        assert "door-off-wall" in codes

    def test_wall_door_is_clean(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_door(1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2))
        assert check_door_placement(builder.build()) == []


class TestConnectivityCheck:
    def test_isolated_partition(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_partition(3, rectangle(20, 0, 30, 10))  # no doors
        builder.add_door(1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2))
        issues = check_connectivity(builder.build())
        codes = [issue.code for issue in issues]
        assert "isolated-partition" in codes
        assert "not-strongly-connected" in codes

    def test_one_way_trap_flagged(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 2), one_way=True
        )
        issues = check_connectivity(builder.build())
        codes = [issue.code for issue in issues]
        assert "no-way-out" in codes  # partition 2
        assert "no-way-in" in codes  # partition 1

    def test_single_partition_plan_is_fine(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        assert check_connectivity(builder.build()) == []


class TestObstacleCheck:
    def test_protruding_obstacle_flagged(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(
            1, rectangle(0, 0, 10, 10), obstacles=(rectangle(8, 8, 12, 12),)
        )
        issues = check_obstacles(builder.build())
        assert len(issues) == 1
        assert issues[0].code == "obstacle-outside-partition"
        assert issues[0].severity is Severity.ERROR

    def test_contained_obstacle_is_fine(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(
            1, rectangle(0, 0, 10, 10), obstacles=(rectangle(2, 2, 4, 4),)
        )
        assert check_obstacles(builder.build()) == []


class TestValidateSpace:
    def test_errors_sort_before_warnings(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(
            1, rectangle(0, 0, 10, 10), obstacles=(rectangle(8, 8, 12, 12),)
        )
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 2), one_way=True
        )
        issues = validate_space(builder.build())
        severities = [issue.severity for issue in issues]
        assert severities == sorted(
            severities, key=lambda s: s is not Severity.ERROR
        )
        assert severities[0] is Severity.ERROR

    def test_issue_str(self):
        issue = Issue(Severity.WARNING, "demo", "something odd")
        assert str(issue) == "[warning] demo: something odd"
