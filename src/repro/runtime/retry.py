"""Bounded retry-with-rebuild for stale or corrupt indexes.

When a query finds its framework stale (the space's topology epoch moved on)
the resilient engine can transparently rebuild the §IV structures instead of
failing — but rebuilds are expensive and may themselves fail mid-mutation,
so they are *bounded* by a :class:`RetryPolicy`: at most ``max_attempts``
rebuilds with exponential backoff between them.  The sleep function is
injectable so tests run instantly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

from repro.exceptions import ReproError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry an index rebuild, and how long to wait.

    Attributes:
        max_attempts: rebuild attempts allowed per query (0 disables
            rebuilds entirely — stale indexes then degrade down the ladder).
        base_delay: seconds to sleep before the second attempt.
        multiplier: backoff factor applied per further attempt.
        max_delay: backoff ceiling in seconds.
        sleep: the sleep function, injectable for deterministic tests.
    """

    max_attempts: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def delays(self) -> Iterator[float]:
        """The backoff delay *before* each attempt (0 before the first)."""
        delay = 0.0
        for attempt in range(self.max_attempts):
            yield delay
            delay = (
                self.base_delay
                if attempt == 0
                else min(delay * self.multiplier, self.max_delay)
            )

    def run(self, operation: Callable[[], T]) -> T:
        """Run ``operation`` under this policy.

        Retries on any :class:`~repro.exceptions.ReproError`; after the last
        attempt the final error propagates.  With ``max_attempts == 0`` the
        operation is never run and ``RuntimeError`` is raised — callers gate
        on ``max_attempts`` first.
        """
        if self.max_attempts == 0:
            raise RuntimeError("retry policy allows no attempts")
        last_error: ReproError
        for delay in self.delays():
            if delay > 0:
                self.sleep(delay)
            try:
                return operation()
            except ReproError as exc:
                last_error = exc
        raise last_error


#: Rebuilds disabled: stale indexes degrade down the ladder instead.
NO_REBUILD = RetryPolicy(max_attempts=0)
