"""REP001 — lock discipline in ``repro.serve``, ``repro.persist``,
``repro.shard``, ``repro.labels``, and ``repro.overload``.

A class that allocates a lock (``threading.Lock``, ``RLock``,
``Condition``, or a semaphore) is announcing that its ``self._*`` state
is shared across threads.  Every write to such state outside ``__init__``
must therefore happen inside a ``with self.<lock>`` block — or inside a
private helper that is *only ever called* while a lock is held.

The helper case matters in this codebase: ``CircuitBreaker._trip``
writes breaker state with no visible ``with`` because its single caller
(``record_failure``) already holds ``self._lock``.  The checker computes
that closure by fixed point: a private method counts as lock-held when
it has at least one in-class call site and every call site is either
syntactically inside a ``with self.<lock>`` block or in a method that is
itself lock-held.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import Checker, register

_SCOPE_PREFIXES = (
    "repro.serve",
    "repro.persist",
    "repro.shard",
    "repro.labels",
    "repro.overload",
)
_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}
_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__", "__init_subclass__"}


def _is_lock_factory(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    return False


def _self_attr(node: ast.expr) -> str:
    """``self.<attr>`` -> attr name, else ""."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


class _MethodFacts:
    """Per-method write sites and in-class call sites."""

    def __init__(self, name: str) -> None:
        self.name = name
        # (line, col, attr) of writes to self._x outside any with-lock.
        self.unlocked_writes: List[Tuple[int, int, str]] = []
        # (callee simple name, call site inside a with-lock?)
        self.calls: List[Tuple[str, bool]] = []


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method body tracking whether a declared lock is held."""

    def __init__(self, locks: Set[str], facts: _MethodFacts) -> None:
        self.locks = locks
        self.facts = facts
        self.depth = 0  # nesting depth of with-lock blocks

    def visit_With(self, node: ast.With) -> None:
        held = any(self._locks_item(item) for item in node.items)
        if held:
            self.depth += 1
        self.generic_visit(node)
        if held:
            self.depth -= 1

    def _locks_item(self, item: ast.withitem) -> bool:
        expr = item.context_expr
        # with self._lock:  /  with self._cv:
        if _self_attr(expr) in self.locks:
            return True
        # with self._lock as held:  — same expr, handled above.
        # with self._cv.something(): e.g. Condition helpers — not a hold.
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target)
        self.generic_visit(node)

    def _record_write(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write(element)
            return
        attr = _self_attr(target)
        if not attr or not attr.startswith("_") or attr in self.locks:
            return
        if self.depth == 0:
            self.facts.unlocked_writes.append(
                (target.lineno, target.col_offset, attr)
            )

    def visit_Call(self, node: ast.Call) -> None:
        attr = _self_attr(node.func)
        if attr:
            self.facts.calls.append((attr, self.depth > 0))
        self.generic_visit(node)

    # Nested defs inherit the enclosing lock depth conservatively: a
    # closure created under the lock usually runs later, off-lock, so we
    # reset depth inside it and analyse its writes as unlocked.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved, self.depth = self.depth, 0
        self.generic_visit(node)
        self.depth = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved, self.depth = self.depth, 0
        self.generic_visit(node)
        self.depth = saved


@register
class LockDisciplineChecker(Checker):
    rule_id = "REP001"
    summary = (
        "writes to self._* state of lock-owning classes must hold the lock"
    )

    def check(
        self, module: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        if not module.module_name.startswith(_SCOPE_PREFIXES):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        locks = self._declared_locks(methods)
        if not locks:
            return []

        facts: Dict[str, _MethodFacts] = {}
        for method in methods:
            if method.name in _EXEMPT_METHODS:
                continue
            if self._is_static(method):
                continue
            method_facts = _MethodFacts(method.name)
            visitor = _MethodVisitor(locks, method_facts)
            for stmt in method.body:
                visitor.visit(stmt)
            facts[method.name] = method_facts

        lock_held = self._lock_held_closure(facts)

        findings: List[Finding] = []
        for name, method_facts in sorted(facts.items()):
            if name in lock_held:
                continue
            for line, col, attr in method_facts.unlocked_writes:
                lock_list = ", ".join(f"self.{lock}" for lock in sorted(locks))
                findings.append(
                    self.finding(
                        module,
                        line,
                        col,
                        f"{cls.name}.{name} writes self.{attr} without "
                        f"holding a declared lock ({lock_list})",
                        hint=(
                            f"wrap the write in 'with self."
                            f"{sorted(locks)[0]}:' or ensure every call "
                            "site of this method already holds it"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _declared_locks(
        methods: List[ast.FunctionDef],
    ) -> Set[str]:
        locks: Set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr:
                            locks.add(attr)
        return locks

    @staticmethod
    def _is_static(method: ast.FunctionDef) -> bool:
        for decorator in method.decorator_list:
            name = decorator.id if isinstance(decorator, ast.Name) else (
                decorator.attr if isinstance(decorator, ast.Attribute) else ""
            )
            if name in ("staticmethod", "classmethod"):
                return True
        args = method.args.posonlyargs + method.args.args
        return not args or args[0].arg != "self"

    @staticmethod
    def _lock_held_closure(facts: Dict[str, _MethodFacts]) -> Set[str]:
        """Private methods reachable only with a lock held (fixed point).

        Start by assuming every private method with at least one in-class
        call site qualifies, then repeatedly evict any whose call sites
        include one that is neither under a ``with`` nor in a still-
        qualifying method.  This is the greatest fixed point, so mutually
        recursive lock-held helpers stay exempt.
        """
        call_sites: Dict[str, List[Tuple[str, bool]]] = {}
        for caller, method_facts in facts.items():
            for callee, held in method_facts.calls:
                call_sites.setdefault(callee, []).append((caller, held))

        candidates = {
            name
            for name in facts
            if name.startswith("_") and call_sites.get(name)
        }
        changed = True
        while changed:
            changed = False
            for name in list(candidates):
                for caller, held in call_sites.get(name, []):
                    if held or caller in candidates:
                        continue
                    candidates.discard(name)
                    changed = True
                    break
        return candidates
