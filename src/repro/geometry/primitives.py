"""Planar geometric primitives: points and segments.

Indoor positions live on a floor of a building, so :class:`Point` carries an
integer ``floor`` in addition to planar coordinates.  All distance-bearing
geometry in the library is per-floor; vertical movement is modelled by the
staircase "virtual rooms" of the indoor-space model (paper §VI-A), never by
three-dimensional Euclidean distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import GeometryError

#: Tolerance used by all approximate geometric comparisons (metres).
EPSILON = 1e-9


@dataclass(frozen=True, order=True)
class Point:
    """An indoor position: planar coordinates on a given floor.

    Points are immutable and hashable so they can be dictionary keys, set
    members, and graph nodes.
    """

    x: float
    y: float
    floor: int = 0

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``, which must be on the same floor.

        Raises:
            GeometryError: if the points are on different floors. Cross-floor
                distances are only meaningful through the indoor model.
        """
        if self.floor != other.floor:
            raise GeometryError(
                f"Euclidean distance undefined across floors "
                f"({self.floor} vs {other.floor}); use the indoor model"
            )
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy, self.floor)

    def on_floor(self, floor: int) -> "Point":
        """Return a copy of this point placed on ``floor``."""
        return Point(self.x, self.y, floor)

    def approx_equals(self, other: "Point", tol: float = EPSILON) -> bool:
        """True when both points share a floor and lie within ``tol``."""
        return (
            self.floor == other.floor
            and abs(self.x - other.x) <= tol
            and abs(self.y - other.y) <= tol
        )

    def __str__(self) -> str:
        return f"({self.x:g}, {self.y:g})@F{self.floor}"


def orientation(a: Point, b: Point, c: Point) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns:
        ``+1`` for counter-clockwise, ``-1`` for clockwise, ``0`` for
        (approximately) collinear.
    """
    cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    if cross > EPSILON:
        return 1
    if cross < -EPSILON:
        return -1
    return 0


@dataclass(frozen=True)
class Segment:
    """A closed straight-line segment between two points on one floor."""

    start: Point
    end: Point

    def __post_init__(self) -> None:
        if self.start.floor != self.end.floor:
            raise GeometryError("segment endpoints must share a floor")

    @property
    def floor(self) -> int:
        """The floor both endpoints lie on."""
        return self.start.floor

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """The point halfway between the endpoints."""
        return Point(
            (self.start.x + self.end.x) / 2.0,
            (self.start.y + self.end.y) / 2.0,
            self.start.floor,
        )

    def contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """True when ``p`` lies on the segment (within ``tol``)."""
        if p.floor != self.floor:
            return False
        if orientation(self.start, self.end, p) != 0:
            return False
        return (
            min(self.start.x, self.end.x) - tol <= p.x <= max(self.start.x, self.end.x) + tol
            and min(self.start.y, self.end.y) - tol <= p.y <= max(self.start.y, self.end.y) + tol
        )

    def intersects(self, other: "Segment") -> bool:
        """True when the two closed segments share at least one point."""
        if self.floor != other.floor:
            return False
        o1 = orientation(self.start, self.end, other.start)
        o2 = orientation(self.start, self.end, other.end)
        o3 = orientation(other.start, other.end, self.start)
        o4 = orientation(other.start, other.end, self.end)
        if o1 != o2 and o3 != o4:
            return True
        # Collinear overlap / endpoint-touching cases.
        return (
            (o1 == 0 and self.contains_point(other.start))
            or (o2 == 0 and self.contains_point(other.end))
            or (o3 == 0 and other.contains_point(self.start))
            or (o4 == 0 and other.contains_point(self.end))
        )

    def properly_intersects(self, other: "Segment") -> bool:
        """True when the segments cross at a single interior point.

        Shared endpoints and collinear overlaps do *not* count.  This is the
        predicate visibility graphs need: two sight lines that merely touch at
        an obstacle corner do not block each other.
        """
        if self.floor != other.floor:
            return False
        o1 = orientation(self.start, self.end, other.start)
        o2 = orientation(self.start, self.end, other.end)
        o3 = orientation(other.start, other.end, self.start)
        o4 = orientation(other.start, other.end, self.end)
        return o1 != o2 and o3 != o4 and 0 not in (o1, o2, o3, o4)

    def __str__(self) -> str:
        return f"[{self.start} -> {self.end}]"
