"""Unit tests for the benchmark harness (tiny scales: correctness of the
plumbing, not performance)."""


from repro.bench.harness import (
    BenchScale,
    PAPER,
    QUICK,
    current_scale,
    measure_fig6,
    measure_fig7,
    measure_fig8a,
    measure_fig8b,
    measure_fig8c,
    measure_fig9a,
    measure_fig9b,
    measure_fig9c,
    render_table,
)

TINY = BenchScale(
    name="tiny",
    fig6_floors=(2,),
    fig6_pairs=2,
    fig7_pairs=2,
    query_count=3,
    object_counts=(50,),
    query_floors=(2,),
    objects_per_floor=20,
    fig8_radii=(10.0, 20.0),
    fig9_ks=(1, 5),
)


class TestScaleSelection:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale() is QUICK

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert current_scale() is PAPER

    def test_unknown_scale_falls_back_to_quick(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        assert current_scale() is QUICK


class TestMeasurements:
    def test_fig6_rows(self):
        rows = measure_fig6(TINY)
        assert [row["floors"] for row in rows] == [2]
        for key in ("algorithm2_ms", "algorithm3_ms", "algorithm4_ms"):
            assert rows[0][key] > 0

    def test_fig6_without_basic(self):
        rows = measure_fig6(TINY, include_basic=False)
        assert "algorithm2_ms" not in rows[0]

    def test_fig7_rows_have_speedup(self):
        rows = measure_fig7(TINY)
        assert rows[0]["alg4_speedup"] > 0
        assert rows[0]["algorithm3_ms"] > 0

    def test_fig8_rows(self):
        for measure in (measure_fig8a, measure_fig8b):
            rows = measure(TINY)
            assert rows[0]["with_index_ms"] > 0
            assert rows[0]["without_index_ms"] > 0
        rows = measure_fig8c(TINY)
        assert rows[0]["r10m_ms"] > 0
        assert rows[0]["r20m_ms"] > 0

    def test_fig9_rows(self):
        for measure in (measure_fig9a, measure_fig9b):
            rows = measure(TINY)
            assert rows[0]["with_index_ms"] > 0
        rows = measure_fig9c(TINY)
        assert rows[0]["k1_ms"] > 0
        assert rows[0]["k5_ms"] > 0


class TestCaches:
    def test_buildings_are_cached_by_floor_count(self):
        from repro.bench.harness import get_building

        assert get_building(2) is get_building(2)

    def test_frameworks_are_cached(self):
        from repro.bench.harness import get_framework

        assert get_framework(2) is get_framework(2)

    def test_stores_are_cached_by_size(self):
        from repro.bench.harness import get_store

        assert get_store(2, 10) is get_store(2, 10)
        assert get_store(2, 10) is not get_store(2, 20)

    def test_with_objects_shares_static_indexes(self):
        from repro.bench.harness import get_framework, get_store

        base = get_framework(2)
        combined = base.with_objects(get_store(2, 10))
        assert combined.distance_index is base.distance_index
        assert combined.dpt is base.dpt
        assert combined.rtree is base.rtree
        assert combined.objects is get_store(2, 10)


class TestRendering:
    def test_render_table(self):
        text = render_table(
            [{"floors": 10, "ms": 1.234}, {"floors": 20, "ms": 5.0}],
            title="demo",
        )
        assert "demo" in text
        assert "floors" in text
        assert "1.23" in text
        assert "20" in text

    def test_render_empty(self):
        assert "(no data)" in render_table([], title="empty")
