"""The sharded serving facade: one object, a fleet of processes behind it.

:class:`ShardedQueryService` assembles the whole multi-process tier —
recovery, placement, the shared-memory arena, per-shard snapshots, the
:class:`~repro.shard.supervisor.ShardSupervisor`, and the
:class:`~repro.shard.router.ScatterGatherRouter` — behind the same
lifecycle surface as :class:`~repro.serve.lifecycle.SupervisedQueryService`
(STARTING → READY → DRAINING → STOPPED, ``execute`` / ``serve`` /
``readiness``), so callers, benchmarks, and chaos campaigns can swap the
two tiers freely.

Startup order matters and is fixed:

1. recover (or accept) the full building framework;
2. compute the deterministic placement and publish the arena;
3. write each shard's private warm snapshot (the middle restart rung —
   and the file chaos corrupts);
4. spawn the supervisor and wait for every worker's ``ready``;
5. stand up the router over the live fleet.

Shutdown reverses it: drain the workers (each writes a final shard
snapshot), optionally checkpoint the full framework into the store, then
unlink the arena segments — the supervisor is the arena's only owner.
"""

from __future__ import annotations

import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.exceptions import ServiceUnavailableError
from repro.index.framework import IndexFramework
from repro.overload.budget import RetryBudget
from repro.overload.hedge import HedgePolicy
from repro.overload.introspect import overload_snapshot
from repro.overload.limiter import AdaptiveConcurrencyLimiter
from repro.persist.recovery import RecoveryManager, RecoveryReport, SnapshotStore
from repro.persist.snapshot import save_snapshot
from repro.persist.wal import TopologyWAL
from repro.runtime.faults import FaultHandle, flip_snapshot_byte
from repro.serve.metrics import MetricsRegistry
from repro.serve.requests import QueryRequest, QueryResponse
from repro.serve.service import ServiceState
from repro.shard.placement import FloorPlacement
from repro.shard.reconfig import ReconfigCoordinator, ReconfigRecorder
from repro.shard.router import ScatterGatherRouter
from repro.shard.shm import SharedIndexArena
from repro.shard.spec import shard_framework, shard_specs
from repro.shard.supervisor import ShardSupervisor


class ShardedQueryService:
    """Shared-nothing multi-process serving over one indoor space.

    Construct from a :class:`SnapshotStore` (production shape: the crash
    recovery ladder of :mod:`repro.persist` produces the framework) or
    from a prebuilt :class:`IndexFramework` (benchmarks, tests).

    Args:
        store: snapshot store to recover from and checkpoint into.
        framework: prebuilt framework (exactly one of ``store`` /
            ``framework`` is required).
        rebuild: zero-arg framework factory for the recovery ladder's
            last rung (``store`` mode only).
        shards: worker-process count.
        metrics: shared registry for the whole tier.
        snapshot_on_shutdown: checkpoint the full framework into the
            store during :meth:`shutdown` (``store`` mode only).
        client_threads: size of the :meth:`serve` dispatch pool.
        shard_timeout_s / failure_threshold / cooldown_ops /
        cache_capacity: router tuning (see
            :class:`~repro.shard.router.ScatterGatherRouter`).
        heartbeat_interval / liveness_timeout / start_timeout /
        restart_backoff / restart_budget / start_method: supervisor
            tuning (see :class:`~repro.shard.supervisor.ShardSupervisor`).
        limiter: an :class:`~repro.overload.AdaptiveConcurrencyLimiter`
            gating admission.  Requests beyond its limit (in-flight,
            counted at :meth:`execute`) are answered from the router's
            Euclidean shed path without touching the fleet; every served
            latency feeds the AIMD adjustment.
        hedge_policy / retry_budget: hedged scatter-gather tuning,
            forwarded to the router (see
            :class:`~repro.shard.router.ScatterGatherRouter`); the retry
            budget also gates pt2pt re-scatters.
        reconfig_ack_timeout_s: per-worker prepare/commit ack budget for
            live topology reconfiguration rounds (see
            :class:`~repro.shard.reconfig.ReconfigCoordinator`).
    """

    def __init__(
        self,
        store: Optional[SnapshotStore] = None,
        *,
        framework: Optional[IndexFramework] = None,
        rebuild: Optional[Callable[[], IndexFramework]] = None,
        shards: int = 3,
        metrics: Optional[MetricsRegistry] = None,
        snapshot_on_shutdown: bool = True,
        client_threads: int = 8,
        shard_timeout_s: float = 2.0,
        failure_threshold: int = 3,
        cooldown_ops: int = 8,
        cache_capacity: int = 1024,
        heartbeat_interval: float = 0.2,
        liveness_timeout: float = 3.0,
        start_timeout: float = 60.0,
        restart_backoff: float = 0.05,
        restart_budget: int = 5,
        start_method: str = "spawn",
        limiter: Optional[AdaptiveConcurrencyLimiter] = None,
        hedge_policy: Optional[HedgePolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
        reconfig_ack_timeout_s: float = 30.0,
    ) -> None:
        if (store is None) == (framework is None):
            raise ValueError(
                "provide exactly one of store= or framework="
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.store = store
        self.shards = shards
        self.metrics = metrics or MetricsRegistry()
        self.limiter = limiter
        self.hedge_policy = hedge_policy
        self.retry_budget = retry_budget
        if limiter is not None and limiter.metrics is not self.metrics:
            limiter.metrics = self.metrics
        if (
            retry_budget is not None
            and retry_budget.metrics is not self.metrics
        ):
            retry_budget.metrics = self.metrics
        self._rebuild = rebuild
        self._snapshot_on_shutdown = snapshot_on_shutdown
        self._client_threads = client_threads
        self._router_opts = {
            "shard_timeout_s": shard_timeout_s,
            "failure_threshold": failure_threshold,
            "cooldown_ops": cooldown_ops,
            "cache_capacity": cache_capacity,
            "hedge_policy": hedge_policy,
            "retry_budget": retry_budget,
        }
        self._supervisor_opts = {
            "heartbeat_interval": heartbeat_interval,
            "liveness_timeout": liveness_timeout,
            "start_timeout": start_timeout,
            "restart_backoff": restart_backoff,
            "restart_budget": restart_budget,
            "start_method": start_method,
        }
        self._lock = threading.Lock()
        self._state = ServiceState.STARTING
        self._inflight = 0
        self._framework: Optional[IndexFramework] = framework
        self._report: Optional[RecoveryReport] = None
        self._placement: Optional[FloorPlacement] = None
        self._arena: Optional[SharedIndexArena] = None
        self._supervisor: Optional[ShardSupervisor] = None
        self._router: Optional[ScatterGatherRouter] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._snapshot_dir: Optional[Path] = None
        self._reconfig_ack_timeout_s = reconfig_ack_timeout_s
        self._coordinator: Optional[ReconfigCoordinator] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> ServiceState:
        with self._lock:
            return self._state

    def start(self, wait: bool = True) -> "ShardedQueryService":
        """Bring the tier up (idempotent). Synchronous: by the time this
        returns with ``wait=True`` every shard reported ready."""
        with self._lock:
            if self._state is not ServiceState.STARTING:
                return self
            if self._supervisor is not None:
                return self
            framework = self._framework
        if framework is None:
            recovery = RecoveryManager(self.store, rebuild=self._rebuild)
            report = recovery.recover()
            framework = report.framework
        else:
            report = None

        placement = FloorPlacement.for_space(framework.space, self.shards)
        # The shared-memory arena holds the dense M_d2d / M_idx pair, so a
        # labels-backed tier skips it — workers restart via snapshot/rebuild.
        backend = str(framework.build_config.get("backend", "matrix"))
        arena = (
            SharedIndexArena.create(framework.distance_index)
            if backend == "matrix"
            else None
        )
        tempdir: Optional[tempfile.TemporaryDirectory] = None
        if self.store is not None:
            snapshot_dir = self.store.directory / "shards"
            snapshot_dir.mkdir(parents=True, exist_ok=True)
        else:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-shard-")
            snapshot_dir = Path(tempdir.name)
        specs = shard_specs(
            framework,
            placement,
            arena=arena,
            snapshot_dir=snapshot_dir,
            # Same per-process budget as the router cache: each worker
            # caches its slice's answers, so the tier's aggregate cache
            # capacity scales with the shard count.
            cache_capacity=self._router_opts["cache_capacity"],
        )
        for spec in specs:
            save_snapshot(
                shard_framework(framework, placement, spec.shard_id),
                spec.snapshot_path,
            )
        supervisor = ShardSupervisor(
            specs, metrics=self.metrics, **self._supervisor_opts
        )
        supervisor.start()
        if wait and not supervisor.await_ready(
            timeout=self._supervisor_opts["start_timeout"]
        ):
            supervisor.stop()
            if arena is not None:
                arena.unlink()
            if tempdir is not None:
                tempdir.cleanup()
            raise ServiceUnavailableError(
                "sharded service failed to start: "
                f"shard states {supervisor.states()}",
                state=ServiceState.STARTING.value,
            )
        router = ScatterGatherRouter(
            supervisor,
            placement,
            framework,
            metrics=self.metrics,
            **self._router_opts,
        )
        pool = ThreadPoolExecutor(
            max_workers=self._client_threads,
            thread_name_prefix="repro-shard-client",
        )
        # The reconfiguration WAL: shared with crash recovery in store
        # mode (the recovery ladder already replayed it into the space we
        # just recovered, so mutations recorded here are re-applied on
        # the next restart for free).
        wal = (
            self.store.wal()
            if self.store is not None
            else TopologyWAL(snapshot_dir / "wal.log")
        )
        coordinator = ReconfigCoordinator(
            supervisor,
            router,
            framework,
            wal,
            placement.shard_ids,
            metrics=self.metrics,
            ack_timeout_s=self._reconfig_ack_timeout_s,
            on_adopt=self._adopt_framework,
        )
        with self._lock:
            self._framework = framework
            self._report = report
            self._placement = placement
            self._arena = arena
            self._supervisor = supervisor
            self._router = router
            self._pool = pool
            self._tempdir = tempdir
            self._snapshot_dir = snapshot_dir
            self._coordinator = coordinator
            self._state = ServiceState.READY
        return self

    def shutdown(self) -> Optional[RecoveryReport]:
        """Drain the fleet, checkpoint, and release the arena."""
        with self._lock:
            if self._state in (ServiceState.DRAINING, ServiceState.STOPPED):
                return self._report
            self._state = ServiceState.DRAINING
            supervisor = self._supervisor
            arena = self._arena
            pool = self._pool
            framework = self._framework
            tempdir = self._tempdir
        if pool is not None:
            pool.shutdown(wait=True)
        if supervisor is not None:
            supervisor.stop()
        if arena is not None:
            arena.unlink()
        if (
            self.store is not None
            and self._snapshot_on_shutdown
            and framework is not None
        ):
            self.store.checkpoint(framework)
        if tempdir is not None:
            tempdir.cleanup()
        with self._lock:
            self._state = ServiceState.STOPPED
        return self._report

    def __enter__(self) -> "ShardedQueryService":
        return self.start(wait=True)

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _require_router(self) -> ScatterGatherRouter:
        with self._lock:
            if self._state is not ServiceState.READY or self._router is None:
                raise ServiceUnavailableError(
                    f"sharded service is {self._state.value}, "
                    "not admitting requests",
                    state=self._state.value,
                )
            return self._router

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Serve one request synchronously (only while READY).

        Shard failures never propagate: the router degrades the missing
        slice and marks the response (see
        :class:`~repro.serve.requests.QueryResponse.missing_shards`).
        """
        return self._guarded_execute(self._require_router(), request)

    def _guarded_execute(
        self, router: ScatterGatherRouter, request: QueryRequest
    ) -> QueryResponse:
        """Route one request through the admission limiter (when
        installed): over-limit requests are answered from the router's
        local Euclidean shed path — degraded instantly instead of
        queueing on a saturated fleet — and every served latency feeds
        the AIMD adjustment."""
        limiter = self.limiter
        if limiter is None:
            return router.execute(request)
        with self._lock:
            self._inflight += 1
            inflight = self._inflight
        try:
            if inflight > limiter.limit:
                response = router.shed_execute(request)
            else:
                response = router.execute(request)
        finally:
            with self._lock:
                self._inflight -= 1
        limiter.observe(response.latency_ms)
        return response

    def serve(self, requests: Iterable[QueryRequest]) -> List[QueryResponse]:
        """Serve many requests concurrently over the client pool,
        preserving order (only while READY)."""
        router = self._require_router()
        with self._lock:
            pool = self._pool
        if pool is None:  # pragma: no cover - state machine excludes it
            raise ServiceUnavailableError("client pool is gone")
        return list(
            pool.map(
                lambda request: self._guarded_execute(router, request),
                requests,
            )
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def framework(self) -> IndexFramework:
        """The supervisor-side full framework (topology + all objects)."""
        with self._lock:
            if self._framework is None:
                raise ServiceUnavailableError("service never started")
            return self._framework

    @property
    def placement(self) -> FloorPlacement:
        with self._lock:
            if self._placement is None:
                raise ServiceUnavailableError("service never started")
            return self._placement

    @property
    def router(self) -> Optional[ScatterGatherRouter]:
        with self._lock:
            return self._router

    @property
    def recovery_report(self) -> Optional[RecoveryReport]:
        with self._lock:
            return self._report

    @property
    def reconfig(self) -> Optional[ReconfigCoordinator]:
        """The live-reconfiguration coordinator (``None`` before start)."""
        with self._lock:
            return self._coordinator

    def wal_recorder(self) -> ReconfigRecorder:
        """The tier's topology-mutation surface.

        Same shape as the single-process tier's
        :class:`~repro.persist.wal.WalRecorder`, but every call here runs
        a full epoch-fenced rolling round across the fleet (see
        :mod:`repro.shard.reconfig`), so chaos campaigns and operators
        mutate either tier identically.
        """
        with self._lock:
            coordinator = self._coordinator
        if coordinator is None:
            raise ServiceUnavailableError("service never started")
        return ReconfigRecorder(coordinator)

    def _adopt_framework(self, framework: IndexFramework) -> None:
        """Publish the post-round full framework (coordinator callback)."""
        with self._lock:
            self._framework = framework

    def readiness(self) -> Dict[str, Any]:
        """Health payload: lifecycle state plus the supervisor's per-shard
        detail and the router's breaker states."""
        with self._lock:
            state = self._state
            supervisor = self._supervisor
            router = self._router
            placement = self._placement
        payload: Dict[str, Any] = {
            "state": state.value,
            "ready": state is ServiceState.READY,
            "shards": self.shards,
        }
        if placement is not None:
            payload["placement"] = placement.to_dict()
        if supervisor is not None:
            payload["supervision"] = supervisor.readiness()
            payload["ready"] = (
                payload["ready"] and payload["supervision"]["ready"]
            )
        if router is not None:
            payload["breakers"] = {
                str(shard): snap
                for shard, snap in router.breaker_snapshot().items()
            }
        with self._lock:
            coordinator = self._coordinator
        if coordinator is not None:
            payload["reconfig"] = coordinator.snapshot()
        payload["overload"] = overload_snapshot(
            self.metrics, limiter=self.limiter, budget=self.retry_budget
        )
        return payload

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Counters and latency histograms for the whole tier (router
        metrics under ``serve.*``, per-shard under ``shard.<id>.*``)."""
        return self.metrics.snapshot()

    def await_healthy(self, timeout: float = 30.0) -> bool:
        """Block until every shard is READY again (chaos final probe).

        Also completes any torn reconfiguration round first: once the
        fleet is READY the coordinator re-runs the idempotent
        prepare/commit pass, so "healthy" means *converged to the fence
        epoch*, not merely alive.
        """
        with self._lock:
            supervisor = self._supervisor
            coordinator = self._coordinator
        if supervisor is None:
            return False
        if not supervisor.await_ready(timeout):
            return False
        if coordinator is not None and coordinator.resume():
            # The resume may have planned-restarted stragglers onto the
            # new epoch; wait those restarts out too.
            return supervisor.await_ready(timeout)
        return True

    def reset_breakers(self) -> None:
        """Force every per-shard breaker CLOSED."""
        router = self.router
        if router is not None:
            router.reset_breakers()

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: int, cold: bool = False) -> None:
        """SIGKILL one worker; ``cold=True`` also denies the respawn its
        arena rung, forcing the snapshot (or rebuild) path."""
        with self._lock:
            supervisor = self._supervisor
        if supervisor is None:
            raise ServiceUnavailableError("service never started")
        supervisor.kill_shard(shard_id, cold=cold)

    def hang_shard(self, shard_id: int, seconds: float) -> None:
        """Wedge one worker for ``seconds`` (the liveness deadline decides
        whether it survives)."""
        with self._lock:
            supervisor = self._supervisor
        if supervisor is None:
            raise ServiceUnavailableError("service never started")
        supervisor.hang_shard(shard_id, seconds)

    def corrupt_shard_snapshot(
        self, shard_id: int, count: int = 1, seed: int = 0
    ) -> Optional[FaultHandle]:
        """Flip bytes in one shard's private snapshot file.

        Harmless until that shard cold-restarts — at which point the
        worker must detect the damage, quarantine the file, rebuild from
        the spec, and rewrite a healthy snapshot (self-healing).
        """
        with self._lock:
            supervisor = self._supervisor
        if supervisor is None:
            raise ServiceUnavailableError("service never started")
        path = supervisor.spec_of(shard_id).snapshot_path
        if path is None or not Path(path).exists():
            return None
        return flip_snapshot_byte(path, count=count, seed=seed)
