"""Multi-stop indoor tour planning.

Given a start position and a set of stops (exhibits, inspection points,
delivery drops), find a visiting order minimising the total indoor walking
distance.  Indoor distances are asymmetric when one-way doors are present,
so the planner treats the problem as an *asymmetric* open-path TSP:

* up to :data:`EXACT_LIMIT` stops: exact Held–Karp dynamic programming;
* beyond that: nearest-neighbour construction followed by or-opt moves
  (segment relocation), which — unlike classical 2-opt — never reverses a
  segment and therefore stays valid under asymmetric distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.distance.point_to_point import pt2pt_distance_memoized
from repro.exceptions import QueryError, UnreachableError
from repro.geometry import Point
from repro.model.builder import IndoorSpace

#: Largest stop count solved exactly (Held-Karp is O(2^n * n^2)).
EXACT_LIMIT = 10


@dataclass(frozen=True)
class TourPlan:
    """A planned visiting order.

    Attributes:
        order: indices into the caller's ``stops`` sequence, visit order.
        leg_distances: walking distance of each leg (start → first stop,
            then stop to stop); ``len(leg_distances) == len(order)``.
        total_distance: sum of the legs.
        exact: True when the order is provably optimal (Held-Karp).
    """

    order: Tuple[int, ...]
    leg_distances: Tuple[float, ...]
    total_distance: float
    exact: bool


def _distance_table(
    space: IndoorSpace, start: Point, stops: Sequence[Point]
) -> List[List[float]]:
    """(1+n)×(1+n) walking distance matrix; index 0 is the start."""
    points = [start, *stops]
    table = [[0.0] * len(points) for _ in points]
    for i, a in enumerate(points):
        for j, b in enumerate(points):
            if i != j:
                table[i][j] = pt2pt_distance_memoized(space, a, b)
    return table


def _held_karp(table: List[List[float]], n: int) -> Tuple[List[int], float]:
    """Exact open-path ATSP from node 0 over nodes 1..n."""
    full = 1 << n
    cost = [[math.inf] * n for _ in range(full)]
    parent: List[List[int]] = [[-1] * n for _ in range(full)]
    for j in range(n):
        cost[1 << j][j] = table[0][j + 1]
    for mask in range(full):
        for j in range(n):
            if not mask & (1 << j) or math.isinf(cost[mask][j]):
                continue
            base = cost[mask][j]
            for nxt in range(n):
                if mask & (1 << nxt):
                    continue
                new_mask = mask | (1 << nxt)
                candidate = base + table[j + 1][nxt + 1]
                if candidate < cost[new_mask][nxt]:
                    cost[new_mask][nxt] = candidate
                    parent[new_mask][nxt] = j
    final_mask = full - 1
    best_end = min(range(n), key=lambda j: cost[final_mask][j])
    best_cost = cost[final_mask][best_end]
    order: List[int] = []
    mask, j = final_mask, best_end
    while j != -1:
        order.append(j)
        previous = parent[mask][j]
        mask ^= 1 << j
        j = previous
    order.reverse()
    return order, best_cost


def _nearest_neighbour(table: List[List[float]], n: int) -> List[int]:
    unvisited = set(range(n))
    order: List[int] = []
    current = 0  # table index of the start
    while unvisited:
        nxt = min(unvisited, key=lambda j: table[current][j + 1])
        order.append(nxt)
        unvisited.remove(nxt)
        current = nxt + 1
    return order


def _path_cost(table: List[List[float]], order: Sequence[int]) -> float:
    cost = table[0][order[0] + 1]
    for a, b in zip(order, order[1:]):
        cost += table[a + 1][b + 1]
    return cost


def _or_opt(table: List[List[float]], order: List[int]) -> List[int]:
    """Relocate segments of length 1-3 while improvements exist."""
    improved = True
    best_cost = _path_cost(table, order)
    while improved:
        improved = False
        for seg_len in (1, 2, 3):
            for i in range(len(order) - seg_len + 1):
                segment = order[i : i + seg_len]
                rest = order[:i] + order[i + seg_len :]
                if not rest:
                    continue
                for j in range(len(rest) + 1):
                    if j == i:
                        continue
                    candidate = rest[:j] + segment + rest[j:]
                    cost = _path_cost(table, candidate)
                    if cost < best_cost - 1e-12:
                        order = candidate
                        best_cost = cost
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
    return order


def plan_tour(
    space: IndoorSpace, start: Point, stops: Sequence[Point]
) -> TourPlan:
    """Plan a visiting order over ``stops`` starting from ``start``.

    Raises:
        QueryError: when no stops are given.
        UnreachableError: when some stop cannot be reached at all.
    """
    if not stops:
        raise QueryError("plan_tour needs at least one stop")
    n = len(stops)
    table = _distance_table(space, start, stops)
    for j in range(1, n + 1):
        if math.isinf(table[0][j]) and all(
            math.isinf(table[i][j]) for i in range(1, n + 1) if i != j
        ):
            raise UnreachableError(f"stop {j - 1} is unreachable from anywhere")

    if n <= EXACT_LIMIT:
        order, total = _held_karp(table, n)
        exact = True
    else:
        order = _or_opt(table, _nearest_neighbour(table, n))
        total = _path_cost(table, order)
        exact = False
    if math.isinf(total):
        raise UnreachableError("no feasible visiting order exists")

    legs: List[float] = [table[0][order[0] + 1]]
    for a, b in zip(order, order[1:]):
        legs.append(table[a + 1][b + 1])
    return TourPlan(tuple(order), tuple(legs), total, exact)
