"""Deterministic fault injection for the §IV index structures.

Production indexes fail in undramatic ways: a bad flush leaves NaNs in a
distance matrix, a partial rebuild drops Door-to-Partition records, a
memory-pressure eviction loses the matrix mid-query.  This harness injects
exactly those faults into a live :class:`~repro.index.IndexFramework` so
the degradation ladder and integrity checks are testable rather than
aspirational:

* :func:`corrupt_md2d` — seed-deterministically poison M_d2d entries with
  NaN, negative, or symmetry-breaking values;
* :func:`corrupt_labels` — the same adversary for the 2-hop labels
  backend: poison stored hub distances with NaN, negative, or finite-skew
  values;
* :func:`drop_dpt_records` — remove DPT records (queries expanding through
  the affected doors raise ``UnknownEntityError``);
* :func:`install_flaky_distance_index` — let the matrix serve ``fail_after``
  lookups and then raise :class:`~repro.exceptions.CorruptIndexError`,
  simulating mid-query index loss;
* :func:`flip_snapshot_byte` — flip bytes of a persisted snapshot on disk,
  the adversary the :mod:`repro.persist` checksum/quarantine ladder must
  always catch.

Every injector returns a :class:`FaultHandle` whose :meth:`~FaultHandle.undo`
restores the framework exactly, so a test can sweep many faults over one
expensive fixture.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import CorruptIndexError
from repro.index.framework import IndexFramework

#: The three supported M_d2d corruption modes.
MD2D_MODES = ("nan", "negative", "asymmetric")

#: The three supported label-array corruption modes.  ``"skew"`` is the
#: labels analogue of ``"asymmetric"``: it shifts stored hub distances so
#: answers silently deviate from canonical without tripping NaN checks.
LABELS_MODES = ("nan", "negative", "skew")


@dataclass
class FaultHandle:
    """An injected fault that can be reverted.

    Attributes:
        description: human-readable summary of what was injected.
        cells: the ``(row, column)`` matrix cells touched (M_d2d faults) or
            ``()`` for structural faults.
    """

    description: str
    cells: Tuple[Tuple[int, int], ...] = ()
    _undo: Callable[[], None] = field(default=lambda: None, repr=False)
    _active: bool = field(default=True, repr=False)
    _attempted: bool = field(default=False, repr=False)

    def undo(self) -> None:
        """Restore the framework to its pre-fault state.

        Idempotent and re-entrant: once a restore succeeds, further calls
        are no-ops.  If a restore fails partway (e.g. the injected file was
        quarantined underneath us), the *first* call raises so the failure
        is visible, but the handle stays undoable — a later call retries
        the restore (every injector's restore writes absolute saved state,
        so retrying never re-corrupts) and suppresses a repeat failure
        rather than raising again from cleanup paths.
        """
        if not self._active:
            return
        first_attempt = not self._attempted
        self._attempted = True
        try:
            self._undo()
        except Exception:
            if first_attempt:
                raise
            return
        self._active = False


def _corruptible_cells(
    matrix: np.ndarray, rng: random.Random, count: int
) -> List[Tuple[int, int]]:
    """Pick ``count`` distinct finite off-diagonal cells, seed-determined."""
    finite = np.argwhere(np.isfinite(matrix))
    candidates = [(int(i), int(j)) for i, j in finite if i != j]
    if len(candidates) < count:
        raise ValueError(
            f"matrix has only {len(candidates)} corruptible cells, "
            f"{count} requested"
        )
    return rng.sample(candidates, count)


def corrupt_md2d(
    framework: IndexFramework,
    mode: str = "nan",
    count: int = 1,
    seed: int = 0,
) -> FaultHandle:
    """Poison ``count`` M_d2d entries in place.

    Args:
        framework: the victim framework (its matrix is mutated in place).
        mode: ``"nan"`` writes NaN, ``"negative"`` writes a negative
            distance, ``"asymmetric"`` perturbs one triangle so
            ``M[i, j] != M[j, i]``.
        count: how many distinct off-diagonal finite cells to poison.
        seed: RNG seed — the same seed always poisons the same cells.
    """
    if mode not in MD2D_MODES:
        raise ValueError(f"mode must be one of {MD2D_MODES}, got {mode!r}")
    if getattr(framework.distance_index, "kind", "matrix") != "matrix":
        raise ValueError(
            "corrupt_md2d requires the dense matrix backend; this framework "
            f"uses {framework.distance_index.kind!r} — use corrupt_labels"
        )
    matrix = framework.distance_index.md2d
    rng = random.Random(seed)
    cells = _corruptible_cells(matrix, rng, count)
    saved = [(i, j, float(matrix[i, j])) for i, j in cells]
    for i, j in cells:
        if mode == "nan":
            matrix[i, j] = np.nan
        elif mode == "negative":
            matrix[i, j] = -abs(matrix[i, j]) - 1.0
        else:  # asymmetric: shift one direction only
            matrix[i, j] = matrix[i, j] + 7.5

    def restore() -> None:
        for i, j, value in saved:
            matrix[i, j] = value

    return FaultHandle(
        f"corrupt_md2d(mode={mode}, count={count}, seed={seed})",
        cells=tuple(cells),
        _undo=restore,
    )


def corrupt_labels(
    framework: IndexFramework,
    mode: str = "nan",
    count: int = 1,
    seed: int = 0,
) -> FaultHandle:
    """Poison ``count`` stored L_out hub distances of a labels backend.

    The labels sibling of :func:`corrupt_md2d`.  L_out entries feed both
    the pair-query hub intersection and the materialised scan rows, so one
    poisoned entry is visible to ``distance`` and ``doors_by_distance``
    alike.  ``"nan"`` and ``"negative"`` violations are caught by the
    backend's :meth:`self_check` (and hence ``check_index_integrity``);
    ``"skew"`` shifts a distance by a finite amount and is only observable
    differentially — exactly the adversary the chaos
    :class:`~repro.chaos.oracles.DifferentialOracle` exists to catch.

    Args:
        framework: the victim framework (must be labels-backed).
        mode: one of :data:`LABELS_MODES`.
        count: how many distinct label entries to poison.
        seed: RNG seed — the same seed always poisons the same entries.
    """
    if mode not in LABELS_MODES:
        raise ValueError(f"mode must be one of {LABELS_MODES}, got {mode!r}")
    index = framework.distance_index
    if getattr(index, "kind", "matrix") != "labels":
        raise ValueError(
            "corrupt_labels requires the labels backend; this framework "
            f"uses {getattr(index, 'kind', 'matrix')!r} — use corrupt_md2d"
        )
    dists = index.labeling.out_dists
    candidates = [int(k) for k in np.flatnonzero(np.isfinite(dists))]
    if len(candidates) < count:
        raise ValueError(
            f"labeling has only {len(candidates)} corruptible entries, "
            f"{count} requested"
        )
    rng = random.Random(seed)
    picks = rng.sample(candidates, count)
    saved = [(k, float(dists[k])) for k in picks]
    for k in picks:
        if mode == "nan":
            dists[k] = np.nan
        elif mode == "negative":
            dists[k] = -abs(dists[k]) - 1.0
        else:  # skew: finite shift, silently wrong answers
            dists[k] = dists[k] + 7.5
    index.drop_row_cache()

    def restore() -> None:
        for k, value in saved:
            dists[k] = value
        index.drop_row_cache()

    return FaultHandle(
        f"corrupt_labels(mode={mode}, count={count}, seed={seed})",
        cells=tuple((k, 0) for k in sorted(picks)),
        _undo=restore,
    )


def drop_dpt_records(
    framework: IndexFramework,
    door_ids: Optional[Iterable[int]] = None,
    count: int = 1,
    seed: int = 0,
) -> FaultHandle:
    """Remove Door-to-Partition records, as a partial rebuild would.

    Args:
        framework: the victim framework (its ``dpt`` is swapped for a copy
            missing the records; the original table is kept for undo).
        door_ids: exactly which records to drop; when ``None``, ``count``
            records are chosen seed-deterministically.
        count: how many records to drop when ``door_ids`` is ``None``.
        seed: RNG seed for the selection.
    """
    original = framework.dpt
    if door_ids is None:
        available = original.door_ids
        if len(available) < count:
            raise ValueError(
                f"DPT has only {len(available)} records, {count} requested"
            )
        door_ids = random.Random(seed).sample(available, count)
    dropped = sorted(set(door_ids))
    framework.dpt = original.without(dropped)

    def restore() -> None:
        framework.dpt = original

    return FaultHandle(f"drop_dpt_records({dropped})", _undo=restore)


class FlakyDistanceIndex:
    """A distance-index proxy that dies after ``fail_after`` lookups.

    Lookup methods (``distance``, ``doors_by_distance``, ``doors_unsorted``)
    count accesses — including per-door yields of the scan iterators, so a
    query can lose the index *mid-scan* — and raise
    :class:`CorruptIndexError` once the budget is spent.  Everything else
    (``md2d``, ``door_ids``, ...) delegates to the real index, so integrity
    pre-checks pass and the loss genuinely strikes mid-query.
    """

    def __init__(self, inner, fail_after: int) -> None:
        self._inner = inner
        self._remaining = fail_after

    def _spend(self) -> None:
        if self._remaining <= 0:
            raise CorruptIndexError(
                "injected fault: distance matrix lost mid-query"
            )
        self._remaining -= 1

    def distance(self, from_door: int, to_door: int) -> float:
        """M_d2d lookup that counts against the failure budget."""
        self._spend()
        return self._inner.distance(from_door, to_door)

    def doors_by_distance(self, from_door: int, max_distance=None):
        """Sorted scan whose every yield counts against the budget."""
        for pair in self._inner.doors_by_distance(from_door, max_distance):
            self._spend()
            yield pair

    def doors_unsorted(self, from_door: int):
        """Unsorted scan whose every yield counts against the budget."""
        for pair in self._inner.doors_unsorted(from_door):
            self._spend()
            yield pair

    def __getattr__(self, name):
        # Raise a plain AttributeError (never recurse) for two lookups that
        # must not delegate: ``_inner`` itself, which copy/pickle probe on a
        # half-built instance before ``__init__`` ran (delegating would
        # re-enter this method forever), and missing dunders, which protocol
        # probes (``__copy__``, ``__deepcopy__``, ``__setstate__``, ...) use
        # to discover capabilities the proxy does not have.
        try:
            inner = object.__getattribute__(self, "_inner")
        except AttributeError:
            raise AttributeError(name) from None
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        return getattr(inner, name)


def flip_snapshot_byte(
    path, count: int = 1, seed: int = 0
) -> FaultHandle:
    """Flip ``count`` bytes of a file on disk, seed-deterministically.

    The disk-level sibling of :func:`corrupt_md2d`: it simulates bit rot in
    a persisted snapshot (see :mod:`repro.persist`) so the checksum /
    quarantine / rebuild path is testable.  The first 8 bytes (the magic)
    are spared so the damage lands in content the checksums must catch, not
    in the file-type sniff.

    Args:
        path: the file to damage in place.
        count: how many distinct byte offsets to flip.
        seed: RNG seed — the same seed always flips the same offsets.
    """
    from pathlib import Path

    target = Path(path)
    data = bytearray(target.read_bytes())
    if len(data) <= 8 + count:
        raise ValueError(
            f"{target} has only {len(data)} bytes; cannot flip {count} "
            "past the magic"
        )
    rng = random.Random(seed)
    offsets = rng.sample(range(8, len(data)), count)
    saved = [(offset, data[offset]) for offset in offsets]
    for offset in offsets:
        data[offset] ^= 0xFF
    target.write_bytes(bytes(data))

    def restore() -> None:
        if not target.exists():
            # The damaged file was quarantined (renamed to *.corrupt) or
            # deleted by recovery; there is nothing left to restore and
            # the quarantined copy is deliberately kept as evidence.
            return
        current = bytearray(target.read_bytes())
        for offset, value in saved:
            current[offset] = value
        target.write_bytes(bytes(current))

    return FaultHandle(
        f"flip_snapshot_byte(path={target.name}, count={count}, seed={seed})",
        cells=tuple((offset, 0) for offset in sorted(offsets)),
        _undo=restore,
    )


def install_flaky_distance_index(
    framework: IndexFramework, fail_after: int = 0
) -> FaultHandle:
    """Make the distance matrix disappear after ``fail_after`` lookups.

    ``fail_after=0`` loses the matrix on the very first door lookup — the
    "index evicted between admission and execution" scenario.
    """
    original = framework.distance_index
    framework.distance_index = FlakyDistanceIndex(original, fail_after)

    def restore() -> None:
        framework.distance_index = original

    return FaultHandle(
        f"install_flaky_distance_index(fail_after={fail_after})",
        _undo=restore,
    )
