"""LockWitness — dynamic lock-order recording and static cross-check.

The REP006 lock-order rule (:mod:`repro.analysis.lint.callgraph`) builds
its acquisition graph *statically*: every edge it knows about was read
out of the AST.  A static graph can have holes — locks taken through
``getattr`` indirection, callbacks the resolver could not follow, C
extensions — and every hole is an edge a deadlock can hide behind.  The
witness closes the loop from the other side:

* :func:`witness_session` monkey-patches the ``threading.Lock`` /
  ``threading.RLock`` factories for the duration of a real run (the
  chaos campaign, a shard test).  Locks allocated at a *known* static
  allocation site — the ``(relpath, lineno)`` of the factory call, the
  same join key :class:`~repro.analysis.lint.callgraph.ProjectGraph`
  records in ``alloc_sites`` — come back wrapped; every other
  allocation (threading internals, ``Event`` internals, third-party
  code) gets the untouched primitive.
* Each wrapped lock pushes its site onto a thread-local held stack on
  acquire; acquiring site *B* while site *A* is held records the
  observed order edge *A → B*.
* :func:`crosscheck` joins the observed edges back to the static graph.
  An **observed edge the static graph does not know** is a call-graph
  hole — the static analysis missed a real nesting, so its "no cycles"
  verdict is unsound: that is an *error*.  A **static cycle no run ever
  exercised** stays a *warning* — it may be a false positive or simply
  an untested interleaving.

The recorder is deliberately free of wall-clock time and randomness:
wrapping locks must not perturb the chaos campaign's deterministic
replay (the acquire/release fast path adds two dict operations under an
*unwrapped* guard lock and nothing else).
"""

from __future__ import annotations

import json
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Collection,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.lint.callgraph import (
    LockId,
    ProjectGraph,
    lock_label,
)

#: The witness/static join key: root-relative posix path of the source
#: file and the 1-based line of the ``threading.Lock()`` (etc.) call.
Site = Tuple[str, int]

_TRACE_VERSION = 1


# ---------------------------------------------------------------------------
# Trace
# ---------------------------------------------------------------------------


@dataclass
class WitnessTrace:
    """Observed lock behaviour from one instrumented run.

    ``edges`` maps an ordered site pair (outer held while inner taken)
    to the number of times it was observed; ``sites`` is every witnessed
    allocation site that was acquired at least once.
    """

    edges: Dict[Tuple[Site, Site], int] = field(default_factory=dict)
    sites: Set[Site] = field(default_factory=set)

    def merge(self, other: "WitnessTrace") -> None:
        """Fold another trace (e.g. a second campaign) into this one."""
        for pair, count in other.edges.items():
            self.edges[pair] = self.edges.get(pair, 0) + count
        self.sites |= other.sites

    # -- (de)serialisation ---------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (sorted, so identical runs diff clean)."""
        return {
            "version": _TRACE_VERSION,
            "edges": [
                {
                    "src": list(src),
                    "dst": list(dst),
                    "count": self.edges[(src, dst)],
                }
                for src, dst in sorted(self.edges)
            ],
            "sites": [list(site) for site in sorted(self.sites)],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WitnessTrace":
        """Parse :meth:`to_dict` output; rejects unknown versions."""
        version = payload.get("version")
        if version != _TRACE_VERSION:
            raise ValueError(f"unsupported witness-trace version {version!r}")
        trace = cls()
        for entry in payload.get("edges", []):  # type: ignore[union-attr]
            src = (str(entry["src"][0]), int(entry["src"][1]))
            dst = (str(entry["dst"][0]), int(entry["dst"][1]))
            trace.edges[(src, dst)] = int(entry["count"])
        for raw in payload.get("sites", []):  # type: ignore[union-attr]
            trace.sites.add((str(raw[0]), int(raw[1])))
        return trace

    def save(self, path: "Path | str") -> None:
        """Write the trace as deterministic, pretty-printed JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: "Path | str") -> "WitnessTrace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------


class LockWitness:
    """Thread-safe recorder of observed acquisition-order edges."""

    def __init__(self) -> None:
        # The guard MUST be an original primitive (created before any
        # patching, never wrapped): recording an edge while holding a
        # witnessed lock would recurse into the recorder.
        self._guard = threading.Lock()
        self._edges: Dict[Tuple[Site, Site], int] = {}
        self._sites: Set[Site] = set()
        self._local = threading.local()

    def _stack(self) -> List[Site]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def record_acquire(self, site: Site) -> None:
        """Called by a wrapped lock *after* a successful acquire."""
        stack = self._stack()
        held = [outer for outer in stack if outer != site]
        with self._guard:
            self._sites.add(site)
            for outer in held:
                pair = (outer, site)
                self._edges[pair] = self._edges.get(pair, 0) + 1
        stack.append(site)

    def record_release(self, site: Site) -> None:
        """Called by a wrapped lock *before* releasing."""
        stack = self._stack()
        # Remove the innermost occurrence: out-of-order releases are
        # legal Python, LIFO is merely the common case.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == site:
                del stack[index]
                break

    def trace(self) -> WitnessTrace:
        """A consistent snapshot of everything recorded so far."""
        with self._guard:
            return WitnessTrace(edges=dict(self._edges), sites=set(self._sites))


class _WitnessedLock:
    """A lock/RLock proxy that reports acquisitions to a witness.

    Unknown attributes (``_is_owned``, ``_acquire_restore``,
    ``_release_save`` — the hooks :class:`threading.Condition` lifts off
    its lock) delegate to the wrapped primitive.  ``Condition.wait``
    therefore releases/reacquires the *inner* lock directly; the held
    stack keeps the site listed across the wait, which is accurate
    enough — a waiting thread cannot acquire anything else meanwhile.
    """

    __slots__ = ("_inner", "_site", "_witness")

    def __init__(self, inner: object, site: Site, witness: LockWitness) -> None:
        self._inner = inner
        self._site = site
        self._witness = witness

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)  # type: ignore[attr-defined]
        if acquired:
            self._witness.record_acquire(self._site)
        return bool(acquired)

    def release(self) -> None:
        self._witness.record_release(self._site)
        self._inner.release()  # type: ignore[attr-defined]

    def locked(self) -> bool:
        return bool(self._inner.locked())  # type: ignore[attr-defined]

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()

    def __getattr__(self, name: str) -> object:
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<witnessed {self._inner!r} @ {self._site[0]}:{self._site[1]}>"


# ---------------------------------------------------------------------------
# Session (factory patching)
# ---------------------------------------------------------------------------


def _caller_site(root: Path, skip_files: FrozenSet[str]) -> Optional[Site]:
    """The first stack frame outside threading/witness code, as a Site.

    Returns ``None`` when that frame's file does not live under
    ``root`` (third-party or stdlib allocations stay unwrapped).
    """
    frame = sys._getframe(2)  # skip _caller_site and the factory
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename not in skip_files:
            try:
                relpath = (
                    Path(filename).resolve().relative_to(root).as_posix()
                )
            except ValueError:
                return None
            return (relpath, frame.f_lineno)
        frame = frame.f_back
    return None


@contextmanager
def witness_session(
    root: "Path | str", known_sites: Collection[Site]
) -> Iterator[LockWitness]:
    """Patch the ``threading`` lock factories for the enclosed block.

    ``known_sites`` is the static graph's ``alloc_sites`` key set
    (see :func:`static_sites`); only allocations attributable to one of
    those sites are wrapped, so threading internals and code the static
    analysis does not model keep untouched primitives.  ``Condition``
    needs no patching of its own: ``threading.Condition()`` allocates
    its internal RLock through the (patched) module-level factory, and
    the frame walk attributes it to the user's ``Condition(...)`` line —
    exactly the site the static graph recorded.
    """
    resolved_root = Path(root).resolve()
    sites = set(known_sites)
    witness = LockWitness()
    original_lock = threading.Lock
    original_rlock = threading.RLock
    skip_files = frozenset(
        {threading.__file__, __file__}
    )

    def _factory(original: object) -> object:
        def allocate(*args: object, **kwargs: object) -> object:
            inner = original(*args, **kwargs)  # type: ignore[operator]
            site = _caller_site(resolved_root, skip_files)
            if site is None or site not in sites:
                return inner
            return _WitnessedLock(inner, site, witness)

        return allocate

    threading.Lock = _factory(original_lock)  # type: ignore[misc]
    threading.RLock = _factory(original_rlock)  # type: ignore[misc]
    try:
        yield witness
    finally:
        threading.Lock = original_lock  # type: ignore[misc]
        threading.RLock = original_rlock  # type: ignore[misc]


def static_sites(graph: ProjectGraph) -> Set[Site]:
    """The static graph's allocation sites, in witness join-key form."""
    return set(graph.alloc_sites)


# ---------------------------------------------------------------------------
# Cross-check
# ---------------------------------------------------------------------------


@dataclass
class CrossCheckResult:
    """Outcome of joining a witness trace against the static graph."""

    #: observed edges the static graph also derived (used to bold DOT
    #: edges and to mark static cycles as runtime-confirmed).
    confirmed: Set[Tuple[LockId, LockId]] = field(default_factory=set)
    #: fatal disagreements: the run exhibited behaviour the static
    #: analysis failed to model, so its REP006 verdict is unsound.
    errors: List[str] = field(default_factory=list)
    #: static findings no run has confirmed (kept advisory).
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no soundness hole was observed (warnings allowed)."""
        return not self.errors


def crosscheck(trace: WitnessTrace, graph: ProjectGraph) -> CrossCheckResult:
    """Join observed acquisition orders against the static lock graph.

    * An observed site the graph has no identity for, or an observed
      edge absent from ``graph.edges``, is an **error**: the static
      call graph has a hole and REP006's cycle verdict cannot be
      trusted until the resolver models that path.
    * A static cycle whose ring was never (fully) observed is a
      **warning**: possibly a false positive, possibly an untested
      interleaving — either way not proof of soundness loss.
    """
    result = CrossCheckResult()

    for site in sorted(trace.sites):
        if site not in graph.alloc_sites:
            result.errors.append(
                f"witnessed lock allocated at {site[0]}:{site[1]} has no "
                "static identity — the allocation-site scanner missed it"
            )

    for (src_site, dst_site), count in sorted(trace.edges.items()):
        src = graph.alloc_sites.get(src_site)
        dst = graph.alloc_sites.get(dst_site)
        if src is None or dst is None:
            continue  # already reported as an unknown site above
        if src == dst:
            # Two instances sharing one identity (per-shard locks) or a
            # reentrant reacquire — the static graph deliberately skips
            # same-identity self edges, so the witness does too.
            continue
        if (src, dst) in graph.edges:
            result.confirmed.add((src, dst))
            continue
        result.errors.append(
            f"observed order {lock_label(src)} -> {lock_label(dst)} "
            f"({count}x; held {src_site[0]}:{src_site[1]}, took "
            f"{dst_site[0]}:{dst_site[1]}) is MISSING from the static "
            "graph — call-graph hole; REP006's no-cycle verdict is "
            "unsound until the resolver covers this path"
        )

    for cycle in graph.cycles():
        ring = list(cycle) + [cycle[0]]
        unobserved = [
            (ring[i], ring[i + 1])
            for i in range(len(ring) - 1)
            if (ring[i], ring[i + 1]) not in result.confirmed
        ]
        if unobserved:
            arrows = " -> ".join(lock_label(lock) for lock in ring)
            missing = ", ".join(
                f"{lock_label(a)}->{lock_label(b)}" for a, b in unobserved
            )
            result.warnings.append(
                f"static cycle {arrows} not confirmed at runtime "
                f"(unobserved: {missing}) — false positive or untested "
                "interleaving"
            )
    return result
