"""Shared-work batched execution of grouped queries.

Sequential serving re-expands the same §III-C/§IV structures for every
request: each range / kNN query walks its host partition's M_idx rows from
scratch, and each pt2pt query re-runs the Algorithm 2/3 door expansions
from its source doors.  This module amortises that work across a batch:

* **Range / kNN groups** (same host partition) share one lazily
  materialised M_idx row prefix per door (:class:`SharedDoorScans`): the
  sorted scan each query performs is a prefix of the same sequence, so the
  row is walked once, as deep as the deepest query in the group needs.
* **pt2pt groups** (same source position) share the per-source-door
  Dijkstra expansions (:func:`batched_pt2pt_distances`): a multi-target
  generalisation of the paper's Algorithm 3 runs one pruned, bounded
  expansion per source door for the whole group.  Singleton pt2pt groups
  go straight through Algorithm 4
  (:func:`~repro.distance.point_to_point.pt2pt_distance`), so batching is
  never slower than the sequential engine.

The batched evaluators replicate the exact control flow of
:func:`~repro.queries.range_query.range_query` /
:func:`~repro.queries.knn_query.knn_query` (with ``use_index=True``), so a
batched answer is identical to the sequential answer — a property the test
suite asserts bit-for-bit.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.distance.point_to_point import pt2pt_distance
from repro.exceptions import ReproError
from repro.geometry import Point
from repro.index.distance_matrix import DistanceIndexMatrix
from repro.index.framework import IndexFramework
from repro.model.builder import IndoorSpace
from repro.queries.knn_query import _TopK
from repro.serve.requests import QueryKind, QueryRequest


class _SharedRow:
    """One door's M_idx row, materialised on demand and shared."""

    __slots__ = ("entries", "_source", "exhausted")

    def __init__(self, source: Iterator[Tuple[int, float]]) -> None:
        self.entries: List[Tuple[int, float]] = []
        self._source: Optional[Iterator[Tuple[int, float]]] = source
        self.exhausted = False

    def ensure(self, n: int) -> bool:
        """Materialise at least ``n`` entries; False when the row ran out."""
        while len(self.entries) < n and not self.exhausted:
            try:
                self.entries.append(next(self._source))
            except StopIteration:
                self.exhausted = True
                self._source = None
        return len(self.entries) >= n


class SharedDoorScans:
    """Per-batch memo of sorted M_idx row prefixes.

    Each row is pulled from
    :meth:`~repro.index.distance_matrix.DistanceIndexMatrix.doors_by_distance`
    exactly once and only as deep as the deepest consumer needs; every
    query in the batch then iterates the shared prefix.  Not thread-safe:
    one instance belongs to one batch executed by one worker.
    """

    def __init__(self, distance_index: DistanceIndexMatrix) -> None:
        self._index = distance_index
        self._rows: Dict[int, _SharedRow] = {}
        self.rows_opened = 0
        self.rows_reused = 0

    def iter_from(self, door_id: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(door_id, distance)`` nearest-first from the shared row,
        exactly as ``doors_by_distance(door_id)`` would."""
        row = self._rows.get(door_id)
        if row is None:
            row = _SharedRow(self._index.doors_by_distance(door_id))
            self._rows[door_id] = row
            self.rows_opened += 1
        else:
            self.rows_reused += 1
        i = 0
        while row.ensure(i + 1):
            yield row.entries[i]
            i += 1


def batched_range_query(
    framework: IndexFramework,
    position: Point,
    radius: float,
    scans: SharedDoorScans,
) -> List[int]:
    """Algorithm 5 over a shared door-scan substrate.

    Control flow mirrors :func:`repro.queries.range_query.range_query`
    with ``use_index=True`` line by line; only the M_idx row iteration is
    routed through ``scans`` so that co-batched queries from the same host
    partition walk each row once.
    """
    space = framework.space
    host = space.require_host_partition(position)
    store = framework.objects

    results: set = set()
    bucket = store.bucket(host.partition_id)
    if bucket is not None:
        results.update(oid for oid, _ in bucket.range_search(position, radius))

    for di in sorted(space.topology.leaveable_doors(host.partition_id)):
        budget = radius - space.dist_v(position, di, host)
        if budget < 0:
            continue
        for dj, door_distance in scans.iter_from(di):
            if door_distance > budget:
                break  # shared row is sorted: nothing nearer remains
            remaining = budget - door_distance
            door_point = space.door(dj).midpoint
            for partition_id, longest_reach in framework.dpt.record(dj).enterable():
                target_bucket = store.bucket(partition_id)
                if target_bucket is None:
                    continue
                if longest_reach <= remaining:
                    results.update(target_bucket.object_ids())
                else:
                    results.update(
                        oid
                        for oid, _ in target_bucket.range_search(
                            door_point, remaining
                        )
                    )
    return sorted(results)


def batched_knn_query(
    framework: IndexFramework,
    position: Point,
    k: int,
    scans: SharedDoorScans,
) -> List[Tuple[int, float]]:
    """Algorithm 6 (k extension) over a shared door-scan substrate.

    Mirrors :func:`repro.queries.knn_query.knn_query` with
    ``use_index=True``; the sorted per-door scan comes from ``scans`` so a
    batch of same-partition kNN queries shares each M_idx row walk.
    """
    space = framework.space
    host = space.require_host_partition(position)
    store = framework.objects

    top = _TopK(k)
    bucket = store.bucket(host.partition_id)
    if bucket is not None:
        for object_id, distance in bucket.nn_search(position, bound=math.inf, k=k):
            top.offer(object_id, distance)

    for di in sorted(space.topology.leaveable_doors(host.partition_id)):
        to_door = space.dist_v(position, di, host)
        if math.isinf(to_door):
            continue
        for dj, door_distance in scans.iter_from(di):
            reach = to_door + door_distance
            if reach > top.bound:
                break  # sorted scan: everything farther only grows
            door_point = space.door(dj).midpoint
            for partition_id, _ in framework.dpt.record(dj).enterable():
                target_bucket = store.bucket(partition_id)
                if target_bucket is None:
                    continue
                local_bound = top.bound - reach
                if local_bound <= 0 and not math.isinf(top.bound):
                    continue
                for object_id, distance in target_bucket.nn_search(
                    door_point, bound=local_bound, k=k
                ):
                    top.offer(object_id, reach + distance)
    return top.results()


def batched_pt2pt_distances(
    space: IndoorSpace, source: Point, targets: Sequence[Point]
) -> List[float]:
    """Exact pt2pt distances from one source to many targets, sharing the
    per-source-door expansions.

    A multi-target generalisation of the paper's Algorithm 3: one pruned,
    bounded Dijkstra expansion per source door serves *every* target in
    the group.  Each target keeps its own running best; a target door
    stays interesting only while it can still improve some target, and
    the expansion stops as soon as no door can.  For a single target this
    degenerates to Algorithm 3 itself, so batching never costs more than
    sequential serving.  Returns one distance per target, in order
    (``inf`` for unreachable targets).
    """
    vs = space.require_host_partition(source)
    graph = space.distance_graph
    topology = space.topology

    # Per-target setup: enterable doors, exit distances, direct candidate.
    best: List[float] = []
    target_partitions: set = set()
    wanted: Dict[int, List[Tuple[int, float]]] = {}
    for index, target in enumerate(targets):
        vt = space.require_host_partition(target)
        target_partitions.add(vt.partition_id)
        if vs.partition_id == vt.partition_id:
            best.append(vs.intra_distance(source, target))
        else:
            best.append(math.inf)
        for dt in sorted(topology.enterable_doors(vt.partition_id)):
            d2 = space.dist_v(target, dt, vt)
            if not math.isinf(d2):
                wanted.setdefault(dt, []).append((index, d2))

    # Source doors with Algorithm 3's dead-end pruning, generalised to the
    # group: a door is prunable when its only enterable partition hosts no
    # target and cannot be left except back through the same door.
    doors_s: List[int] = []
    for ds in sorted(topology.leaveable_doors(vs.partition_id)):
        other = topology.enterable_partitions(ds) - {vs.partition_id}
        if len(other) == 1:
            neighbor = next(iter(other))
            if (
                neighbor not in target_partitions
                and topology.leaveable_doors(neighbor) == frozenset({ds})
            ):
                continue
        doors_s.append(ds)

    for ds in doors_s:
        d1 = space.dist_v(source, ds, vs)
        if math.isinf(d1):
            continue
        # A target door is pending while it can still improve some target.
        pending: Set[int] = {
            dt
            for dt, wants in wanted.items()
            if any(d1 + d2 < best[index] for index, d2 in wants)
        }
        if not pending:
            continue

        dist: Dict[int, float] = {ds: 0.0}
        settled: Set[int] = set()
        heap: list = [(0.0, ds)]
        while heap:
            d, current = heapq.heappop(heap)
            if current in settled:
                continue
            settled.add(current)
            if current in pending:
                pending.discard(current)
                for index, d2 in wanted[current]:
                    candidate = d1 + d + d2
                    if candidate < best[index]:
                        best[index] = candidate
            # Everything left on the heap settles at >= d, so a door that
            # cannot beat any target's best from depth d never will.
            pending = {
                dt
                for dt in pending
                if any(
                    d1 + d + d2 < best[index] for index, d2 in wanted[dt]
                )
            }
            if not pending:
                break
            for partition_id in topology.enterable_partitions(current):
                for next_door in topology.leaveable_doors(partition_id):
                    if next_door in settled:
                        continue
                    weight = graph.fd2d(partition_id, current, next_door)
                    if math.isinf(weight):
                        continue
                    candidate = d + weight
                    if candidate < dist.get(next_door, math.inf):
                        dist[next_door] = candidate
                        heapq.heappush(heap, (candidate, next_door))
    return best


@dataclass(frozen=True)
class BatchGroup:
    """Requests that can share one work substrate.

    Range / kNN requests group by host partition (they walk the same
    M_idx rows); pt2pt requests group by exact source position (they
    share the same source-door expansions).
    """

    kind: QueryKind
    key: Tuple
    requests: Tuple[QueryRequest, ...]

    @property
    def shared(self) -> bool:
        """True when the group actually amortises work (2+ requests)."""
        return len(self.requests) > 1


def plan_batches(
    space: IndoorSpace, requests: Iterable[QueryRequest]
) -> List[BatchGroup]:
    """Partition ``requests`` into shared-work groups, preserving order.

    A request whose position cannot be located (no host partition) is
    placed in a singleton group so the error surfaces on execution for
    that request alone instead of failing its neighbours.
    """
    buckets: "OrderedDict[Tuple, List[QueryRequest]]" = OrderedDict()
    for request in requests:
        if request.kind is QueryKind.PT2PT:
            p = request.position
            key: Tuple = (request.kind, p.x, p.y, p.floor)
        else:
            try:
                host = space.require_host_partition(request.position)
            except ReproError:
                key = (request.kind, "solo", request.request_id)
            else:
                key = (request.kind, host.partition_id)
        buckets.setdefault(key, []).append(request)
    return [
        BatchGroup(key[0], key, tuple(group))
        for key, group in buckets.items()
    ]


def execute_group(
    framework: IndexFramework, group: BatchGroup
) -> List[Tuple[QueryRequest, Any]]:
    """Run one group over its shared substrate.

    Returns ``(request, value)`` pairs in request order; a request that
    failed carries its exception as ``value`` (so one bad request never
    poisons the rest of the group).
    """
    out: List[Tuple[QueryRequest, Any]] = []
    if group.kind is QueryKind.PT2PT:
        source = group.requests[0].position
        resolved: Dict[int, Any] = {}
        valid: List[QueryRequest] = []
        for request in group.requests:
            try:
                framework.space.require_host_partition(request.target)
            except ReproError as exc:
                resolved[request.request_id] = exc
            else:
                valid.append(request)
        if valid:
            try:
                # A single pair has no sharing to exploit: Algorithm 4
                # (memoised) is the fastest single-pair path, and it is
                # what the sequential engine would run.
                values = (
                    [pt2pt_distance(framework.space, source, valid[0].target)]
                    if len(valid) == 1
                    else batched_pt2pt_distances(
                        framework.space,
                        source,
                        [request.target for request in valid],
                    )
                )
            except ReproError as exc:
                for request in valid:
                    resolved[request.request_id] = exc
            else:
                for request, value in zip(valid, values):
                    resolved[request.request_id] = value
        return [
            (request, resolved[request.request_id])
            for request in group.requests
        ]

    scans = SharedDoorScans(framework.distance_index)
    for request in group.requests:
        try:
            if group.kind is QueryKind.RANGE:
                value: Any = batched_range_query(
                    framework, request.position, request.radius, scans
                )
            else:
                value = batched_knn_query(
                    framework, request.position, request.k, scans
                )
        except ReproError as exc:
            value = exc
        out.append((request, value))
    return out
