"""The public query facade: :class:`QueryEngine`.

One object that owns an indoor space plus its §IV indexes and exposes the
paper's full query surface — distances, shortest paths, range queries, and
kNN — together with object maintenance (insert / remove / move).  All the
examples and benchmarks drive the library through this class.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple, Union

from repro.distance.door_count import DoorCountResult, door_count_pt2pt
from repro.distance.path import IndoorPath
from repro.distance.point_to_point import pt2pt_distance, pt2pt_path
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.index.objects import DEFAULT_CELL_SIZE, IndoorObject
from repro.model.builder import IndoorSpace
from repro.queries.advanced import (
    aggregate_nn,
    closest_pair,
    distance_join,
    distances_to_all_objects,
    range_query_with_distances,
)
from repro.queries.checks import require_finite_position
from repro.queries.knn_query import knn_query, nn_query
from repro.queries.range_query import range_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.deadline import Deadline
    from repro.runtime.resilient import ResilientQueryEngine


class QueryEngine:
    """Distance-aware indoor query processing over an indexed space."""

    def __init__(self, framework: IndexFramework) -> None:
        self.framework = framework

    @classmethod
    def for_space(
        cls,
        space: IndoorSpace,
        objects: Optional[Iterable[IndoorObject]] = None,
        cell_size: float = DEFAULT_CELL_SIZE,
        backend: str = "matrix",
    ) -> "QueryEngine":
        """Build every index structure for ``space`` and wrap it.

        ``backend`` selects the distance structure (``"matrix"`` or
        ``"labels"``); see :class:`repro.index.backend.DistanceBackend`.
        """
        return cls(
            IndexFramework.build(space, objects, cell_size, backend=backend)
        )

    @classmethod
    def load(
        cls,
        plan_path: Union[str, "os.PathLike[str]"],
        objects_path: Optional[Union[str, "os.PathLike[str]"]] = None,
        cell_size: float = DEFAULT_CELL_SIZE,
    ) -> "QueryEngine":
        """Load a JSON floor plan (and optionally a JSON object set) from
        disk and build a ready-to-query engine."""
        from repro.io import load_objects, load_space

        space = load_space(plan_path)
        objects = load_objects(objects_path) if objects_path else None
        return cls.for_space(space, objects, cell_size)

    # ------------------------------------------------------------------
    # Distances and paths
    # ------------------------------------------------------------------
    @property
    def space(self) -> IndoorSpace:
        """The underlying indoor space."""
        return self.framework.space

    def distance(
        self,
        source: Point,
        target: Point,
        deadline: Optional["Deadline"] = None,
    ) -> float:
        """Minimum indoor walking distance between two positions.

        Raises:
            QueryError: when either position has NaN / infinite coordinates.
        """
        require_finite_position(source, "source position")
        require_finite_position(target, "target position")
        return pt2pt_distance(self.space, source, target, deadline=deadline)

    def shortest_path(self, source: Point, target: Point) -> IndoorPath:
        """Shortest indoor path with its door / partition sequence."""
        return pt2pt_path(self.space, source, target)

    def door_distance(self, from_door: int, to_door: int) -> float:
        """Precomputed door-to-door distance (M_d2d lookup)."""
        return self.framework.distance_index.distance(from_door, to_door)

    def door_count_distance(self, source: Point, target: Point) -> DoorCountResult:
        """The Li & Lee door-count baseline, for comparisons."""
        return door_count_pt2pt(self.space, source, target)

    # ------------------------------------------------------------------
    # Queries (§V)
    # ------------------------------------------------------------------
    def range_query(
        self,
        position: Point,
        radius: float,
        use_index: bool = True,
        deadline: Optional["Deadline"] = None,
    ) -> List[int]:
        """Algorithm 5: ids of all objects within ``radius`` of ``position``."""
        return range_query(self.framework, position, radius, use_index, deadline)

    def knn(
        self,
        position: Point,
        k: int = 1,
        use_index: bool = True,
        deadline: Optional["Deadline"] = None,
    ) -> List[Tuple[int, float]]:
        """Algorithm 6 (k extension): the k nearest objects with distances."""
        return knn_query(self.framework, position, k, use_index, deadline)

    def nearest_neighbor(
        self,
        position: Point,
        use_index: bool = True,
        deadline: Optional["Deadline"] = None,
    ) -> Optional[Tuple[int, float]]:
        """The single nearest object, or ``None`` when none is reachable."""
        return nn_query(self.framework, position, use_index, deadline)

    def resilient(self, **options) -> "ResilientQueryEngine":
        """Wrap this engine in the hardened runtime facade (deadlines,
        degradation ladder, staleness handling); see
        :class:`repro.runtime.ResilientQueryEngine` for the options."""
        from repro.runtime.resilient import ResilientQueryEngine

        return ResilientQueryEngine(self, **options)

    # ------------------------------------------------------------------
    # Composite queries (§VII building-block compositions)
    # ------------------------------------------------------------------
    def range_query_with_distances(
        self, position: Point, radius: float
    ) -> List[Tuple[int, float]]:
        """Range query returning exact per-object distances, nearest first."""
        return range_query_with_distances(self.framework, position, radius)

    def distances_to_all_objects(self, position: Point) -> dict:
        """Walking distance from ``position`` to every reachable object."""
        return distances_to_all_objects(self.framework, position)

    def distance_join(self, radius: float) -> List[Tuple[int, int, float]]:
        """All object pairs within ``radius`` of each other."""
        return distance_join(self.framework, radius)

    def aggregate_nn(
        self, positions: List[Point], k: int = 1, agg: str = "sum"
    ) -> List[Tuple[int, float]]:
        """Group nearest neighbour over a set of positions."""
        return aggregate_nn(self.framework, positions, k, agg)

    def closest_pair(self) -> Optional[Tuple[int, int, float]]:
        """The two objects nearest each other."""
        return closest_pair(self.framework)

    # ------------------------------------------------------------------
    # Object maintenance
    # ------------------------------------------------------------------
    def add_object(self, obj: IndoorObject) -> int:
        """Insert an object; returns its host partition id."""
        return self.framework.objects.add(obj)

    def add_objects(self, objects: Iterable[IndoorObject]) -> None:
        """Insert many objects."""
        self.framework.objects.add_all(objects)

    def remove_object(self, object_id: int) -> IndoorObject:
        """Remove an object by id."""
        return self.framework.objects.remove(object_id)

    def move_object(self, object_id: int, new_position: Point) -> IndoorObject:
        """Relocate an object, rebucketing it if it changed partition."""
        return self.framework.objects.move(object_id, new_position)

    def get_object(self, object_id: int) -> IndoorObject:
        """Fetch an object by id."""
        return self.framework.objects.get(object_id)

    @property
    def num_objects(self) -> int:
        """How many objects the store currently holds."""
        return len(self.framework.objects)
