"""Navigation services on top of the distance foundation.

The paper motivates the model with guidance services — museum tours,
boarding directions, emergency response (§I).  This package supplies the
service-level pieces those scenarios need beyond raw distances:

* :mod:`repro.routing.directions` — turn shortest paths into per-leg,
  human-readable walking instructions;
* :mod:`repro.routing.tour` — multi-stop visit planning (exact for small
  stop sets, greedy + or-opt for larger ones, one-way-door aware);
* :mod:`repro.routing.reachability` — reachability / evacuation-safety
  analysis over the accessibility graph.
"""

from repro.routing.directions import RouteLeg, directions, route_legs
from repro.routing.reachability import (
    EvacuationReport,
    evacuation_report,
    partitions_that_can_reach,
    trapped_partitions,
)
from repro.routing.tour import TourPlan, plan_tour

__all__ = [
    "RouteLeg",
    "route_legs",
    "directions",
    "TourPlan",
    "plan_tour",
    "EvacuationReport",
    "evacuation_report",
    "partitions_that_can_reach",
    "trapped_partitions",
]
