"""The assembled indexing framework the query algorithms run on (§IV-V).

:class:`IndexFramework` bundles, for one indoor space:

* the distance-aware graph G_dist (with f_dv / f_d2d precomputed),
* the Door-to-Door Distance Matrix M_d2d and Distance Index Matrix M_idx,
* the Door-to-Partition Table,
* the partition R-tree (installed as the space's ``getHostPartition``
  backend), and
* the per-partition grid-indexed object buckets.

Everything lives in main memory, as in the paper's experiments.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.exceptions import StaleIndexError
from repro.index.distance_matrix import DistanceIndexMatrix
from repro.index.dpt import DoorPartitionTable
from repro.index.objects import DEFAULT_CELL_SIZE, IndoorObject, ObjectStore
from repro.index.rtree import PartitionRTree
from repro.model.builder import IndoorSpace


class IndexFramework:
    """All §IV index structures for one indoor space.

    Build with :meth:`build`; hand the instance to
    :class:`repro.queries.engine.QueryEngine`.
    """

    def __init__(
        self,
        space: IndoorSpace,
        distance_index: DistanceIndexMatrix,
        dpt: DoorPartitionTable,
        rtree: PartitionRTree,
        objects: ObjectStore,
    ) -> None:
        self.space = space
        self.distance_index = distance_index
        self.dpt = dpt
        self.rtree = rtree
        self.objects = objects
        #: Topology epoch of ``space`` at the moment the indexes were built;
        #: compared against ``space.topology_epoch`` by :meth:`check_fresh`.
        self.built_epoch = space.topology_epoch

    @classmethod
    def build(
        cls,
        space: IndoorSpace,
        objects: Optional[Iterable[IndoorObject]] = None,
        cell_size: float = DEFAULT_CELL_SIZE,
        reference_matrix: bool = False,
    ) -> "IndexFramework":
        """Precompute every index structure for ``space``.

        Args:
            space: the indoor space to index.
            objects: initial objects to load into the buckets.
            cell_size: grid cell edge for the per-partition object index.
            reference_matrix: build M_d2d with the paper-faithful per-door
                Algorithm 1 instead of the fast bulk builder (validation
                only; identical result).
        """
        graph = space.distance_graph
        graph.precompute()
        distance_index = DistanceIndexMatrix.build(graph, reference=reference_matrix)
        dpt = DoorPartitionTable.build(graph)
        rtree = PartitionRTree(space).install()
        store = ObjectStore(space, cell_size)
        if objects is not None:
            store.add_all(objects)
        return cls(space, distance_index, dpt, rtree, store)

    def with_objects(self, store: ObjectStore) -> "IndexFramework":
        """A framework sharing this one's static indexes (matrix, DPT,
        R-tree) but holding a different object store.

        Floor plans are static while object populations vary, so benchmarks
        reuse the expensive door-distance matrix across object cardinalities
        exactly as a deployed system would.
        """
        derived = IndexFramework(
            self.space, self.distance_index, self.dpt, self.rtree, store
        )
        # The shared static indexes are exactly as fresh as this framework's,
        # regardless of what the space's epoch says right now.
        derived.built_epoch = self.built_epoch
        return derived

    # ------------------------------------------------------------------
    # Staleness epochs
    # ------------------------------------------------------------------
    @property
    def is_fresh(self) -> bool:
        """True while the space has not mutated since the indexes were built."""
        return self.built_epoch == self.space.topology_epoch

    def check_fresh(self) -> None:
        """Raise :class:`~repro.exceptions.StaleIndexError` when the space
        topology mutated after this framework was built.

        Every indexed query calls this on entry, so a stale M_d2d / DPT can
        never silently answer for a changed building.
        """
        current = self.space.topology_epoch
        if self.built_epoch != current:
            raise StaleIndexError(
                f"index built at topology epoch {self.built_epoch} but the "
                f"space is now at epoch {current}; rebuild the framework",
                built_epoch=self.built_epoch,
                current_epoch=current,
            )

    def rebuild(self) -> "IndexFramework":
        """Recompute every index structure against the space's current
        topology, carrying the object population over.

        Returns a fresh framework; the original is left untouched so callers
        can swap atomically.
        """
        return IndexFramework.build(
            self.space, list(self.objects), self.objects.cell_size
        )

    @property
    def graph(self):
        """The distance-aware graph G_dist."""
        return self.space.distance_graph

    def memory_report(self) -> dict:
        """Sizes of the main-memory structures, in bytes, mirroring the
        paper's §VI-B accounting (matrix: N×N×8 for distances plus N×N×8 for
        the index ordering as stored; DPT: 28 bytes per record)."""
        return {
            "doors": self.distance_index.size,
            "matrix_bytes": self.distance_index.memory_bytes(),
            "dpt_bytes": self.dpt.memory_bytes(),
            "objects": len(self.objects),
        }
