"""Property-based tests for the temporal layer.

Core monotonicity invariant: closing doors can only *increase* (or preserve)
every indoor distance — never shrink one.  Dually, every distance in a
snapshot with all doors open equals the base space's distance.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distance import pt2pt_distance_refined
from repro.temporal import DoorSchedule, TemporalIndoorSpace
from tests.strategies import plan_with_points

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def closure_scenarios(draw):
    plan, points = draw(plan_with_points(count=2))
    door_ids = list(plan.space.door_ids)
    close_seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(close_seed)
    closed = [d for d in door_ids if rng.random() < 0.3]
    return plan, points, closed


class TestClosureMonotonicity:
    @RELAXED
    @given(closure_scenarios())
    def test_closing_doors_never_shrinks_distances(self, scenario):
        plan, (a, b), closed = scenario
        schedule = DoorSchedule()
        for door_id in closed:
            schedule.set_closed(door_id)
        temporal = TemporalIndoorSpace(plan.space, schedule)
        base = pt2pt_distance_refined(plan.space, a, b)
        restricted = temporal.distance(0.0, a, b)
        if math.isinf(restricted):
            return  # closing doors may sever the route entirely — fine
        assert restricted >= base - 1e-9

    @RELAXED
    @given(plan_with_points(count=2))
    def test_empty_schedule_matches_base(self, data):
        plan, (a, b) = data
        temporal = TemporalIndoorSpace(plan.space, DoorSchedule())
        assert temporal.distance(0.0, a, b) == pytest.approx(
            pt2pt_distance_refined(plan.space, a, b)
        )

    @RELAXED
    @given(closure_scenarios())
    def test_reopening_restores_base_distances(self, scenario):
        plan, (a, b), closed = scenario
        schedule = DoorSchedule()
        for door_id in closed:
            schedule.set_closed(door_id)
        for door_id in closed:
            schedule.set_always_open(door_id)
        temporal = TemporalIndoorSpace(plan.space, schedule)
        assert temporal.distance(0.0, a, b) == pytest.approx(
            pt2pt_distance_refined(plan.space, a, b)
        )

    @RELAXED
    @given(closure_scenarios())
    def test_nested_closures_are_monotone(self, scenario):
        """Closing a superset of doors is at least as restrictive."""
        plan, (a, b), closed = scenario
        if not closed:
            return
        partial = DoorSchedule()
        for door_id in closed[: len(closed) // 2]:
            partial.set_closed(door_id)
        full = DoorSchedule()
        for door_id in closed:
            full.set_closed(door_id)
        partial_distance = TemporalIndoorSpace(plan.space, partial).distance(
            0.0, a, b
        )
        full_distance = TemporalIndoorSpace(plan.space, full).distance(0.0, a, b)
        assert full_distance >= partial_distance - 1e-9
