"""The distance-aware graph G_dist (paper §III-C).

G_dist = (V, E_a, L, f_dv, f_d2d) extends the accessibility graph with two
distance mappings:

* ``f_dv(d_i, v_j)`` — if ``v_j`` is an enterable partition of door ``d_i``,
  the *longest* distance one can reach within ``v_j`` from ``d_i``
  (``max_{p ∈ v_j} ‖d_i, p‖``); otherwise ∞.  Query processing uses it to
  decide that an entire partition lies inside a query range.
* ``f_d2d(v_k, d_i, d_j)`` — the intra-partition distance ``‖d_i, d_j‖_{v_k}``
  when ``d_i`` enters ``v_k`` and ``d_j`` leaves ``v_k``; 0 when
  ``d_i = d_j`` touches ``v_k``; ∞ otherwise.  These are the edge weights the
  door-to-door search (Algorithm 1) traverses.

Both mappings are memoised: floor plans are static, and the paper's indexing
framework precomputes exactly these values.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple, TYPE_CHECKING

from repro.exceptions import UnknownEntityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.builder import IndoorSpace


class DistanceAwareGraph:
    """Memoised f_dv / f_d2d view over an :class:`IndoorSpace`.

    The vertex set, edge set, and labels are those of the accessibility
    graph; this class only adds the distance mappings, mirroring the paper's
    5-tuple definition.
    """

    def __init__(self, space: "IndoorSpace") -> None:
        self._space = space
        self._fdv_cache: Dict[Tuple[int, int], float] = {}
        self._fd2d_cache: Dict[Tuple[int, int, int], float] = {}

    @property
    def space(self) -> "IndoorSpace":
        """The indoor space this graph describes."""
        return self._space

    @property
    def accessibility(self):
        """The underlying accessibility base graph (V, E_a, L)."""
        return self._space.accessibility

    def fdv(self, door_id: int, partition_id: int) -> float:
        """f_dv(d_i, v_j): longest reach within v_j from d_i, or ∞.

        ∞ signals that v_j is not an enterable partition of d_i — either the
        door does not touch it or the door is one-way out of it.
        """
        key = (door_id, partition_id)
        cached = self._fdv_cache.get(key)
        if cached is not None:
            return cached

        topology = self._space.topology
        if not topology.has_partition(partition_id):
            raise UnknownEntityError("partition", partition_id)
        if partition_id not in topology.enterable_partitions(door_id):
            value = math.inf
        else:
            partition = self._space.partition(partition_id)
            value = partition.max_distance_from(self._space.door(door_id).midpoint)
        self._fdv_cache[key] = value
        return value

    def fd2d(self, partition_id: int, from_door: int, to_door: int) -> float:
        """f_d2d(v_k, d_i, d_j): cost of crossing v_k from d_i to d_j.

        Finite exactly when one can enter v_k through d_i and leave it
        through d_j (intra-partition walking distance between the two door
        midpoints), or trivially 0 when d_i = d_j touches v_k.
        """
        key = (partition_id, from_door, to_door)
        cached = self._fd2d_cache.get(key)
        if cached is not None:
            return cached

        topology = self._space.topology
        if not topology.has_partition(partition_id):
            raise UnknownEntityError("partition", partition_id)
        if from_door == to_door:
            value = (
                0.0
                if partition_id in topology.partitions_of(from_door)
                else math.inf
            )
        elif (
            from_door in topology.enterable_doors(partition_id)
            and to_door in topology.leaveable_doors(partition_id)
        ):
            partition = self._space.partition(partition_id)
            value = partition.intra_distance(
                self._space.door(from_door).midpoint,
                self._space.door(to_door).midpoint,
            )
        else:
            value = math.inf
        self._fd2d_cache[key] = value
        return value

    def precompute(self) -> None:
        """Eagerly fill both caches for the whole space.

        The indexing framework (§IV) calls this before building the
        door-to-door distance matrix so that matrix construction does no
        geometry work.
        """
        topology = self._space.topology
        for partition_id in topology.partition_ids:
            enterable = sorted(topology.enterable_doors(partition_id))
            leaveable = sorted(topology.leaveable_doors(partition_id))
            for from_door in enterable:
                self.fdv(from_door, partition_id)
                for to_door in leaveable:
                    if from_door != to_door:
                        self.fd2d(partition_id, from_door, to_door)

    def cache_stats(self) -> Dict[str, int]:
        """Sizes of the two memo tables (useful in tests and diagnostics)."""
        return {
            "fdv_entries": len(self._fdv_cache),
            "fd2d_entries": len(self._fd2d_cache),
        }
