"""Tests for the QueryEngine facade."""

import pytest

from repro import IndoorObject, Point, QueryEngine
from repro.model.figure1 import P, Q, ROOM_13, build_figure1


@pytest.fixture
def engine():
    engine = QueryEngine.for_space(build_figure1())
    engine.add_objects(
        [
            IndoorObject(1, Point(6.5, 9.0), payload="defibrillator"),
            IndoorObject(2, Point(1.0, 5.0), payload="extinguisher"),
            IndoorObject(3, Point(13, 6), payload="coffee machine"),
        ]
    )
    return engine


class TestFacade:
    def test_distance_and_path_are_consistent(self, engine):
        assert engine.shortest_path(P, Q).distance == pytest.approx(
            engine.distance(P, Q)
        )

    def test_door_distance_lookup(self, engine):
        from repro.distance import d2d_distance
        from repro.model.figure1 import D12, D15

        assert engine.door_distance(D15, D12) == pytest.approx(
            d2d_distance(engine.space.distance_graph, D15, D12)
        )

    def test_door_count_baseline_available(self, engine):
        result = engine.door_count_distance(P, Q)
        assert result.doors_crossed == 1
        assert result.walking_distance > engine.distance(P, Q)

    def test_range_and_knn(self, engine):
        in_range = engine.range_query(P, 3.0)
        assert in_range == [1]
        nearest = engine.nearest_neighbor(P)
        assert nearest[0] == 1
        assert len(engine.knn(P, k=3)) == 3

    def test_object_lifecycle(self, engine):
        assert engine.num_objects == 3
        engine.add_object(IndoorObject(4, Point(9, 9)))
        assert engine.num_objects == 4
        assert engine.get_object(4).position == Point(9, 9)
        engine.move_object(4, Point(1, 5.5))
        assert engine.framework.objects.host_partition_id(4) == 10
        removed = engine.remove_object(4)
        assert removed.object_id == 4
        assert engine.num_objects == 3

    def test_queries_reflect_object_moves(self, engine):
        # Move the defibrillator out of room 13; a small range query in room
        # 13 then finds nothing.
        engine.move_object(1, Point(13, 9))
        assert engine.range_query(P, 3.0) == []
        engine.move_object(1, Point(6.5, 9.0))
        assert engine.range_query(P, 3.0) == [1]

    def test_add_object_returns_host_partition(self, engine):
        assert engine.add_object(IndoorObject(9, Point(7, 7))) == ROOM_13

    def test_load_from_disk(self, engine, tmp_path):
        from repro.io import save_objects, save_space

        plan_path = tmp_path / "plan.json"
        objects_path = tmp_path / "objects.json"
        save_space(engine.space, plan_path)
        save_objects(
            [engine.get_object(i) for i in (1, 2, 3)], objects_path
        )
        loaded = QueryEngine.load(plan_path, objects_path)
        assert loaded.num_objects == 3
        assert loaded.distance(P, Q) == pytest.approx(engine.distance(P, Q))
        assert loaded.range_query(P, 3.0) == engine.range_query(P, 3.0)

    def test_load_without_objects(self, engine, tmp_path):
        from repro.io import save_space

        plan_path = tmp_path / "plan.json"
        save_space(engine.space, plan_path)
        loaded = QueryEngine.load(plan_path)
        assert loaded.num_objects == 0
