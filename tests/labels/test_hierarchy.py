"""The independent-set vertex hierarchy (repro.labels.hierarchy)."""

import numpy as np

from repro.distance.matrix import _door_graph_edges
from repro.labels import affected_cone, build_hierarchy


def _graph_inputs(space):
    graph = space.distance_graph
    graph.precompute()
    return tuple(space.topology.door_ids), _door_graph_edges(graph)


class TestBuildHierarchy:
    def test_every_door_gets_a_level(self, building_space):
        door_ids, edges = _graph_inputs(building_space)
        hierarchy = build_hierarchy(door_ids, edges)
        assert hierarchy.door_ids == door_ids
        assert len(hierarchy.levels) == len(door_ids)
        assert (hierarchy.levels >= 0).all()

    def test_order_is_a_permutation(self, building_space):
        door_ids, edges = _graph_inputs(building_space)
        hierarchy = build_hierarchy(door_ids, edges)
        assert sorted(hierarchy.order.tolist()) == list(range(len(door_ids)))

    def test_order_descends_through_levels(self, building_space):
        """Hubs are processed top-of-hierarchy first."""
        door_ids, edges = _graph_inputs(building_space)
        hierarchy = build_hierarchy(door_ids, edges)
        levels_in_order = hierarchy.levels[hierarchy.order]
        assert (np.diff(levels_in_order) <= 0).all()

    def test_peeling_produces_multiple_levels(self, building_space):
        """The adaptive degree threshold must not collapse the hierarchy
        to a single level on partition-induced cliques."""
        door_ids, edges = _graph_inputs(building_space)
        hierarchy = build_hierarchy(door_ids, edges)
        assert hierarchy.height > 1

    def test_deterministic(self, building_space):
        door_ids, edges = _graph_inputs(building_space)
        first = build_hierarchy(door_ids, edges)
        second = build_hierarchy(door_ids, edges)
        assert np.array_equal(first.levels, second.levels)
        assert np.array_equal(first.order, second.order)

    def test_rank_inverts_order(self, building_space):
        door_ids, edges = _graph_inputs(building_space)
        hierarchy = build_hierarchy(door_ids, edges)
        rank = hierarchy.rank_of()
        assert np.array_equal(
            rank[hierarchy.order], np.arange(len(door_ids))
        )

    def test_empty_graph(self):
        hierarchy = build_hierarchy((), [])
        assert hierarchy.height == 0
        assert len(hierarchy.order) == 0


class TestAffectedCone:
    def test_cone_contains_seed_and_everything_above(self, building_space):
        door_ids, edges = _graph_inputs(building_space)
        hierarchy = build_hierarchy(door_ids, edges)
        seed = int(np.argmin(hierarchy.levels))
        cone = affected_cone(hierarchy, [seed])
        assert seed in cone
        floor = int(hierarchy.levels[seed])
        assert set(cone.tolist()) == set(
            np.flatnonzero(hierarchy.levels >= floor).tolist()
        )

    def test_empty_seed_empty_cone(self, building_space):
        door_ids, edges = _graph_inputs(building_space)
        hierarchy = build_hierarchy(door_ids, edges)
        assert len(affected_cone(hierarchy, [])) == 0
