"""Known-good / known-bad fixture snippets for each lint rule."""

import textwrap

from repro.analysis.lint import LintConfig, run_lint


def lint_project(tmp_path, files, select=None, pyproject=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    if pyproject is not None:
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent(pyproject))
    config = LintConfig(
        root=tmp_path,
        paths=[tmp_path / "src"],
        select=set(select) if select else None,
        jobs=1,
    )
    return run_lint(config)


def rules_of(report):
    return [f.rule for f in report.new]


class TestLockDiscipline:
    LOCKED_CLASS = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                {body}
        """

    def test_unlocked_write_fires(self, tmp_path):
        source = self.LOCKED_CLASS.format(body="self._count += 1")
        report = lint_project(
            tmp_path, {"src/repro/serve/thing.py": source}, select={"REP001"}
        )
        assert rules_of(report) == ["REP001"]
        assert "self._count" in report.new[0].message

    def test_locked_write_is_clean(self, tmp_path):
        source = self.LOCKED_CLASS.format(
            body="with self._lock:\n            self._count += 1"
        )
        report = lint_project(
            tmp_path, {"src/repro/serve/thing.py": source}, select={"REP001"}
        )
        assert report.new == []

    def test_condition_counts_as_lock(self, tmp_path):
        source = """\
            import threading

            class Queue:
                def __init__(self):
                    self._cv = threading.Condition()
                    self._items = []

                def put(self, item):
                    with self._cv:
                        self._items.append(item)
                        self._depth = len(self._items)
            """
        report = lint_project(
            tmp_path, {"src/repro/persist/q.py": source}, select={"REP001"}
        )
        assert report.new == []

    def test_lock_held_private_helper_is_clean(self, tmp_path):
        source = """\
            import threading

            class Breaker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._failures = 0

                def record_failure(self):
                    with self._lock:
                        self._trip()

                def _trip(self):
                    self._failures += 1
            """
        report = lint_project(
            tmp_path, {"src/repro/serve/b.py": source}, select={"REP001"}
        )
        assert report.new == []

    def test_helper_with_unlocked_call_site_fires(self, tmp_path):
        source = """\
            import threading

            class Breaker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._failures = 0

                def record_failure(self):
                    with self._lock:
                        self._trip()

                def reset(self):
                    self._trip()

                def _trip(self):
                    self._failures += 1
            """
        report = lint_project(
            tmp_path, {"src/repro/serve/b.py": source}, select={"REP001"}
        )
        assert rules_of(report) == ["REP001"]

    def test_lockless_class_is_out_of_scope(self, tmp_path):
        source = """\
            class Plain:
                def bump(self):
                    self._count = 1
            """
        report = lint_project(
            tmp_path, {"src/repro/serve/p.py": source}, select={"REP001"}
        )
        assert report.new == []

    def test_modules_outside_serve_persist_are_out_of_scope(self, tmp_path):
        source = self.LOCKED_CLASS.format(body="self._count += 1")
        report = lint_project(
            tmp_path, {"src/repro/queries/thing.py": source}, select={"REP001"}
        )
        assert report.new == []


class TestDeterminism:
    def test_wall_clock_fires(self, tmp_path):
        source = """\
            import time

            def stamp():
                return time.time()
            """
        report = lint_project(
            tmp_path, {"src/repro/chaos/x.py": source}, select={"REP002"}
        )
        assert rules_of(report) == ["REP002"]

    def test_from_import_alias_resolves(self, tmp_path):
        source = """\
            from time import time as _now

            def stamp():
                return _now()
            """
        report = lint_project(
            tmp_path, {"src/repro/chaos/x.py": source}, select={"REP002"}
        )
        assert rules_of(report) == ["REP002"]

    def test_global_random_draw_fires(self, tmp_path):
        source = """\
            import random

            def pick(items):
                return random.choice(items)
            """
        report = lint_project(
            tmp_path, {"src/repro/synthetic/x.py": source}, select={"REP002"}
        )
        assert rules_of(report) == ["REP002"]

    def test_seeded_rng_and_monotonic_are_clean(self, tmp_path):
        source = """\
            import random
            import time

            def pick(items, seed):
                rng = random.Random(seed)
                started = time.monotonic()
                return rng.choice(items), started
            """
        report = lint_project(
            tmp_path, {"src/repro/chaos/x.py": source}, select={"REP002"}
        )
        assert report.new == []

    def test_out_of_scope_module_is_clean(self, tmp_path):
        source = """\
            import time

            def stamp():
                return time.time()
            """
        report = lint_project(
            tmp_path, {"src/repro/serve/x.py": source}, select={"REP002"}
        )
        assert report.new == []


class TestDeadlinePropagation:
    def test_dropped_deadline_fires(self, tmp_path):
        source = """\
            def helper(x, deadline=None):
                return x

            def outer(x, deadline=None):
                return helper(x)
            """
        report = lint_project(
            tmp_path, {"src/repro/queries/d.py": source}, select={"REP003"}
        )
        assert rules_of(report) == ["REP003"]
        assert "helper" in report.new[0].message

    def test_keyword_forwarding_is_clean(self, tmp_path):
        source = """\
            def helper(x, deadline=None):
                return x

            def outer(x, deadline=None):
                return helper(x, deadline=deadline)
            """
        report = lint_project(
            tmp_path, {"src/repro/queries/d.py": source}, select={"REP003"}
        )
        assert report.new == []

    def test_positional_and_derived_budget_are_clean(self, tmp_path):
        source = """\
            def helper(x, deadline=None):
                return x

            def inner(x, budget=None):
                return x

            def outer(x, deadline=None):
                remaining_budget = deadline
                helper(x, deadline)
                return inner(x, budget=remaining_budget)
            """
        report = lint_project(
            tmp_path, {"src/repro/queries/d.py": source}, select={"REP003"}
        )
        assert report.new == []

    def test_cross_module_callee_is_seen(self, tmp_path):
        files = {
            "src/repro/queries/a.py": """\
                def range_query(space, deadline=None):
                    return []
                """,
            "src/repro/queries/b.py": """\
                from repro.queries.a import range_query

                def serve(space, deadline=None):
                    return range_query(space)
                """,
        }
        report = lint_project(tmp_path, files, select={"REP003"})
        assert rules_of(report) == ["REP003"]

    def test_unaware_callee_is_clean(self, tmp_path):
        source = """\
            def plain(x):
                return x

            def outer(x, deadline=None):
                return plain(x)
            """
        report = lint_project(
            tmp_path, {"src/repro/queries/d.py": source}, select={"REP003"}
        )
        assert report.new == []


class TestExceptionHygiene:
    def test_silent_broad_swallow_fires(self, tmp_path):
        source = """\
            def load(path):
                try:
                    return open(path)
                except Exception:
                    return None
            """
        report = lint_project(
            tmp_path, {"src/repro/persist/x.py": source}, select={"REP004"}
        )
        assert rules_of(report) == ["REP004"]

    def test_bare_except_fires(self, tmp_path):
        source = """\
            def load(path):
                try:
                    return open(path)
                except:
                    return None
            """
        report = lint_project(
            tmp_path, {"src/repro/persist/x.py": source}, select={"REP004"}
        )
        assert rules_of(report) == ["REP004"]

    def test_reraise_is_clean(self, tmp_path):
        source = """\
            def load(path):
                try:
                    return open(path)
                except Exception:
                    raise
            """
        report = lint_project(
            tmp_path, {"src/repro/persist/x.py": source}, select={"REP004"}
        )
        assert report.new == []

    def test_bound_and_used_is_clean(self, tmp_path):
        source = """\
            def load(path, sink):
                try:
                    return open(path)
                except Exception as exc:
                    sink.last_error = exc
                    return None
            """
        report = lint_project(
            tmp_path, {"src/repro/persist/x.py": source}, select={"REP004"}
        )
        assert report.new == []

    def test_metric_call_is_clean(self, tmp_path):
        source = """\
            def load(path, metrics):
                try:
                    return open(path)
                except Exception:
                    metrics.increment("load.failures")
                    return None
            """
        report = lint_project(
            tmp_path, {"src/repro/persist/x.py": source}, select={"REP004"}
        )
        assert report.new == []

    def test_narrow_handler_is_out_of_scope(self, tmp_path):
        source = """\
            def load(path):
                try:
                    return open(path)
                except OSError:
                    return None
            """
        report = lint_project(
            tmp_path, {"src/repro/persist/x.py": source}, select={"REP004"}
        )
        assert report.new == []


class TestExportCoherence:
    def test_phantom_all_entry_fires(self, tmp_path):
        source = """\
            __all__ = ["missing"]
            """
        report = lint_project(
            tmp_path, {"src/repro/widgets/__init__.py": source},
            select={"REP005"},
        )
        assert rules_of(report) == ["REP005"]
        assert "missing" in report.new[0].message

    def test_unexported_public_def_fires(self, tmp_path):
        source = """\
            __all__ = ["visible"]

            def visible():
                return 1

            def stray():
                return 2
            """
        report = lint_project(
            tmp_path, {"src/repro/widgets/__init__.py": source},
            select={"REP005"},
        )
        assert rules_of(report) == ["REP005"]
        assert "stray" in report.new[0].message

    def test_duplicate_entry_fires(self, tmp_path):
        source = """\
            __all__ = ["visible", "visible"]

            def visible():
                return 1
            """
        report = lint_project(
            tmp_path, {"src/repro/widgets/__init__.py": source},
            select={"REP005"},
        )
        assert rules_of(report) == ["REP005"]
        assert "duplicate" in report.new[0].message

    def test_coherent_init_is_clean(self, tmp_path):
        source = """\
            from os.path import join

            __all__ = ["join", "visible"]

            def visible():
                return 1

            def _private():
                return 2
            """
        report = lint_project(
            tmp_path, {"src/repro/widgets/__init__.py": source},
            select={"REP005"},
        )
        assert report.new == []

    def test_version_skew_fires(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/__init__.py": '__version__ = "2.0.0"\n'},
            select={"REP005"},
            pyproject="""\
                [project]
                name = "repro"
                version = "1.0.0"
                """,
        )
        assert rules_of(report) == ["REP005"]
        assert "disagrees" in report.new[0].message

    def test_matching_versions_are_clean(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/__init__.py": '__version__ = "1.0.0"\n'},
            select={"REP005"},
            pyproject="""\
                [project]
                name = "repro"
                version = "1.0.0"
                """,
        )
        assert report.new == []
