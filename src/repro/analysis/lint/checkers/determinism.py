"""REP002 — determinism in replay-critical modules.

The chaos campaign's incident digest (PR 4) is a SHA-256 over every
event the runner emits; snapshots and synthetic workloads likewise
promise byte-identical replay from a seed.  One stray wall-clock read or
unseeded random draw silently breaks that contract.

Inside the replay-critical scope (``repro.chaos``, ``repro.labels``,
``repro.persist``, ``repro.synthetic``, ``repro.runtime.faults``,
``repro.shard``, ``repro.overload``) this rule forbids calls to:

* ``time.time`` / ``time.time_ns`` (wall clock; ``time.monotonic`` and
  ``time.perf_counter`` stay allowed — they measure, they don't stamp)
* ``datetime.now`` / ``utcnow`` / ``today`` / ``date.today``
* module-level ``random.<fn>()`` draws from the process-global RNG
  (seeded ``random.Random(seed)`` instances are the sanctioned idiom)
* ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``, anything in ``secrets``

Intentional wall-clock reads (operator-facing provenance stamps) carry a
``# repro: noqa REP002`` suppression with a justifying comment.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import Checker, register

_SCOPE_PREFIXES = (
    "repro.chaos",
    "repro.labels",
    "repro.persist",
    "repro.synthetic",
    "repro.runtime.faults",
    "repro.shard",
    "repro.overload",
)

#: Fully-qualified call targets that break replay determinism.
_FORBIDDEN: Dict[str, str] = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "date.today": "wall-clock read",
    "os.urandom": "OS entropy source",
    "uuid.uuid1": "host/time-derived identifier",
    "uuid.uuid4": "unseeded random identifier",
}

#: Draws on the module-global RNG; ``random.Random`` / ``SystemRandom``
#: and ``random.seed`` are intentionally absent (constructor and
#: explicit seeding are fine).
_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "getrandbits",
    "randbytes",
}


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chain -> "a.b.c"; non-chains -> None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTable:
    """Local name -> qualified origin, for resolving aliased imports."""

    def __init__(self, tree: ast.Module) -> None:
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.names[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        origin = self.names.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


@register
class DeterminismChecker(Checker):
    rule_id = "REP002"
    summary = (
        "no wall-clock or unseeded randomness in replay-critical modules"
    )

    def check(
        self, module: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        if not module.module_name.startswith(_SCOPE_PREFIXES):
            return []
        imports = _ImportTable(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            resolved = imports.resolve(dotted)
            reason = self._forbidden_reason(resolved)
            if reason is None:
                continue
            findings.append(
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"nondeterministic call {resolved}() ({reason}) in "
                    "replay-critical module",
                    hint=(
                        "thread a seed or injected clock through instead; "
                        "use random.Random(seed) for randomness and "
                        "time.monotonic for durations"
                    ),
                )
            )
        return findings

    @staticmethod
    def _forbidden_reason(resolved: str) -> Optional[str]:
        if resolved in _FORBIDDEN:
            return _FORBIDDEN[resolved]
        if resolved.startswith("secrets."):
            return "cryptographic entropy source"
        head, _, tail = resolved.partition(".")
        if head == "random" and tail in _GLOBAL_RANDOM_FNS:
            return "draw from the unseeded process-global RNG"
        return None
