"""Chaos campaigns against the multi-process sharded tier.

Shard campaigns are NOT replay-stable (worker death and restart land on
OS scheduler timing), so these tests assert the safety verdicts — no
silent wrong answers, no unrecovered incidents — rather than digests,
and the CLI must refuse to ``replay`` a shard report outright.
"""

import json

import pytest

from repro.chaos import CampaignConfig, CampaignRunner, FaultAction, FaultPlan
from repro.cli import main


@pytest.fixture(scope="module")
def shard_report():
    config = CampaignConfig(seed=5, duration_ops=40, shards=3)
    return CampaignRunner(config).run()


class TestShardCampaign:
    def test_standard_shard_plan_passes_all_safety_verdicts(
        self, shard_report
    ):
        counts = shard_report.counts()
        assert shard_report.verdict == "PASS"
        assert counts["silent_wrong_answer"] == 0
        assert counts["unrecovered"] == 0
        assert shard_report.ops_executed == 40

    def test_shard_faults_left_their_footprints(self, shard_report):
        kinds = {i.kind for i in shard_report.incidents}
        for expected in (
            "shard_killed",
            "shard_hung",
            "shard_snapshot_corrupted",
        ):
            assert expected in kinds, expected

    def test_report_records_per_shard_breakers(self, shard_report):
        assert any(
            key.startswith("shard.") for key in shard_report.breaker
        )

    def test_config_roundtrips_with_shards(self, shard_report):
        restored = CampaignConfig.from_dict(shard_report.config)
        assert restored.shards == 3


class TestActionTierCompatibility:
    def test_shard_action_rejected_in_single_process_campaign(self):
        plan = FaultPlan([
            FaultAction(2, "kill_shard", {"shard": 0}, label="x"),
        ])
        runner = CampaignRunner(
            CampaignConfig(seed=0, duration_ops=10, plan=plan)
        )
        with pytest.raises(ValueError, match="requires a sharded campaign"):
            runner.run()

    def test_single_process_action_rejected_in_shard_campaign(self):
        plan = FaultPlan([
            FaultAction(
                2, "corrupt_md2d", {"mode": "nan", "count": 1, "seed": 0},
                label="x",
            ),
        ])
        runner = CampaignRunner(
            CampaignConfig(seed=0, duration_ops=25, shards=2, plan=plan)
        )
        with pytest.raises(ValueError, match="not available in a sharded"):
            runner.run()


class TestShardReplayRefusal:
    def test_cli_refuses_to_replay_a_shard_report(
        self, shard_report, tmp_path, capsys
    ):
        path = shard_report.save(tmp_path / "shard-report.json")
        code = main(["chaos", "replay", "--report", str(path)])
        out = capsys.readouterr().out
        assert code == 2
        assert "not replay-stable" in out

    def test_cli_runs_shard_campaigns(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        code = main([
            "chaos", "run", "--seed", "2", "--duration-ops", "30",
            "--shards", "2", "--report", str(path),
        ])
        assert code == 0
        raw = json.loads(path.read_text(encoding="utf-8"))
        assert raw["config"]["shards"] == 2
        assert raw["verdict"] == "PASS"
        assert raw["counts"]["silent_wrong_answer"] == 0
        assert raw["counts"]["unrecovered"] == 0
