"""SharedIndexArena: zero-copy publish/attach round-trip and teardown."""

import json

import numpy as np
import pytest

from repro.shard import SharedIndexArena


@pytest.fixture
def arena(shard_framework_fixture):
    arena = SharedIndexArena.create(shard_framework_fixture.distance_index)
    yield arena
    arena.unlink()


class TestRoundTrip:
    def test_views_match_the_source_index(self, shard_framework_fixture, arena):
        index = shard_framework_fixture.distance_index
        np.testing.assert_array_equal(arena.md2d, index.md2d)
        np.testing.assert_array_equal(arena.order, index.scan_order)
        assert arena.door_ids == tuple(index.door_ids)
        assert arena.owner

    def test_attach_sees_identical_arrays(self, arena):
        attached = SharedIndexArena.attach(arena.descriptor)
        try:
            np.testing.assert_array_equal(attached.md2d, arena.md2d)
            np.testing.assert_array_equal(attached.order, arena.order)
            assert attached.door_ids == arena.door_ids
            assert not attached.owner
        finally:
            attached.close()

    def test_descriptor_is_json_safe(self, arena):
        assert json.loads(json.dumps(arena.descriptor)) == arena.descriptor

    def test_distance_index_reassembles_equal_matrices(
        self, shard_framework_fixture, arena
    ):
        index = arena.distance_index()
        source = shard_framework_fixture.distance_index
        np.testing.assert_array_equal(index.md2d, source.md2d)
        np.testing.assert_array_equal(index.scan_order, source.scan_order)
        assert tuple(index.door_ids) == tuple(source.door_ids)


class TestImmutability:
    def test_views_are_read_only(self, arena):
        with pytest.raises(ValueError):
            arena.md2d[0, 0] = -1.0


class TestTeardown:
    def test_close_is_idempotent(self, shard_framework_fixture):
        arena = SharedIndexArena.create(
            shard_framework_fixture.distance_index
        )
        attached = SharedIndexArena.attach(arena.descriptor)
        attached.close()
        attached.close()
        arena.unlink()
        with pytest.raises(FileNotFoundError):
            SharedIndexArena.attach(arena.descriptor)
