"""Property-based tests for the analysis layer."""

from hypothesis import HealthCheck, given, settings

from repro.analysis import (
    critical_doors,
    door_betweenness,
    strongly_connected_partitions,
)
from repro.analysis.importance import _reachable_pair_count
from repro.temporal import DoorSchedule, TemporalIndoorSpace
from tests.strategies import grid_plans

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestBetweennessProperties:
    @RELAXED
    @given(grid_plans(one_way_probability=0.3))
    def test_scores_are_valid_fractions(self, plan):
        scores = door_betweenness(plan.space)
        assert set(scores) == set(plan.space.door_ids)
        assert all(0.0 <= v <= 1.0 for v in scores.values())

    @RELAXED
    @given(grid_plans())
    def test_connected_plan_every_door_used(self, plan):
        # Spanning-tree plans are connected; endpoints count, so every door
        # participates in at least its own pairs.
        if len(plan.space.door_ids) < 2:
            return
        scores = door_betweenness(plan.space)
        assert all(v > 0 for v in scores.values())


class TestSccProperties:
    @RELAXED
    @given(grid_plans(one_way_probability=0.5))
    def test_components_partition_the_vertices(self, plan):
        components = strongly_connected_partitions(plan.space)
        seen = [p for component in components for p in component]
        assert sorted(seen) == sorted(plan.space.partition_ids)
        assert len(seen) == len(set(seen))

    @RELAXED
    @given(grid_plans())
    def test_bidirectional_plan_is_one_component(self, plan):
        components = strongly_connected_partitions(plan.space)
        assert len(components) == 1

    @RELAXED
    @given(grid_plans(one_way_probability=0.5))
    def test_single_component_iff_strongly_connected(self, plan):
        components = strongly_connected_partitions(plan.space)
        assert (len(components) == 1) == (
            plan.space.accessibility.is_strongly_connected()
        )


class TestCriticalDoorProperties:
    @RELAXED
    @given(grid_plans(one_way_probability=0.3))
    def test_closing_a_critical_door_reduces_reachability(self, plan):
        space = plan.space
        baseline = _reachable_pair_count(space.topology, None)
        for door_id in critical_doors(space):
            reduced = _reachable_pair_count(space.topology, door_id)
            assert reduced < baseline

    @RELAXED
    @given(grid_plans(one_way_probability=0.3))
    def test_closing_a_redundant_door_preserves_reachability(self, plan):
        space = plan.space
        critical = set(critical_doors(space))
        baseline = _reachable_pair_count(space.topology, None)
        for door_id in space.door_ids:
            if door_id in critical:
                continue
            assert _reachable_pair_count(space.topology, door_id) == baseline

    @RELAXED
    @given(grid_plans())
    def test_critical_door_closure_matches_temporal_snapshot(self, plan):
        """Criticality analysis and the temporal layer must agree: closing a
        critical door breaks strong connectivity of the snapshot; closing a
        redundant one keeps the snapshot strongly connected (on connected
        bidirectional plans)."""
        space = plan.space
        if len(space.door_ids) < 2:
            return
        critical = set(critical_doors(space))
        for door_id in list(space.door_ids)[:4]:
            schedule = DoorSchedule()
            schedule.set_closed(door_id)
            snapshot = TemporalIndoorSpace(space, schedule).snapshot(0.0)
            connected = snapshot.accessibility.is_strongly_connected()
            assert connected == (door_id not in critical)
