"""The campaign engine: replay a seeded workload through scripted chaos.

:class:`CampaignRunner` drives a full production stack — a
:class:`~repro.serve.lifecycle.SupervisedQueryService` over a
:class:`~repro.persist.recovery.SnapshotStore` — through a
:class:`~repro.chaos.plan.FaultPlan`, judging every served answer with the
:mod:`repro.chaos.oracles` and classifying every event into the
:class:`~repro.chaos.report.IncidentClass` taxonomy.

Every source of nondeterminism is pinned:

* the workload, the object population, and every injector's cell/byte
  choice derive from ``CampaignConfig.seed``;
* faults fire at workload *op indexes*, never wall-clock instants;
* requests run synchronously on the campaign thread (``execute``), with
  one worker, so no interleaving depends on the scheduler;
* latency is measured but excluded from the incident digest.

Two runs of the same config therefore produce byte-identical incident
sequences — the property ``repro chaos replay`` verifies.

Setting ``CampaignConfig.shards > 0`` runs the campaign against the
multi-process :class:`~repro.shard.service.ShardedQueryService` instead,
with the shard-only actions (``kill_shard`` / ``hang_shard`` /
``corrupt_shard_snapshot``).  Worker death and supervised restart are
real OS events, so *which* ops land in a degraded window depends on
scheduler timing: shard campaigns keep every safety verdict (no silent
wrong answers, recovery demanded by the final probe) but their incident
digests are **not** replay-stable, and ``repro chaos replay`` refuses
them.
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.chaos.injectors import apply_topology_action, install_latency
from repro.chaos.oracles import (
    DifferentialOracle,
    EpochOracle,
    OracleViolation,
    euclidean_bound_violation,
    space_is_undirected,
    symmetry_violation,
    triangle_violation,
)
from repro.chaos.plan import (
    SHARD_ACTIONS,
    FaultAction,
    FaultPlan,
    flash_crowd_plan,
    shard_standard_plan,
    standard_plan,
)
from repro.chaos.report import CampaignReport, Incident, IncidentClass
from repro.exceptions import InjectedCrashError, ReproError
from repro.index.framework import IndexFramework
from repro.model.builder import IndoorSpace
from repro.model.figure1 import build_figure1
from repro.persist.recovery import SnapshotStore
from repro.runtime import crashpoints
from repro.runtime.faults import (
    FaultHandle,
    corrupt_labels,
    corrupt_md2d,
    drop_dpt_records,
    flip_snapshot_byte,
    install_flaky_distance_index,
)
from repro.overload import (
    AdaptiveConcurrencyLimiter,
    HedgePolicy,
    RetryBudget,
    overload_snapshot,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.lifecycle import SupervisedQueryService
from repro.serve.metrics import MetricsRegistry
from repro.serve.requests import QueryRequest, QueryResponse
from repro.shard.service import ShardedQueryService
from repro.synthetic.objects import generate_objects
from repro.synthetic.workload import WorkloadOp, flash_crowd_ops, query_workload

#: Buildings a campaign can run against, by config name.
BUILDINGS = {"figure1": build_figure1}

#: How many leading workload ops the end-of-campaign probe re-executes.
FINAL_PROBE_OPS = 3

#: Either serving tier a campaign can drive.
ServingTier = Union[SupervisedQueryService, ShardedQueryService]


def _percentiles(samples: List[float]) -> Dict[str, float]:
    """Nearest-rank p50/p90/p99 plus the sample count."""
    ordered = sorted(samples)

    def pick(q: float) -> float:
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return round(ordered[rank], 4)

    return {
        "count": float(len(ordered)),
        "p50": pick(0.50),
        "p90": pick(0.90),
        "p99": pick(0.99),
    }


@dataclass
class CampaignConfig:
    """Everything that determines a campaign, hence its incident digest.

    Attributes:
        seed: master seed — workload, object population, and every
            injector's random choices derive from it.
        duration_ops: workload length.
        building: key into :data:`BUILDINGS`.
        object_count: indoor objects populated before the campaign.
        plan: the fault schedule (``None`` means
            :func:`~repro.chaos.plan.standard_plan` of ``duration_ops``).
        differential: judge answers against a pristine engine.
        metamorphic: probe pt2pt answers for symmetry / triangle /
            Euclidean-bound invariants.
        epoch_oracle: enforce topology-epoch linearizability.
        integrity_gate: run the §IV invariant checks before every exact
            answer (the detection layer; disabling it is how the silent
            wrong-answer failure mode is demonstrated).
        breaker: install a serve-layer :class:`CircuitBreaker`.
        failure_threshold / cooldown_ops: breaker tuning.
        store_dir: snapshot-store directory (``None``: a fresh tempdir;
            never serialised, so replays use their own directory).
        shards: 0 runs the single-process tier; > 0 runs a
            :class:`~repro.shard.service.ShardedQueryService` with that
            many worker processes (shard campaigns are not
            replay-stable — see the module docstring).
        backend: distance backend the *served* stack is built with
            (``"matrix"`` or ``"labels"``).  The differential oracle's
            pristine engine always stays on the dense matrix, so a
            ``backend="labels"`` campaign is an end-to-end proof that the
            label index answers bit-identically to M_idx under faults.
        workload: op-stream shape — ``"mixed"`` (the uniform default) or
            ``"flash_crowd"`` (zipfian hotspots + tracking bursts; the
            default plan becomes
            :func:`~repro.chaos.plan.flash_crowd_plan`, shard casualties
            timed into the spike).
        hedging: install the overload-control stack on the sharded tier
            (hedged scatter-gather with a retry budget and a generous
            limiter).  Requires ``shards > 0`` — hedging is a
            scatter-gather concept.
    """

    seed: int = 0
    duration_ops: int = 200
    building: str = "figure1"
    object_count: int = 12
    plan: Optional[FaultPlan] = None
    differential: bool = True
    metamorphic: bool = True
    epoch_oracle: bool = True
    integrity_gate: bool = True
    breaker: bool = True
    failure_threshold: int = 2
    cooldown_ops: int = 6
    store_dir: Optional[str] = None
    shards: int = 0
    backend: str = "matrix"
    workload: str = "mixed"
    hedging: bool = False

    def __post_init__(self) -> None:
        if self.workload not in ("mixed", "flash_crowd"):
            raise ValueError(
                f"workload must be 'mixed' or 'flash_crowd', "
                f"got {self.workload!r}"
            )
        if self.hedging and self.shards <= 0:
            raise ValueError(
                "hedging requires a sharded campaign (shards > 0): hedged "
                "probes are a scatter-gather concept"
            )

    def resolved_plan(self) -> FaultPlan:
        """The plan actually run (defaults to the standard campaign of
        the selected tier)."""
        if self.plan is not None:
            return self.plan
        if self.shards > 0:
            if self.workload == "flash_crowd":
                return flash_crowd_plan(self.duration_ops, shards=self.shards)
            return shard_standard_plan(self.duration_ops, shards=self.shards)
        return standard_plan(self.duration_ops)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form, embedded in reports (``store_dir`` excluded —
        a replay must not depend on, or leak, a local path)."""
        return {
            "seed": self.seed,
            "duration_ops": self.duration_ops,
            "building": self.building,
            "object_count": self.object_count,
            "plan": self.resolved_plan().to_json_dict(),
            "differential": self.differential,
            "metamorphic": self.metamorphic,
            "epoch_oracle": self.epoch_oracle,
            "integrity_gate": self.integrity_gate,
            "breaker": self.breaker,
            "failure_threshold": self.failure_threshold,
            "cooldown_ops": self.cooldown_ops,
            "shards": self.shards,
            "backend": self.backend,
            "workload": self.workload,
            "hedging": self.hedging,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "CampaignConfig":
        """Inverse of :meth:`to_dict` (what ``chaos replay`` rebuilds)."""
        plan = raw.get("plan")
        return cls(
            seed=int(raw["seed"]),
            duration_ops=int(raw["duration_ops"]),
            building=raw.get("building", "figure1"),
            object_count=int(raw.get("object_count", 12)),
            plan=FaultPlan.from_json_dict(plan) if plan is not None else None,
            differential=bool(raw.get("differential", True)),
            metamorphic=bool(raw.get("metamorphic", True)),
            epoch_oracle=bool(raw.get("epoch_oracle", True)),
            integrity_gate=bool(raw.get("integrity_gate", True)),
            breaker=bool(raw.get("breaker", True)),
            failure_threshold=int(raw.get("failure_threshold", 2)),
            cooldown_ops=int(raw.get("cooldown_ops", 6)),
            shards=int(raw.get("shards", 0)),
            backend=str(raw.get("backend", "matrix")),
            workload=str(raw.get("workload", "mixed")),
            hedging=bool(raw.get("hedging", False)),
        )


class CampaignRunner:
    """Run one deterministic chaos campaign and report on it."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()
        self._service: Optional[ServingTier] = None
        self._breaker: Optional[CircuitBreaker] = None
        self._limiter: Optional[AdaptiveConcurrencyLimiter] = None
        self._retry_budget: Optional[RetryBudget] = None
        self._metrics = MetricsRegistry()
        self._handles: Dict[str, FaultHandle] = {}
        self._incidents: List[Incident] = []
        self._tentative: List[Incident] = []
        self._latency: Dict[str, List[float]] = {}
        self._objects: List[Any] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        """Execute the campaign; returns the finalized report."""
        cfg = self.config
        if cfg.building not in BUILDINGS:
            raise ValueError(
                f"unknown building {cfg.building!r}; "
                f"expected one of {sorted(BUILDINGS)}"
            )
        plan = cfg.resolved_plan()
        space = BUILDINGS[cfg.building]()
        self._objects = [
            obj for obj, _ in generate_objects(
                space, cfg.object_count, seed=cfg.seed
            )
        ]
        if cfg.workload == "flash_crowd":
            ops = flash_crowd_ops(space, cfg.duration_ops, seed=cfg.seed)
        else:
            ops = query_workload(space, cfg.duration_ops, seed=cfg.seed)

        tempdir: Optional[tempfile.TemporaryDirectory] = None
        if cfg.store_dir is None:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
            store_dir = tempdir.name
        else:
            store_dir = str(cfg.store_dir)
        store = SnapshotStore(store_dir)
        store.save(
            IndexFramework.build(space, self._objects, backend=cfg.backend)
        )

        if cfg.breaker and cfg.shards == 0:
            # The sharded tier brings its own per-shard breakers; the
            # single serve-layer breaker only guards the in-process tier.
            self._breaker = CircuitBreaker(
                failure_threshold=cfg.failure_threshold,
                cooldown_ops=cfg.cooldown_ops,
                metrics=self._metrics,
            )
        differential = (
            DifferentialOracle(space, self._objects)
            if cfg.differential else None
        )
        epoch = EpochOracle() if cfg.epoch_oracle else None

        executed = 0
        breaker_state: Dict[str, Any] = {}
        reconfig_state: Dict[str, Any] = {}
        try:
            self._service = self._start_service(store)
            for op in ops:
                for action in plan.actions_at(op.index):
                    self._apply_action(action, op.index, store)
                if differential is not None:
                    differential.rebind(self._live_space(), self._objects)
                self._execute_op(op, differential, epoch)
                executed += 1
            # A custom plan may pin actions past the last op; fire them so
            # e.g. a trailing restart is still exercised before the probe.
            for index in range(cfg.duration_ops, plan.last_op + 1):
                for action in plan.actions_at(index):
                    self._apply_action(action, index, store)
            self._final_probe(ops, differential)
            breaker_state = self._breaker_state()
            reconfig_state = self._reconfig_state()
        finally:
            crashpoints.disarm_all()
            if self._service is not None:
                self._service.shutdown()
            if tempdir is not None:
                tempdir.cleanup()

        report = CampaignReport(
            config=cfg.to_dict(),
            incidents=self._incidents,
            ops_executed=executed,
            latency_ms={
                quality: _percentiles(samples)
                for quality, samples in sorted(self._latency.items())
            },
            breaker=breaker_state,
            overload=(
                overload_snapshot(
                    self._metrics,
                    limiter=self._limiter,
                    budget=self._retry_budget,
                )
                if cfg.hedging else {}
            ),
            reconfig=reconfig_state,
        )
        return report.finalize()

    def _breaker_state(self) -> Dict[str, Any]:
        """The breaker snapshot(s) for the report, whichever tier ran."""
        if self._breaker is not None:
            return self._breaker.snapshot()
        if isinstance(self._service, ShardedQueryService):
            router = self._service.router
            if router is not None:
                return {
                    f"shard.{shard}": snap
                    for shard, snap in router.breaker_snapshot().items()
                }
        return {}

    def _reconfig_state(self) -> Dict[str, Any]:
        """The coordinator's end-of-campaign snapshot (sharded tier only;
        informational — never digested)."""
        if isinstance(self._service, ShardedQueryService):
            coordinator = self._service.reconfig
            if coordinator is not None:
                return coordinator.snapshot()
        return {}

    # ------------------------------------------------------------------
    # Service plumbing
    # ------------------------------------------------------------------
    def _start_service(self, store: SnapshotStore) -> ServingTier:
        cfg = self.config

        def rebuild() -> IndexFramework:
            # Last-resort rung only: every snapshot generation unloadable.
            return IndexFramework.build(
                BUILDINGS[cfg.building](), self._objects, backend=cfg.backend
            )

        if cfg.shards > 0:
            overload_opts: Dict[str, Any] = {}
            if cfg.hedging:
                # The full overload-control stack, tuned for a serial
                # campaign: hedges re-probe stragglers (the hung-shard
                # case) from a shared retry budget; the limiter's SLO is
                # generous enough that one-at-a-time ops never shed, so
                # every degradation in the report is fault-driven.
                self._limiter = AdaptiveConcurrencyLimiter(slo_ms=500.0)
                self._retry_budget = RetryBudget()
                overload_opts = {
                    "hedge_policy": HedgePolicy(),
                    "retry_budget": self._retry_budget,
                    "limiter": self._limiter,
                }
            service = ShardedQueryService(
                store=store,
                rebuild=rebuild,
                shards=cfg.shards,
                metrics=self._metrics,
                snapshot_on_shutdown=False,
                failure_threshold=cfg.failure_threshold,
                cooldown_ops=cfg.cooldown_ops,
                **overload_opts,
                # No answer cache: every op must hit the fleet so degraded
                # windows are observable, and tight supervision timings
                # keep kill → restart cycles inside the campaign's span.
                cache_capacity=0,
                shard_timeout_s=0.25,
                heartbeat_interval=0.05,
                liveness_timeout=0.4,
                restart_backoff=0.02,
                # Campaigns fork so worker restarts complete in
                # milliseconds; workers never touch supervisor-side locks
                # after the fork.  Production keeps the spawn default.
                start_method="fork",
            )
            service.start(wait=True)
            return service

        service = SupervisedQueryService(
            store,
            rebuild=rebuild,
            verify_integrity=True,
            snapshot_on_shutdown=False,  # campaign shutdowns simulate crashes
            workers=1,
            metrics=self._metrics,
            breaker=self._breaker,
            integrity_gate=cfg.integrity_gate,
        )
        service.start(wait=True)
        return service

    def _live_framework(self) -> IndexFramework:
        if isinstance(self._service, ShardedQueryService):
            return self._service.framework
        return self._service.service.engine.framework

    def _live_space(self) -> IndoorSpace:
        return self._live_framework().space

    # ------------------------------------------------------------------
    # Plan actions
    # ------------------------------------------------------------------
    def _apply_action(
        self, action: FaultAction, op_index: int, store: SnapshotStore
    ) -> None:
        params = action.params
        label = action.label or action.action
        name = action.action
        shard_mode = self.config.shards > 0
        # Topology mutations and crash-point arming are tier-agnostic: on
        # the sharded tier the WAL recorder is the ReconfigRecorder, so a
        # remove_door / add_door drives a live epoch-fenced rolling round
        # (and arm_crash may tear that round at a reconfig.* point).
        shared = ("heal", "remove_door", "add_door", "arm_crash")
        if shard_mode and name not in SHARD_ACTIONS and name not in shared:
            # In-process injectors poison the supervisor-side framework,
            # which no worker serves from — the fault would be invisible
            # and the campaign would "pass" vacuously.  Refuse loudly.
            raise ValueError(
                f"action {name!r} is not available in a sharded campaign"
            )
        if not shard_mode and name in SHARD_ACTIONS:
            raise ValueError(
                f"action {name!r} requires a sharded campaign (shards > 0)"
            )
        if name == "corrupt_md2d":
            framework = self._live_framework()
            mode = params.get("mode", "nan")
            if getattr(framework.distance_index, "kind", "matrix") == "labels":
                # Same adversary, labels-shaped: the plan's "asymmetric"
                # mode maps to the labels "skew" mode (both are the
                # finite, silently-wrong corruption of their backend).
                self._handles[label] = corrupt_labels(
                    framework,
                    mode="skew" if mode == "asymmetric" else mode,
                    count=int(params.get("count", 1)),
                    seed=int(params.get("seed", 0)),
                )
            else:
                self._handles[label] = corrupt_md2d(
                    framework,
                    mode=mode,
                    count=int(params.get("count", 1)),
                    seed=int(params.get("seed", 0)),
                )
        elif name == "drop_dpt":
            self._handles[label] = drop_dpt_records(
                self._live_framework(),
                count=int(params.get("count", 1)),
                seed=int(params.get("seed", 0)),
            )
        elif name == "flaky_index":
            self._handles[label] = install_flaky_distance_index(
                self._live_framework(),
                fail_after=int(params.get("fail_after", 0)),
            )
        elif name == "latency":
            self._handles[label] = install_latency(
                self._live_framework(), float(params["per_call_ms"])
            )
        elif name == "flip_snapshot":
            generation = store.latest()
            if generation is not None:
                self._handles[label] = flip_snapshot_byte(
                    store.path_for(generation),
                    count=int(params.get("count", 1)),
                    seed=int(params.get("seed", 0)),
                )
        elif name == "heal":
            self._heal(params.get("label", ""))
        elif name == "checkpoint":
            store.checkpoint(self._live_framework())
        elif name in ("remove_door", "add_door"):
            recorder = self._service.wal_recorder()
            try:
                apply_topology_action(recorder, name, params)
            except InjectedCrashError as exc:
                incident = Incident(
                    op_index,
                    "injected_crash",
                    IncidentClass.UNRECOVERED,
                    detail=f"crash at point {exc.point} during {name}",
                )
                self._incidents.append(incident)
                self._tentative.append(incident)
        elif name == "arm_crash":
            crashpoints.arm(params["point"], skip=int(params.get("skip", 0)))
        elif name == "restart":
            self._restart(op_index, store)
        elif name == "kill_shard":
            shard = int(params["shard"])
            cold = bool(params.get("cold", False))
            self._service.kill_shard(shard, cold=cold)
            # Tentative: the final probe decides whether the supervisor
            # actually brought the shard back (RECOVERED) or not.
            incident = Incident(
                op_index,
                "shard_killed",
                IncidentClass.RECOVERED,
                detail=f"{'cold-' if cold else ''}killed shard {shard}",
            )
            self._incidents.append(incident)
            self._tentative.append(incident)
        elif name == "hang_shard":
            shard = int(params["shard"])
            seconds = float(params.get("seconds", 1.0))
            self._service.hang_shard(shard, seconds)
            incident = Incident(
                op_index,
                "shard_hung",
                IncidentClass.RECOVERED,
                detail=f"hung shard {shard} for {seconds}s",
            )
            self._incidents.append(incident)
            self._tentative.append(incident)
        elif name == "corrupt_shard_snapshot":
            shard = int(params["shard"])
            handle = self._service.corrupt_shard_snapshot(
                shard,
                count=int(params.get("count", 1)),
                seed=int(params.get("seed", 0)),
            )
            # The handle is deliberately dropped: the shard's restart
            # ladder must quarantine the corrupt file and rebuild — the
            # campaign never un-flips the bytes for it.
            detail = (
                f"bit-rotted shard {shard}'s snapshot"
                if handle is not None
                else f"shard {shard} has no snapshot to corrupt"
            )
            self._incidents.append(Incident(
                op_index,
                "shard_snapshot_corrupted",
                IncidentClass.RECOVERED,
                detail=detail,
            ))
        else:  # unreachable: FaultAction validates against ACTIONS
            raise ValueError(f"unknown action {name!r}")

    def _heal(self, label: str) -> None:
        """Undo one labelled fault, or every active fault for ``""``."""
        labels = [label] if label else list(self._handles)
        for key in labels:
            handle = self._handles.pop(key, None)
            if handle is None:
                continue
            try:
                handle.undo()
            except Exception:
                # First undo failed; count it so a flaky heal path is
                # visible in the campaign metrics, then retry once.  A
                # second failure propagates — a fault that cannot be
                # healed must fail the campaign, not linger silently.
                self._metrics.increment("chaos.heal.retries")
                handle.undo()

    def _restart(self, op_index: int, store: SnapshotStore) -> None:
        """Kill the service without a final snapshot; recover supervised."""
        old = self._service
        self._service = None
        if old is not None:
            old.shutdown()
        # Injected faults died with the old process's framework; a fresh
        # process also starts with a quiet breaker.
        self._handles.clear()
        if self._breaker is not None:
            self._breaker.reset()
        service = self._start_service(store)
        self._service = service
        report = service.recovery_report
        if report is None:
            return
        for path in report.quarantined:
            self._incidents.append(Incident(
                op_index,
                "quarantined",
                IncidentClass.RECOVERED,
                detail=f"quarantined {path.name} during supervised restart",
            ))
        replay = report.replay
        if replay is not None and replay.dropped_tail:
            self._incidents.append(Incident(
                op_index,
                "wal_torn_tail",
                IncidentClass.RECOVERED,
                detail="dropped a torn WAL tail during replay",
            ))
        provenance = f"recovered from {report.source.value}"
        if report.generation is not None:
            provenance += f" generation {report.generation}"
        if replay is not None:
            provenance += f", replayed {replay.applied} WAL records"
        self._incidents.append(Incident(
            op_index, "restarted", IncidentClass.RECOVERED, detail=provenance
        ))

    # ------------------------------------------------------------------
    # Serving + judging
    # ------------------------------------------------------------------
    def _execute_op(
        self,
        op: WorkloadOp,
        differential: Optional[DifferentialOracle],
        epoch: Optional[EpochOracle],
    ) -> None:
        try:
            response = self._service.execute(op.to_request())
        except ReproError as exc:
            # A *detected* failure: tentative until the final probe shows
            # the service healed (RECOVERED) or not (UNRECOVERED).
            incident = Incident(
                op.index,
                "request_failed",
                IncidentClass.UNRECOVERED,
                detail=f"{op.kind} raised {type(exc).__name__}",
            )
            self._incidents.append(incident)
            self._tentative.append(incident)
            return
        self._latency.setdefault(response.quality.name, []).append(
            response.latency_ms
        )
        violation = self._judge(op, response, differential, epoch)
        if violation is not None:
            self._incidents.append(Incident(
                op.index,
                "oracle_violation",
                IncidentClass.SILENT_WRONG_ANSWER,
                quality=response.quality.name,
                detail=violation,
            ))
        elif response.breaker or response.shed or response.degraded:
            self._incidents.append(Incident(
                op.index,
                "breaker_degraded" if response.breaker else "degraded",
                IncidentClass.DEGRADED_CORRECTLY,
                quality=response.quality.name,
                detail=f"{op.kind} served at {response.quality.name}",
            ))

    def _judge(
        self,
        op: WorkloadOp,
        response: QueryResponse,
        differential: Optional[DifferentialOracle],
        epoch: Optional[EpochOracle],
    ) -> Optional[str]:
        """The oracles' verdict on one answer (``None`` when clean)."""
        try:
            if epoch is not None:
                epoch.observe(op.index, response)
            if differential is not None:
                differential.check(op, response)
        except OracleViolation as exc:
            return f"{exc.oracle}: {exc.detail}"
        if op.kind != "pt2pt":
            return None
        served = float(response.value)
        detail = euclidean_bound_violation(op, served)
        if detail is not None:
            return f"metamorphic: {detail}"
        if not (self.config.metamorphic and response.quality.is_exact):
            return None
        probes = self._probe_distances(op)
        if probes is None:
            return None
        backward, via_first, via_second = probes
        if space_is_undirected(self._live_space()):
            detail = symmetry_violation(op, served, backward)
            if detail is not None:
                return f"metamorphic: {detail}"
        detail = triangle_violation(op, served, via_first, via_second)
        if detail is not None:
            return f"metamorphic: {detail}"
        return None

    def _probe_distances(self, op: WorkloadOp):
        """The three auxiliary pt2pt answers the metamorphic checks need
        (reverse leg, and both pivot legs), or ``None`` when any probe
        fails or is served below an exact rung."""
        requests = (
            QueryRequest.pt2pt(op.target, op.position),
            QueryRequest.pt2pt(op.position, op.pivot),
            QueryRequest.pt2pt(op.pivot, op.target),
        )
        values = []
        for request in requests:
            try:
                response = self._service.execute(request)
            except ReproError:
                return None
            if not response.quality.is_exact:
                return None
            values.append(float(response.value))
        return tuple(values)

    # ------------------------------------------------------------------
    # End of campaign
    # ------------------------------------------------------------------
    def _final_probe(
        self,
        ops: List[WorkloadOp],
        differential: Optional[DifferentialOracle],
    ) -> None:
        """Heal everything, then demand exact, oracle-clean service again.

        The probe is what turns tentative detected-failure incidents into
        RECOVERED — or, if the service never comes back to verified exact
        answers, UNRECOVERED (which fails the campaign).
        """
        self._heal("")
        crashpoints.disarm_all()
        if self._breaker is not None:
            self._breaker.reset()
        failures: List[str] = []
        if isinstance(self._service, ShardedQueryService):
            # Let in-flight restarts land, then force every shard breaker
            # closed so the probe genuinely demands exact answers.
            if not self._service.await_healthy(timeout=30.0):
                failures.append("fleet never returned to READY")
            self._service.reset_breakers()
        if differential is not None:
            differential.rebind(self._live_space(), self._objects)
        for op in ops[:FINAL_PROBE_OPS]:
            try:
                response = self._service.execute(op.to_request())
            except ReproError as exc:
                failures.append(
                    f"op {op.index} raised {type(exc).__name__}"
                )
                continue
            if not response.quality.is_exact:
                failures.append(
                    f"op {op.index} served at {response.quality.name}"
                )
                continue
            if differential is not None:
                try:
                    differential.check(op, response)
                except OracleViolation as exc:
                    failures.append(f"op {op.index}: {exc.detail}")
        resolved = (
            IncidentClass.UNRECOVERED if failures else IncidentClass.RECOVERED
        )
        for incident in self._tentative:
            incident.classification = resolved
        if failures:
            self._incidents.append(Incident(
                self.config.duration_ops,
                "final_probe_failed",
                IncidentClass.UNRECOVERED,
                detail="; ".join(failures),
            ))
