#!/usr/bin/env python3
"""Museum tour guide (the paper's §I second motivating scenario).

"A museum service can guide visitors through an interesting yet complex
exhibition ... indoor distance awareness also offers tourists the desirable
convenience of shortest indoor walking paths."

The museum here has galleries around a central atrium; two galleries hold
large exhibition stands that act as obstacles, so intra-gallery distances
are obstructed (paper §III-C1).  The guide answers the classic visitor
questions: "what are the k closest exhibits?", "how do I walk to X?", and it
demonstrates why the door-count model [Li & Lee] misguides.

Run:  python examples/museum_guide.py
"""

from repro import IndoorObject, Point, QueryEngine, Segment, rectangle
from repro.model import IndoorSpaceBuilder, PartitionKind

ATRIUM = 1
GALLERY_EGYPT = 2
GALLERY_GREECE = 3
GALLERY_MODERN = 4
GALLERY_MAPS = 5
CAFE = 6

EXHIBITS = {
    1: ("Rosetta fragment", Point(6, 24)),
    2: ("Sarcophagus", Point(16, 27)),
    3: ("Amphora collection", Point(34, 25)),
    4: ("Bronze athlete", Point(23, 21)),
    5: ("Mobile sculpture", Point(6, 6)),
    6: ("Light installation", Point(15, 3)),
    7: ("Atlas of 1570", Point(33, 5)),
    8: ("Globe room", Point(26, 7)),
}


def build_museum():
    builder = IndoorSpaceBuilder()
    builder.add_partition(
        ATRIUM, rectangle(0, 10, 40, 20), PartitionKind.HALLWAY, name="atrium"
    )
    # North galleries: Egypt (with big stands) and Greece.
    builder.add_partition(
        GALLERY_EGYPT,
        rectangle(0, 20, 20, 30),
        name="Egyptian gallery",
        obstacles=(rectangle(4, 21.5, 16, 23.5), rectangle(8, 25.5, 18, 26.5)),
    )
    builder.add_partition(
        GALLERY_GREECE, rectangle(20, 20, 40, 30), name="Greek gallery"
    )
    # South galleries: modern art and the map room; cafe off the map room.
    builder.add_partition(
        GALLERY_MODERN, rectangle(0, 0, 20, 10), name="modern gallery"
    )
    builder.add_partition(
        GALLERY_MAPS,
        rectangle(20, 0, 40, 10),
        name="map room",
        obstacles=(rectangle(24, 2, 36, 4.5),),
    )
    builder.add_partition(CAFE, rectangle(40, 0, 50, 10), name="cafe")

    builder.add_door(1, Segment(Point(17, 20), Point(19, 20)),
                     connects=(GALLERY_EGYPT, ATRIUM), name="Egypt door")
    builder.add_door(2, Segment(Point(21, 20), Point(23, 20)),
                     connects=(GALLERY_GREECE, ATRIUM), name="Greece door")
    # The arch sits at the far north end of the shared wall, so the
    # one-door route between the galleries is a long detour.
    builder.add_door(3, Segment(Point(20, 28), Point(20, 29.5)),
                     connects=(GALLERY_EGYPT, GALLERY_GREECE),
                     name="connecting arch")
    builder.add_door(4, Segment(Point(9, 10), Point(11, 10)),
                     connects=(GALLERY_MODERN, ATRIUM), name="modern door")
    builder.add_door(5, Segment(Point(29, 10), Point(31, 10)),
                     connects=(GALLERY_MAPS, ATRIUM), name="maps door")
    builder.add_door(6, Segment(Point(40, 4), Point(40, 6)),
                     connects=(GALLERY_MAPS, CAFE), name="cafe door")
    return builder.build()


def main():
    space = build_museum()
    engine = QueryEngine.for_space(space)
    for exhibit_id, (name, position) in EXHIBITS.items():
        engine.add_object(IndoorObject(exhibit_id, position, payload=name))

    visitor = Point(12, 24.5)  # in the Egyptian gallery, between two stands
    host = space.get_host_partition(visitor)
    print("== Museum guide ==")
    print(f"visitor standing in: {host.label}\n")

    print("three nearest exhibits (indoor walking distance, obstructed):")
    for exhibit_id, distance in engine.knn(visitor, k=3):
        print(f"  {engine.get_object(exhibit_id).payload:<20} {distance:6.1f} m")
    print()

    # Walking route to the Atlas of 1570, as turn-by-turn directions.
    from repro.routing import directions

    target_name, target_pos = EXHIBITS[7]
    path = engine.shortest_path(visitor, target_pos)
    print(f"route to '{target_name}': {path.distance:.1f} m")
    for step in directions(space, path):
        print(f"  {step}")
    print()

    # A full visit: plan the shortest tour over every exhibit.
    from repro.routing import plan_tour

    stops = [position for _, position in EXHIBITS.values()]
    names = [name for name, _ in EXHIBITS.values()]
    tour = plan_tour(space, visitor, stops)
    print(f"full tour ({'optimal' if tour.exact else 'heuristic'}): "
          f"{tour.total_distance:.1f} m")
    print("  order: " + " -> ".join(names[i] for i in tour.order) + "\n")

    # Obstructed distance matters: Euclidean line to the Sarcophagus is
    # blocked by an exhibition stand.
    sarcophagus = EXHIBITS[2][1]
    euclidean = visitor.distance_to(sarcophagus)
    walking = engine.distance(visitor, sarcophagus)
    print(f"to the Sarcophagus: straight line {euclidean:.1f} m, "
          f"actual walk {walking:.1f} m (stand in the way)\n")

    # Why door counting misleads: a visitor next to the Egypt door wants
    # the Bronze athlete, just beyond the Greece door.  The fewest-doors
    # route squeezes through the distant connecting arch (1 door); the
    # shortest walk crosses the atrium (2 doors).
    near_door = Point(17, 21)
    athlete = EXHIBITS[4][1]
    walking = engine.distance(near_door, athlete)
    path = engine.shortest_path(near_door, athlete)
    baseline = engine.door_count_distance(near_door, athlete)
    print(f"to the Bronze athlete: true shortest walk {walking:.1f} m "
          f"through {len(path.doors)} doors; the door-count model crosses "
          f"{baseline.doors_crossed} door but walks "
          f"{baseline.walking_distance:.1f} m "
          f"(+{baseline.walking_distance - walking:.1f} m extra)")


if __name__ == "__main__":
    main()
