"""Tests for the D2P / P2D topology mappings, mirroring the paper's §III-A
worked examples on the Figure-1 floor plan."""

import pytest

from repro.exceptions import TopologyError, UnknownEntityError
from repro.model import Topology
from repro.model.figure1 import (
    D1,
    D11,
    D12,
    D13,
    D14,
    D15,
    D21,
    HALLWAY,
    ROOM_12,
    ROOM_13,
    ROOM_20,
    ROOM_21,
    build_figure1,
    build_figure1_subplan,
)


@pytest.fixture(scope="module")
def figure1():
    return build_figure1()


@pytest.fixture(scope="module")
def subplan():
    return build_figure1_subplan()


class TestPaperExamples:
    """Each assertion reproduces a concrete example from §III-A."""

    def test_d2p_of_unidirectional_d12(self, figure1):
        assert figure1.topology.d2p(D12) == frozenset({(ROOM_12, HALLWAY)})

    def test_d2p_of_unidirectional_d15(self, figure1):
        assert figure1.topology.d2p(D15) == frozenset({(ROOM_13, ROOM_12)})

    def test_d2p_of_bidirectional_d21(self, figure1):
        assert figure1.topology.d2p(D21) == frozenset(
            {(ROOM_20, ROOM_21), (ROOM_21, ROOM_20)}
        )

    def test_directionality_predicates(self, figure1):
        topo = figure1.topology
        assert topo.is_unidirectional(D12)
        assert topo.is_unidirectional(D15)
        assert topo.is_bidirectional(D21)
        assert topo.is_bidirectional(D13)

    def test_enterable_and_leaveable_partitions_of_d12(self, figure1):
        topo = figure1.topology
        assert topo.enterable_partitions(D12) == frozenset({HALLWAY})
        assert topo.leaveable_partitions(D12) == frozenset({ROOM_12})

    def test_enterable_and_leaveable_partitions_of_d15(self, figure1):
        topo = figure1.topology
        assert topo.enterable_partitions(D15) == frozenset({ROOM_12})
        assert topo.leaveable_partitions(D15) == frozenset({ROOM_13})

    def test_enterable_and_leaveable_partitions_of_d21(self, figure1):
        topo = figure1.topology
        assert topo.enterable_partitions(D21) == frozenset({ROOM_20, ROOM_21})
        assert topo.leaveable_partitions(D21) == frozenset({ROOM_20, ROOM_21})

    def test_p2d_of_hallway_in_subplan(self, subplan):
        # The paper: P2D⊣(v10) = {d1, d11, d12, d13, d14} and
        # P2D⊢(v10) = {d1, d11, d13, d14} (d12 cannot be used to leave).
        topo = subplan.topology
        assert topo.enterable_doors(HALLWAY) == frozenset({D1, D11, D12, D13, D14})
        assert topo.leaveable_doors(HALLWAY) == frozenset({D1, D11, D13, D14})

    def test_p2d_of_room_12(self, figure1):
        topo = figure1.topology
        assert topo.enterable_doors(ROOM_12) == frozenset({D15})
        assert topo.leaveable_doors(ROOM_12) == frozenset({D12})

    def test_p2d_of_room_13(self, figure1):
        topo = figure1.topology
        assert topo.enterable_doors(ROOM_13) == frozenset({D13})
        assert topo.leaveable_doors(ROOM_13) == frozenset({D13, D15})

    def test_undirected_p2d_is_union(self, figure1):
        topo = figure1.topology
        assert topo.doors_of(ROOM_12) == frozenset({D12, D15})

    def test_touches(self, figure1):
        topo = figure1.topology
        assert topo.touches(D12, ROOM_12)
        assert topo.touches(D12, HALLWAY)
        assert not topo.touches(D12, ROOM_13)

    def test_partitions_of_every_door_has_size_two(self, figure1):
        topo = figure1.topology
        for door_id in topo.door_ids:
            assert len(topo.partitions_of(door_id)) == 2


class TestConstruction:
    def test_self_loop_raises(self):
        topo = Topology()
        topo.add_partition(1)
        with pytest.raises(TopologyError):
            topo.connect(5, 1, 1)

    def test_unknown_partition_raises(self):
        topo = Topology()
        topo.add_partition(1)
        with pytest.raises(UnknownEntityError):
            topo.connect(5, 1, 2)

    def test_door_cannot_connect_three_partitions(self):
        topo = Topology()
        for p in (1, 2, 3):
            topo.add_partition(p)
        topo.connect(5, 1, 2)
        with pytest.raises(TopologyError):
            topo.connect(5, 2, 3)

    def test_incremental_same_pair_is_allowed(self):
        # A door declared one-way twice (both directions) becomes bidirectional.
        topo = Topology()
        topo.add_partition(1)
        topo.add_partition(2)
        topo.connect(5, 1, 2, bidirectional=False)
        assert topo.is_unidirectional(5)
        topo.connect(5, 2, 1, bidirectional=False)
        assert topo.is_bidirectional(5)

    def test_unknown_door_raises(self):
        topo = Topology()
        with pytest.raises(UnknownEntityError):
            topo.d2p(99)

    def test_unknown_partition_query_raises(self):
        topo = Topology()
        with pytest.raises(UnknownEntityError):
            topo.enterable_doors(99)

    def test_validate_passes_on_figure1(self, figure1):
        figure1.topology.validate()

    def test_directed_edges_are_deterministic(self, figure1):
        edges_a = list(figure1.topology.directed_edges())
        edges_b = list(figure1.topology.directed_edges())
        assert edges_a == edges_b
        assert (ROOM_12, HALLWAY, D12) in edges_a
        assert (HALLWAY, ROOM_12, D12) not in edges_a
