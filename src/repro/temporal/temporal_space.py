"""Time-parameterised indoor spaces.

A :class:`TemporalIndoorSpace` answers "what is the indoor distance at time
t?" by materialising a snapshot :class:`~repro.model.builder.IndoorSpace`
containing exactly the doors open at ``t`` (partition entities are shared,
so geometry and visibility caches are reused).  Snapshots are cached by the
open-door set — a day/night schedule yields two graphs, not one per query.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet

from repro.distance.path import IndoorPath
from repro.distance.point_to_point import pt2pt_distance, pt2pt_path
from repro.geometry import Point
from repro.model.builder import IndoorSpace
from repro.model.topology import Topology
from repro.temporal.schedule import DoorSchedule


class TemporalIndoorSpace:
    """An indoor space whose doors follow a :class:`DoorSchedule`."""

    def __init__(self, space: IndoorSpace, schedule: DoorSchedule) -> None:
        self._space = space
        self._schedule = schedule
        self._snapshots: Dict[FrozenSet[int], IndoorSpace] = {}

    @property
    def base_space(self) -> IndoorSpace:
        """The underlying all-doors-open indoor space."""
        return self._space

    @property
    def schedule(self) -> DoorSchedule:
        """The door schedule in force."""
        return self._schedule

    def open_doors(self, t: float) -> FrozenSet[int]:
        """Ids of doors passable at time ``t``."""
        return frozenset(
            door_id
            for door_id in self._space.door_ids
            if self._schedule.is_open(door_id, t)
        )

    def snapshot(self, t: float) -> IndoorSpace:
        """The indoor space as it stands at time ``t`` (cached by open-door
        set).  Every core algorithm and index can be built on the snapshot.
        """
        key = self.open_doors(t)
        cached = self._snapshots.get(key)
        if cached is not None:
            return cached

        topology = Topology()
        partitions = {}
        for partition in self._space.partitions():
            topology.add_partition(partition.partition_id)
            partitions[partition.partition_id] = partition
        doors = {}
        base_topology = self._space.topology
        for door_id in sorted(key):
            doors[door_id] = self._space.door(door_id)
            for from_p, to_p in sorted(base_topology.d2p(door_id)):
                topology.connect(door_id, from_p, to_p, bidirectional=False)
        snapshot = IndoorSpace(partitions, doors, topology)
        self._snapshots[key] = snapshot
        return snapshot

    def distance(self, t: float, source: Point, target: Point) -> float:
        """Minimum walking distance at time ``t`` (``inf`` when closed doors
        sever every route)."""
        return pt2pt_distance(self.snapshot(t), source, target)

    def shortest_path(self, t: float, source: Point, target: Point) -> IndoorPath:
        """Shortest path at time ``t``."""
        return pt2pt_path(self.snapshot(t), source, target)

    def is_reachable(self, t: float, source: Point, target: Point) -> bool:
        """Whether any route exists at time ``t``."""
        return not math.isinf(self.distance(t, source, target))

    @property
    def snapshot_count(self) -> int:
        """How many distinct door regimes have been materialised."""
        return len(self._snapshots)
