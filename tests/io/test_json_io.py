"""Round-trip tests for JSON floor-plan and object persistence."""

import json

import pytest

from repro.exceptions import SerializationError
from repro.geometry import Point
from repro.index import IndoorObject
from repro.io import (
    load_objects,
    load_space,
    objects_from_dict,
    objects_to_dict,
    save_objects,
    save_space,
    space_from_dict,
    space_to_dict,
)
from repro.model.figure1 import D12, D15, D21, P, Q, build_figure1
from repro.distance import pt2pt_distance


@pytest.fixture(scope="module")
def space():
    return build_figure1()


class TestSpaceRoundTrip:
    def test_entities_survive(self, space):
        restored = space_from_dict(space_to_dict(space))
        assert restored.partition_ids == space.partition_ids
        assert restored.door_ids == space.door_ids
        for door_id in space.door_ids:
            assert restored.door(door_id).midpoint == space.door(door_id).midpoint
            assert restored.door(door_id).name == space.door(door_id).name

    def test_topology_survives(self, space):
        restored = space_from_dict(space_to_dict(space))
        for door_id in space.door_ids:
            assert restored.topology.d2p(door_id) == space.topology.d2p(door_id)
        assert restored.topology.is_unidirectional(D12)
        assert restored.topology.is_unidirectional(D15)
        assert restored.topology.is_bidirectional(D21)

    def test_obstacles_survive(self, space):
        restored = space_from_dict(space_to_dict(space))
        room22 = restored.partition(22)
        assert len(room22.obstacles) == 1

    def test_distances_survive(self, space):
        restored = space_from_dict(space_to_dict(space))
        assert pt2pt_distance(restored, P, Q) == pytest.approx(
            pt2pt_distance(space, P, Q)
        )

    def test_staircase_metadata_survives(self):
        from repro.synthetic import BuildingConfig, generate_building

        building = generate_building(BuildingConfig(floors=2, rooms_per_floor=4))
        restored = space_from_dict(space_to_dict(building.space))
        staircase = restored.partition(building.staircase_ids[0])
        assert staircase.stair_length == building.config.stair_length
        assert staircase.floors == (0, 1)

    def test_file_round_trip(self, space, tmp_path):
        path = tmp_path / "plan.json"
        save_space(space, path)
        restored = load_space(path)
        assert restored.num_doors == space.num_doors

    def test_bad_version_raises(self, space):
        data = space_to_dict(space)
        data["format_version"] = 999
        with pytest.raises(SerializationError):
            space_from_dict(data)

    def test_malformed_data_raises(self, space):
        data = space_to_dict(space)
        del data["partitions"][0]["polygon"]
        with pytest.raises(SerializationError):
            space_from_dict(data)

    def test_invalid_json_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_space(path)


class TestObjectsRoundTrip:
    def test_round_trip(self, tmp_path):
        objects = [
            IndoorObject(1, Point(1.5, 5.0), payload="extinguisher"),
            IndoorObject(2, Point(7.0, 8.0, floor=0)),
        ]
        path = tmp_path / "objects.json"
        save_objects(objects, path)
        restored = load_objects(path)
        assert restored == objects

    def test_bad_version_raises(self):
        with pytest.raises(SerializationError):
            objects_from_dict({"format_version": 0, "objects": []})

    def test_malformed_object_raises(self):
        data = objects_to_dict([IndoorObject(1, Point(0, 0))])
        del data["objects"][0]["position"]
        with pytest.raises(SerializationError):
            objects_from_dict(data)
