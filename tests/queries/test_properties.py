"""Property-based tests of query processing on random indoor spaces:
indexed queries must match the brute-force pt2pt oracle on arbitrary plans,
object placements, and parameters."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index import IndexFramework, IndoorObject
from repro.queries import (
    brute_force_knn,
    brute_force_range,
    knn_query,
    range_query,
)
from tests.strategies import build_grid_plan, grid_plans

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def populate(plan, object_count, seed):
    rng = random.Random(seed)
    objects = [
        IndoorObject(i, plan.random_interior_point(rng))
        for i in range(object_count)
    ]
    return IndexFramework.build(plan.space, objects)


@st.composite
def query_scenarios(draw, one_way_probability: float = 0.0):
    plan = draw(grid_plans(one_way_probability=one_way_probability))
    object_count = draw(st.integers(min_value=0, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    framework = populate(plan, object_count, seed)
    rng = random.Random(seed + 1)
    query = plan.random_interior_point(rng)
    return plan, framework, query


class TestRangeProperties:
    @RELAXED
    @given(query_scenarios(), st.floats(min_value=0.0, max_value=60.0))
    def test_matches_brute_force(self, scenario, radius):
        plan, framework, query = scenario
        expected = brute_force_range(
            plan.space, framework.objects, query, radius
        )
        assert range_query(framework, query, radius) == expected

    @RELAXED
    @given(
        query_scenarios(one_way_probability=0.5),
        st.floats(min_value=0.0, max_value=60.0),
    )
    def test_matches_brute_force_with_one_way_doors(self, scenario, radius):
        plan, framework, query = scenario
        expected = brute_force_range(
            plan.space, framework.objects, query, radius
        )
        assert range_query(framework, query, radius) == expected

    @RELAXED
    @given(
        query_scenarios(),
        st.floats(min_value=0.0, max_value=30.0),
        st.floats(min_value=0.0, max_value=30.0),
    )
    def test_monotone_in_radius(self, scenario, r1, r2):
        _, framework, query = scenario
        small, large = sorted((r1, r2))
        assert set(range_query(framework, query, small)) <= set(
            range_query(framework, query, large)
        )

    @RELAXED
    @given(query_scenarios())
    def test_no_index_variant_identical(self, scenario):
        _, framework, query = scenario
        for radius in (5.0, 25.0):
            assert range_query(framework, query, radius, use_index=True) == (
                range_query(framework, query, radius, use_index=False)
            )


class TestKnnProperties:
    @RELAXED
    @given(query_scenarios(), st.integers(min_value=1, max_value=12))
    def test_matches_brute_force_distances(self, scenario, k):
        plan, framework, query = scenario
        expected = brute_force_knn(plan.space, framework.objects, query, k)
        got = knn_query(framework, query, k)
        assert [d for _, d in got] == pytest.approx([d for _, d in expected])

    @RELAXED
    @given(
        query_scenarios(one_way_probability=0.5),
        st.integers(min_value=1, max_value=12),
    )
    def test_matches_brute_force_with_one_way_doors(self, scenario, k):
        plan, framework, query = scenario
        expected = brute_force_knn(plan.space, framework.objects, query, k)
        got = knn_query(framework, query, k)
        assert [d for _, d in got] == pytest.approx([d for _, d in expected])

    @RELAXED
    @given(query_scenarios(), st.integers(min_value=1, max_value=10))
    def test_prefix_property(self, scenario, k):
        """kNN(k) distances are a prefix of kNN(k+1) distances."""
        _, framework, query = scenario
        smaller = [d for _, d in knn_query(framework, query, k)]
        larger = [d for _, d in knn_query(framework, query, k + 1)]
        assert larger[: len(smaller)] == pytest.approx(smaller)

    @RELAXED
    @given(query_scenarios())
    def test_knn_consistent_with_range(self, scenario):
        """Every kNN result is in range of its own distance, and the count
        of closer objects matches."""
        _, framework, query = scenario
        results = knn_query(framework, query, 5)
        for object_id, distance in results:
            in_range = range_query(framework, query, distance + 1e-9)
            assert object_id in in_range


class TestConsistencyUnderMutation:
    def test_queries_track_object_churn(self):
        """Insert / move / remove objects and re-verify against brute force
        after every step (seeded, deterministic)."""
        plan = build_grid_plan(3, 3, seed=42)
        framework = populate(plan, 10, seed=7)
        rng = random.Random(11)
        query = plan.random_interior_point(rng)
        store = framework.objects
        next_id = 100
        for step in range(12):
            action = rng.choice(["add", "move", "remove"])
            if action == "add" or len(store) == 0:
                store.add(IndoorObject(next_id, plan.random_interior_point(rng)))
                next_id += 1
            elif action == "move":
                victim = rng.choice([o.object_id for o in store])
                store.move(victim, plan.random_interior_point(rng))
            else:
                victim = rng.choice([o.object_id for o in store])
                store.remove(victim)
            assert range_query(framework, query, 20.0) == brute_force_range(
                plan.space, store, query, 20.0
            ), f"diverged at step {step} after {action}"
            got = [d for _, d in knn_query(framework, query, 3)]
            expected = [
                d for _, d in brute_force_knn(plan.space, store, query, 3)
            ]
            assert got == pytest.approx(expected)
