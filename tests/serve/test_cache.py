"""EpochLRUCache: hits, LRU eviction, and epoch invalidation."""

import pytest

from repro.serve import EpochLRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = EpochLRUCache(capacity=4)
        assert cache.get("a", epoch=0) is None
        cache.put("a", epoch=0, value=[1, 2])
        assert cache.get("a", epoch=0) == [1, 2]

    def test_default_on_miss(self):
        cache = EpochLRUCache(capacity=4)
        assert cache.get("nope", epoch=0, default="fallback") == "fallback"

    def test_put_overwrites(self):
        cache = EpochLRUCache(capacity=4)
        cache.put("a", 0, "old")
        cache.put("a", 0, "new")
        assert cache.get("a", 0) == "new"
        assert len(cache) == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            EpochLRUCache(capacity=-1)

    def test_zero_capacity_disables(self):
        cache = EpochLRUCache(capacity=0)
        cache.put("a", 0, "x")
        assert cache.get("a", 0) is None
        assert len(cache) == 0


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = EpochLRUCache(capacity=2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.get("a", 0) == 1  # refresh a
        cache.put("c", 0, 3)  # evicts b
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) == 1
        assert cache.get("c", 0) == 3
        assert cache.stats()["evictions"] == 1

    def test_capacity_bound_holds(self):
        cache = EpochLRUCache(capacity=3)
        for i in range(10):
            cache.put(i, 0, i)
        assert len(cache) == 3


class TestEpochInvalidation:
    def test_stale_epoch_misses_and_drops(self):
        cache = EpochLRUCache(capacity=4)
        cache.put("a", epoch=0, value="old answer")
        assert cache.get("a", epoch=1) is None  # topology moved
        assert len(cache) == 0  # dropped, not kept
        assert cache.stats()["invalidations"] == 1

    def test_new_epoch_value_replaces(self):
        cache = EpochLRUCache(capacity=4)
        cache.put("a", 0, "old")
        cache.put("a", 1, "new")
        assert cache.get("a", 1) == "new"
        assert cache.get("a", 0) is None  # and the old epoch is gone

    def test_contains_is_epoch_exact(self):
        cache = EpochLRUCache(capacity=4)
        cache.put("a", 0, "x")
        assert cache.contains("a", 0)
        assert not cache.contains("a", 1)

    def test_purge_stale_drops_only_old_epochs(self):
        cache = EpochLRUCache(capacity=8)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        cache.put("c", 1, 3)
        assert cache.purge_stale(epoch=1) == 2
        assert len(cache) == 1
        assert cache.get("c", 1) == 3


class TestStats:
    def test_hit_rate(self):
        cache = EpochLRUCache(capacity=4)
        cache.put("a", 0, 1)
        cache.get("a", 0)
        cache.get("a", 0)
        cache.get("b", 0)
        assert cache.hit_rate == pytest.approx(2 / 3)
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_clear_keeps_stats(self):
        cache = EpochLRUCache(capacity=4)
        cache.put("a", 0, 1)
        cache.get("a", 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1
