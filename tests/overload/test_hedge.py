"""HedgePolicy delay-derivation tests."""

import pytest

from repro.overload import HedgePolicy
from repro.serve.metrics import LatencyHistogram


def warm_histogram(values_ms):
    histogram = LatencyHistogram("probe_ms")
    for value in values_ms:
        histogram.observe(value)
    return histogram


class TestDelay:
    def test_fixed_delay_overrides_everything(self):
        policy = HedgePolicy(fixed_delay_s=0.0)
        probes = warm_histogram([100.0] * 32)
        assert policy.delay_s(probes, deadline_s=5.0) == 0.0

    def test_warm_histogram_uses_percentile_times_multiplier(self):
        # 100 samples 1..100 ms: p95 is 95 ms; x1.5 -> 142.5 ms.
        policy = HedgePolicy(multiplier=1.5, min_samples=16)
        probes = warm_histogram([float(i) for i in range(1, 101)])
        assert policy.delay_s(probes, deadline_s=10.0) == pytest.approx(
            0.1425, rel=1e-3
        )

    def test_cold_histogram_uses_deadline_fraction(self):
        policy = HedgePolicy(min_samples=16, default_fraction=0.5)
        probes = warm_histogram([10.0] * 4)  # below min_samples
        assert policy.delay_s(probes, deadline_s=2.0) == pytest.approx(1.0)

    def test_missing_histogram_uses_deadline_fraction(self):
        policy = HedgePolicy(default_fraction=0.25)
        assert policy.delay_s(None, deadline_s=4.0) == pytest.approx(1.0)

    def test_min_delay_floors_fast_probes(self):
        policy = HedgePolicy(min_delay_s=0.002)
        probes = warm_histogram([0.1] * 32)  # p95 x1.5 ~ 0.15 ms
        assert policy.delay_s(probes, deadline_s=1.0) == 0.002

    def test_max_delay_caps_slow_probes(self):
        policy = HedgePolicy(max_delay_s=0.05)
        probes = warm_histogram([1_000.0] * 32)
        assert policy.delay_s(probes, deadline_s=10.0) == 0.05


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HedgePolicy(quantile=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(quantile=101.0)
        with pytest.raises(ValueError):
            HedgePolicy(multiplier=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay_s=-0.001)
        with pytest.raises(ValueError):
            HedgePolicy(default_fraction=0.0)

    def test_is_frozen(self):
        policy = HedgePolicy()
        with pytest.raises(AttributeError):
            policy.multiplier = 2.0
