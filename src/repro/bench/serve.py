"""Closed-loop serving benchmark: ``python -m repro serve-bench``.

Measures what the :mod:`repro.serve` layer buys over the paper's
one-query-at-a-time model.  A seeded workload of range / kNN / pt2pt
requests with zipf-ish position repetition (real indoor services see hot
spots: lobbies, gates, food courts) is answered twice:

* **naive** — a sequential loop over :class:`~repro.queries.engine.
  QueryEngine`, one full index walk per request (the paper's model);
* **service** — a :class:`~repro.serve.service.QueryService` with the
  epoch-keyed cache and shared-work batching enabled.

Both runs must produce identical answers (the ``mismatches`` field in the
result is asserted to be 0 by the test suite); the interesting outputs
are throughput, speedup, cache hit-rate, and latency percentiles.

Scale is selected through ``REPRO_BENCH_SCALE`` like the figure harness:
``quick`` (default, seconds) or ``paper`` (a larger building and
workload).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.index.framework import IndexFramework
from repro.queries.engine import QueryEngine
from repro.serve.requests import QueryKind, QueryRequest
from repro.serve.service import QueryService
from repro.synthetic import (
    BuildingConfig,
    SyntheticBuilding,
    build_object_store,
    generate_building,
    random_positions,
)


@dataclass(frozen=True)
class ServeScale:
    """Workload shape for one serving-benchmark scale.

    Attributes:
        name: scale label echoed into the result.
        floors: synthetic building height.
        objects: indoor objects populating the store.
        distinct_positions: size of the position pool requests draw from
            (zipf-ish: position ``i`` is drawn with weight ``1/(i+1)``).
        total_requests: workload length.
        workers: service worker threads.
        max_batch: most requests one worker drains per round.
        knn_k: ``k`` for the kNN requests.
        range_radius: radius (metres) for the range requests.
    """

    name: str
    floors: int
    objects: int
    distinct_positions: int
    total_requests: int
    workers: int
    max_batch: int
    knn_k: int
    range_radius: float


SERVE_QUICK = ServeScale(
    name="quick",
    floors=5,
    objects=1_000,
    distinct_positions=48,
    total_requests=480,
    workers=4,
    max_batch=16,
    knn_k=10,
    range_radius=25.0,
)

SERVE_PAPER = ServeScale(
    name="paper",
    floors=10,
    objects=10_000,
    distinct_positions=200,
    total_requests=4_000,
    workers=4,
    max_batch=32,
    knn_k=50,
    range_radius=30.0,
)


def current_serve_scale() -> ServeScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
    if name == "paper":
        return SERVE_PAPER
    return SERVE_QUICK


def build_serve_workload(
    building: SyntheticBuilding, scale: ServeScale, seed: int = 0
) -> List[QueryRequest]:
    """A deterministic request stream with zipf-ish position repetition.

    Positions come from a pool of ``scale.distinct_positions`` random
    indoor positions; request ``i`` draws its position with weight
    ``1/(rank+1)`` so a few hot positions dominate (what gives a cache a
    fair, realistic shot).  Kinds are mixed 40% range / 40% kNN /
    20% pt2pt; pt2pt targets are drawn from the same pool.
    """
    pool = random_positions(building, scale.distinct_positions, seed=seed)
    rng = random.Random(seed + 1)
    ranks = list(range(len(pool)))
    weights = [1.0 / (rank + 1) for rank in ranks]
    requests: List[QueryRequest] = []
    for _ in range(scale.total_requests):
        (index,) = rng.choices(ranks, weights=weights, k=1)
        position = pool[index]
        roll = rng.random()
        if roll < 0.4:
            requests.append(QueryRequest.range_query(position, scale.range_radius))
        elif roll < 0.8:
            requests.append(QueryRequest.knn(position, k=scale.knn_k))
        else:
            (target_index,) = rng.choices(ranks, weights=weights, k=1)
            requests.append(QueryRequest.pt2pt(position, pool[target_index]))
    return requests


def _answer_naive(engine: QueryEngine, request: QueryRequest) -> Any:
    """One request through the paper's sequential query surface."""
    if request.kind is QueryKind.RANGE:
        return engine.range_query(request.position, request.radius)
    if request.kind is QueryKind.KNN:
        return engine.knn(request.position, k=request.k)
    return engine.distance(request.position, request.target)


def measure_serve(
    scale: Optional[ServeScale] = None, seed: int = 0
) -> Dict[str, Any]:
    """Run the serving benchmark; returns one JSON-ready result dict.

    The dict carries the workload shape, wall time and throughput for
    both runs, the speedup, the service's cache / counter / latency
    snapshot, and ``mismatches`` — how many service answers differed
    from the naive sequential answers (must be 0: batching and caching
    are exactness-preserving).
    """
    scale = scale or current_serve_scale()
    building = generate_building(BuildingConfig(floors=scale.floors))
    building.space.distance_graph.precompute()
    store = build_object_store(building, scale.objects, seed=seed)
    framework = IndexFramework.build(building.space).with_objects(store)
    engine = QueryEngine(framework)
    requests = build_serve_workload(building, scale, seed=seed)
    mix = {
        kind.value: sum(1 for r in requests if r.kind is kind)
        for kind in QueryKind
    }

    start = time.perf_counter()
    naive_values = [_answer_naive(engine, request) for request in requests]
    naive_wall_s = time.perf_counter() - start

    service = QueryService(
        engine,
        workers=scale.workers,
        max_batch=scale.max_batch,
        queue_capacity=2 * scale.total_requests,  # never shed: exact answers
        cache_capacity=4 * scale.distinct_positions,
    )
    with service:
        start = time.perf_counter()
        responses = service.serve(requests)
        serve_wall_s = time.perf_counter() - start
    snapshot = service.metrics_snapshot()

    mismatches = sum(
        1
        for response, expected in zip(responses, naive_values)
        if response.value != expected
    )

    naive_qps = len(requests) / naive_wall_s if naive_wall_s else 0.0
    serve_qps = len(requests) / serve_wall_s if serve_wall_s else 0.0
    return {
        "scale": scale.name,
        "seed": seed,
        "floors": scale.floors,
        "objects": scale.objects,
        "requests": len(requests),
        "distinct_positions": scale.distinct_positions,
        "mix": mix,
        "naive": {"wall_s": naive_wall_s, "qps": naive_qps},
        "service": {
            "wall_s": serve_wall_s,
            "qps": serve_qps,
            "workers": scale.workers,
            "max_batch": scale.max_batch,
        },
        "speedup": serve_qps / naive_qps if naive_qps else 0.0,
        "mismatches": mismatches,
        "cache": snapshot["cache"],
        "counters": snapshot["counters"],
        "latency": snapshot["latency"],
    }


def render_serve_summary(result: Dict[str, Any]) -> str:
    """A short plain-text summary of one :func:`measure_serve` result."""
    lines = [
        f"serve-bench  scale={result['scale']}  seed={result['seed']}",
        f"  workload: {result['requests']} requests over "
        f"{result['distinct_positions']} positions "
        f"(mix {result['mix']})",
        f"  naive:    {result['naive']['qps']:.1f} qps "
        f"({result['naive']['wall_s']:.3f} s)",
        f"  service:  {result['service']['qps']:.1f} qps "
        f"({result['service']['wall_s']:.3f} s, "
        f"{result['service']['workers']} workers)",
        f"  speedup:  {result['speedup']:.2f}x   "
        f"cache hit-rate: {result['cache']['hit_rate']:.1%}   "
        f"mismatches: {result['mismatches']}",
    ]
    latency = result["latency"].get("serve.latency_ms")
    if latency:
        lines.append(
            f"  latency:  p50 {latency['p50_ms']:.2f} ms   "
            f"p95 {latency['p95_ms']:.2f} ms   "
            f"p99 {latency['p99_ms']:.2f} ms"
        )
    return "\n".join(lines)
