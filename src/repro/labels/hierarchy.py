"""Independent-set vertex hierarchy over the door graph (IS-LABEL style).

Following IS-LABEL (Fu et al., arXiv:1211.2367), the hierarchy is built by
repeatedly *peeling* an independent set of low-degree vertices off the
(undirected skeleton of the) door graph.  When a vertex is removed, its
surviving neighbours are pairwise connected by shortcut edges so that
later levels still see every routing relationship that passed through the
removed vertex.  Vertices peeled early sit at the **bottom** of the
hierarchy (level 0); the dense residual core peeled last sits at the top.

The hierarchy serves two consumers:

* :mod:`repro.labels.builder` processes hubs top-of-hierarchy first — the
  order that makes pruned 2-hop labeling produce small labels, because
  central vertices cover many shortest paths (TopCom, arXiv:1602.01537,
  makes the same argument for directed topological orders).
* :mod:`repro.labels.repair` uses levels to report the affected hierarchy
  cone of a topology mutation.

Everything here is deterministic: ties break on ascending door id, and no
randomness or wall-clock is consulted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

#: Vertices whose *current* degree exceeds this are kept out of the peeled
#: independent sets when lower-degree vertices exist (removing them would
#: quadratically fill the skeleton with shortcut edges).  The threshold is
#: adaptive: the minimum alive degree always qualifies, so peeling makes
#: progress even on the clique-like door graphs hallway partitions induce
#: (every door pair of a partition is directly connected, so degrees start
#: at the partition's door count).
MAX_PEEL_DEGREE = 16

#: Hard ceiling on peeling rounds; anything still standing afterwards is
#: assigned to the final level.  Door graphs peel out in far fewer rounds.
MAX_LEVELS = 64


@dataclass(frozen=True)
class VertexHierarchy:
    """Levels and the derived hub-processing order for one door graph.

    Attributes:
        door_ids: ascending door ids (matrix-index order, shared with every
            other index structure).
        levels: ``levels[i]`` is the peel level of ``door_ids[i]``; higher
            means more central.
        order: matrix indices in hub-processing order — descending level,
            then descending original degree, then ascending door id.
    """

    door_ids: Tuple[int, ...]
    levels: np.ndarray
    order: np.ndarray

    @property
    def height(self) -> int:
        """Number of distinct levels."""
        return int(self.levels.max()) + 1 if len(self.levels) else 0

    def rank_of(self) -> np.ndarray:
        """``rank[i]`` = position of vertex ``i`` in the processing order
        (0 = most central, processed first)."""
        rank = np.empty(len(self.order), dtype=np.int64)
        rank[self.order] = np.arange(len(self.order), dtype=np.int64)
        return rank


def _undirected_skeleton(
    n: int, edges: Sequence[Tuple[int, int, float]], index: Dict[int, int]
) -> List[Set[int]]:
    """Adjacency sets of the undirected door-graph skeleton (weights and
    directions dropped — the hierarchy only needs connectivity shape)."""
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for from_door, to_door, _ in edges:
        i, j = index[from_door], index[to_door]
        if i != j:
            adjacency[i].add(j)
            adjacency[j].add(i)
    return adjacency


def build_hierarchy(
    door_ids: Sequence[int], edges: Sequence[Tuple[int, int, float]]
) -> VertexHierarchy:
    """Peel independent sets off the door graph to produce the hierarchy.

    Args:
        door_ids: ascending door ids (row order of every distance backend).
        edges: directed ``(from_door, to_door, weight)`` triples, e.g. from
            :func:`repro.distance.matrix._door_graph_edges`.
    """
    ids = tuple(door_ids)
    n = len(ids)
    index = {door_id: i for i, door_id in enumerate(ids)}
    adjacency = _undirected_skeleton(n, edges, index)
    original_degree = np.array(
        [len(adjacency[i]) for i in range(n)], dtype=np.int64
    )

    levels = np.full(n, -1, dtype=np.int64)
    alive: Set[int] = set(range(n))
    level = 0
    while alive and level < MAX_LEVELS:
        # Candidates in deterministic min-degree-first order; vertices whose
        # current degree is too high are deferred to keep shortcut fill-in
        # bounded (standard IS-LABEL practice for dense residues), but the
        # minimum alive degree always qualifies so every round peels.
        min_degree = min(len(adjacency[v]) for v in alive)
        threshold = max(MAX_PEEL_DEGREE, min_degree)
        candidates = sorted(
            (v for v in alive if len(adjacency[v]) <= threshold),
            key=lambda v: (len(adjacency[v]), ids[v]),
        )
        picked: List[int] = []
        blocked: Set[int] = set()
        for v in candidates:
            if v in blocked:
                continue
            picked.append(v)
            blocked.add(v)
            blocked.update(adjacency[v])
        for v in picked:
            levels[v] = level
            neighbours = adjacency[v]
            # Shortcut the removed vertex: its neighbours become a clique in
            # the residual skeleton, preserving through-routing structure.
            for a in neighbours:
                adjacency[a].discard(v)
                adjacency[a].update(b for b in neighbours if b != a)
            adjacency[v] = set()
            alive.discard(v)
        level += 1
    # Residual core (or anything beyond MAX_LEVELS): topmost level together.
    if alive:
        for v in alive:
            levels[v] = level
        level += 1

    order = np.array(
        sorted(
            range(n),
            key=lambda v: (-int(levels[v]), -int(original_degree[v]), ids[v]),
        ),
        dtype=np.int64,
    )
    return VertexHierarchy(door_ids=ids, levels=levels, order=order)


def affected_cone(
    hierarchy: VertexHierarchy, seed_indices: Sequence[int]
) -> np.ndarray:
    """Matrix indices whose hierarchy position is at or above any seed —
    the label entries a topology mutation at the seeds can invalidate.

    Used by :mod:`repro.labels.repair` to size an incremental patch before
    deciding between in-place repair and the full-rebuild fallback.
    """
    if len(seed_indices) == 0:
        return np.empty(0, dtype=np.int64)
    floor = int(hierarchy.levels[np.asarray(seed_indices, dtype=np.int64)].min())
    return np.flatnonzero(hierarchy.levels >= floor).astype(np.int64)
