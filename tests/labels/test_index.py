"""LabeledDistanceIndex: bit-identity with the dense matrix backend."""

import math

import numpy as np
import pytest

from repro.exceptions import UnknownEntityError
from repro.index.backend import DistanceBackend, validate_backend


class TestBitIdentity:
    def test_all_pairs_bitwise_equal(self, building_pair):
        labels, dense = building_pair
        ids = dense.distance_index.door_ids
        for u in ids:
            for v in ids:
                assert labels.distance_index.distance(
                    u, v
                ) == dense.distance_index.distance(u, v)

    def test_scan_order_identical(self, building_pair):
        """doors_by_distance must replay the dense M_idx scan exactly —
        Algorithms 2-6 depend on the order, not just the values."""
        labels, dense = building_pair
        for u in dense.distance_index.door_ids:
            assert list(labels.distance_index.doors_by_distance(u)) == list(
                dense.distance_index.doors_by_distance(u)
            )

    def test_scan_respects_max_distance(self, building_pair):
        labels, dense = building_pair
        u = dense.distance_index.door_ids[0]
        assert list(
            labels.distance_index.doors_by_distance(u, max_distance=12.0)
        ) == list(dense.distance_index.doors_by_distance(u, max_distance=12.0))

    def test_unsorted_scan_identical(self, building_pair):
        labels, dense = building_pair
        u = dense.distance_index.door_ids[-1]
        assert list(labels.distance_index.doors_unsorted(u)) == list(
            dense.distance_index.doors_unsorted(u)
        )

    def test_nearest_doors_identical(self, building_pair):
        labels, dense = building_pair
        for u in dense.distance_index.door_ids[:8]:
            assert labels.distance_index.nearest_doors(
                u, 5
            ) == dense.distance_index.nearest_doors(u, 5)

    def test_min_distance_between_identical(self, building_pair):
        labels, dense = building_pair
        ids = dense.distance_index.door_ids
        front, back = list(ids[:3]), list(ids[-3:])
        assert labels.distance_index.min_distance_between(
            front, back
        ) == dense.distance_index.min_distance_between(front, back)

    def test_figure1_directed_asymmetry_preserved(self, figure1_pair):
        """Figure 1 contains a one-way door, so d(u,v) != d(v,u) for some
        pair; the labeling must reproduce the asymmetry, not smooth it."""
        labels, dense = figure1_pair
        ids = dense.distance_index.door_ids
        asymmetric = [
            (u, v)
            for u in ids
            for v in ids
            if dense.distance_index.distance(u, v)
            != dense.distance_index.distance(v, u)
        ]
        assert asymmetric
        for u, v in asymmetric:
            assert labels.distance_index.distance(
                u, v
            ) == dense.distance_index.distance(u, v)


class TestBackendSurface:
    def test_satisfies_the_protocol(self, building_pair):
        labels, dense = building_pair
        assert isinstance(labels.distance_index, DistanceBackend)
        assert isinstance(dense.distance_index, DistanceBackend)
        assert labels.distance_index.kind == "labels"
        assert dense.distance_index.kind == "matrix"

    def test_validate_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown distance backend"):
            validate_backend("btree")

    def test_unknown_door_raises(self, building_pair):
        labels, _ = building_pair
        with pytest.raises(UnknownEntityError):
            labels.distance_index.distance(999_999, 1)
        with pytest.raises(UnknownEntityError):
            labels.distance_index.min_distance_between([999_999], [1])

    def test_self_distance_is_zero(self, building_pair):
        labels, _ = building_pair
        for u in labels.distance_index.door_ids:
            assert labels.distance_index.distance(u, u) == 0.0

    def test_empty_set_bound_is_inf(self, building_pair):
        labels, _ = building_pair
        u = labels.distance_index.door_ids[0]
        assert math.isinf(labels.distance_index.min_distance_between([], [u]))
        assert math.isinf(labels.distance_index.min_distance_between([u], []))


class TestAccounting:
    def test_memory_report_components(self, building_pair):
        labels, dense = building_pair
        report = labels.distance_index.memory_report()
        assert report["labels_bytes"] > 0
        assert report["hierarchy_bytes"] > 0
        assert report["label_entries"] > 0
        assert report["patch_hubs"] == 0
        assert labels.distance_index.memory_bytes() >= report["labels_bytes"]

    def test_labels_beat_the_matrix_even_here(self, building_pair):
        """Already at ~34 doors the labeling should not be catastrophically
        larger; the campus-scale win is benchmarked, not unit-tested."""
        labels, dense = building_pair
        assert labels.distance_index.memory_bytes() < 20 * (
            dense.distance_index.memory_bytes()
        )

    def test_self_check_clean(self, building_pair):
        labels, _ = building_pair
        assert labels.distance_index.self_check() == []

    def test_self_check_catches_nan(self, figure1_pair):
        labels, _ = figure1_pair
        index = labels.distance_index
        dists = index.labeling.out_dists
        finite = np.flatnonzero(np.isfinite(dists))
        keep = float(dists[finite[0]])
        dists[finite[0]] = np.nan
        try:
            assert any(
                "NaN" in issue for issue in index.self_check()
            )
        finally:
            dists[finite[0]] = keep

    def test_drop_row_cache(self, figure1_pair):
        labels, _ = figure1_pair
        index = labels.distance_index
        u = index.door_ids[0]
        list(index.doors_by_distance(u))
        assert index.memory_report()["row_cache_bytes"] > 0
        index.drop_row_cache()
        assert index.memory_report()["row_cache_bytes"] == 0
