"""Tests for door schedules."""

import pytest

from repro.exceptions import ModelError
from repro.temporal import DoorSchedule, TimeInterval


class TestTimeInterval:
    def test_half_open_semantics(self):
        interval = TimeInterval(8.0, 18.0)
        assert interval.contains(8.0)
        assert interval.contains(17.999)
        assert not interval.contains(18.0)
        assert not interval.contains(7.999)

    def test_degenerate_interval_raises(self):
        with pytest.raises(ModelError):
            TimeInterval(5.0, 5.0)
        with pytest.raises(ModelError):
            TimeInterval(6.0, 5.0)

    def test_overlaps(self):
        a = TimeInterval(0, 10)
        assert a.overlaps(TimeInterval(5, 15))
        assert not a.overlaps(TimeInterval(10, 20))  # half-open: touching is ok
        assert not a.overlaps(TimeInterval(20, 30))

    def test_ordering(self):
        assert TimeInterval(1, 2) < TimeInterval(3, 4)


class TestDoorSchedule:
    def test_unrestricted_door_is_always_open(self):
        schedule = DoorSchedule()
        assert schedule.is_open(13, 0.0)
        assert schedule.is_open(13, 1e9)

    def test_office_hours(self):
        schedule = DoorSchedule()
        schedule.set_open(13, [TimeInterval(8, 18)])
        assert not schedule.is_open(13, 7)
        assert schedule.is_open(13, 12)
        assert not schedule.is_open(13, 20)

    def test_multiple_intervals(self):
        schedule = DoorSchedule()
        schedule.set_open(13, [TimeInterval(8, 12), TimeInterval(13, 18)])
        assert schedule.is_open(13, 9)
        assert not schedule.is_open(13, 12.5)  # lunch lockdown
        assert schedule.is_open(13, 14)

    def test_overlapping_intervals_raise(self):
        schedule = DoorSchedule()
        with pytest.raises(ModelError):
            schedule.set_open(13, [TimeInterval(8, 12), TimeInterval(11, 18)])

    def test_sealed_door(self):
        schedule = DoorSchedule()
        schedule.set_closed(13)
        assert not schedule.is_open(13, 12)
        assert schedule.intervals_of(13) == ()

    def test_reopening(self):
        schedule = DoorSchedule()
        schedule.set_closed(13)
        schedule.set_always_open(13)
        assert schedule.is_open(13, 12)
        with pytest.raises(ModelError):
            schedule.intervals_of(13)

    def test_restricted_doors_listing(self):
        schedule = DoorSchedule()
        schedule.set_closed(13)
        schedule.set_open(1, [TimeInterval(0, 1)])
        assert schedule.restricted_doors() == (1, 13)
