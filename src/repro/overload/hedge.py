"""Hedged-request policy: when to re-issue a straggling shard probe.

A scatter-gather answer is as slow as its slowest shard, and under
faults that slowest shard is often a restarting worker that will never
answer inside the deadline.  Hedging re-issues the probe after a delay
derived from observed probe latency — the p95 by default, so only the
slowest ~5% of probes ever pay for a duplicate — and takes whichever
answer lands first.  Because the duplicate goes to the *same* shard
(same objects, same index, same epoch), either answer merges
bit-identically; hedging changes tail latency, never results.

:class:`HedgePolicy` is a frozen value object: it computes the delay,
the router supplies the latency source and spends the retry budget.
``fixed_delay_s`` pins the delay for tests and deterministic chaos
campaigns; ``quantile``/``multiplier`` drive the adaptive path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serve.metrics import LatencyHistogram


@dataclass(frozen=True)
class HedgePolicy:
    """When to hedge a shard probe.

    Attributes:
        quantile: latency percentile the delay tracks (95.0 → p95).
        multiplier: slack over the tracked percentile before hedging.
        min_delay_s: floor — never hedge faster than this (guards
            against a cold histogram full of sub-millisecond probes).
        max_delay_s: optional ceiling; the router additionally clamps to
            its own remaining deadline.
        min_samples: observations required before the percentile is
            trusted; below this, ``default_fraction`` of the deadline is
            used instead.
        default_fraction: cold-start delay as a fraction of the
            caller-supplied deadline.
        fixed_delay_s: when set, overrides everything — the delay is
            this constant (0.0 hedges every probe still pending at
            gather time; useful in tests).
    """

    quantile: float = 95.0
    multiplier: float = 1.5
    min_delay_s: float = 0.002
    max_delay_s: Optional[float] = None
    min_samples: int = 16
    default_fraction: float = 0.5
    fixed_delay_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 100.0:
            raise ValueError("quantile must be in (0, 100]")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if self.min_delay_s < 0:
            raise ValueError("min_delay_s must be non-negative")
        if not 0.0 < self.default_fraction <= 1.0:
            raise ValueError("default_fraction must be in (0, 1]")

    def delay_s(
        self, probes: Optional[LatencyHistogram], deadline_s: float
    ) -> float:
        """Seconds to wait before hedging one probe.

        ``probes`` is the router's observed per-probe latency histogram
        (may be None or cold); ``deadline_s`` is the full per-scatter
        deadline the delay must stay inside.
        """
        if self.fixed_delay_s is not None:
            return self.fixed_delay_s
        if probes is not None and probes.count >= self.min_samples:
            delay = (probes.percentile(self.quantile) / 1000.0) * (
                self.multiplier
            )
        else:
            delay = deadline_s * self.default_fraction
        if self.max_delay_s is not None:
            delay = min(delay, self.max_delay_s)
        return max(self.min_delay_s, delay)
