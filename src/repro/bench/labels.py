"""Labels-backend benchmark: ``python -m repro labels-bench``.

Measures what the 2-hop labeling backend (:mod:`repro.labels`) buys over
the paper's dense M_d2d/M_idx pair as the door graph grows past the
single-building scale of §VI.  For one scale the harness:

* generates the space — the §VI-A building at small scales, the
  :mod:`repro.synthetic.campus` composite at campus scale;
* builds the **labels** framework and, where feasible, the **dense**
  framework, recording build wall time and resident bytes from
  ``memory_report()``;
* at campus scale the dense matrices are *not* materialised (two N×N
  float64/int64 arrays are gigabytes at 13k+ doors — that infeasibility
  is the point of the backend); their footprint is reported analytically
  as ``N² × 16`` with ``"built": false``;
* samples seeded door pairs and counts **bitwise** deviations of the
  labels answer from the canonical reference — the dense matrix where it
  was built, fresh per-source Dijkstra rows (the same
  :func:`scipy.sparse.csgraph.dijkstra` recipe the matrix builder folds)
  where it was not;
* times point ``distance()`` queries over those pairs for both backends.

The headline outputs are ``bytes_ratio`` (dense resident bytes over
labels resident bytes — >1 means the labeling is smaller) and
``mismatches`` (asserted 0: the backend is exact or it is wrong).
``repro bench --gate`` regression-guards both through the committed
``BENCH_labels.json`` (see :mod:`repro.bench.gate`: the gate replays the
artifact's affordable ``quick`` section, while the committed campus
section stands as the at-scale evidence).

Scale is selected through ``REPRO_BENCH_SCALE`` like every other
harness: ``quick`` (default, seconds), ``paper`` (the paper's ~1 300-door
building), or ``campus`` (a ten-building composite, ~10x paper).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.index.framework import IndexFramework
from repro.labels.builder import door_graph_csr
from repro.synthetic import (
    BuildingConfig,
    CampusConfig,
    generate_building,
    generate_campus,
)

#: Analytic resident bytes per matrix cell when the dense backend is not
#: materialised: 8 (M_d2d float64) + 8 (M_idx int64 ordering as stored).
DENSE_BYTES_PER_CELL = 16


@dataclass(frozen=True)
class LabelsScale:
    """Workload shape for one labels-benchmark scale.

    Attributes:
        name: scale label echoed into the result.
        buildings: §VI-A buildings to compose (1 = plain building, no
            campus joins).
        floors: per-building height.
        skybridges_per_gap: upper-floor joins per adjacent building pair
            (campus scales only).
        sample_pairs: seeded door pairs checked for bitwise agreement and
            timed for point-query latency.
        query_reps: timing repetitions over the sampled pairs.
        build_dense: whether the dense framework is actually built; when
            False its footprint is the ``N² × 16`` analytic figure and
            the bitwise reference comes from fresh Dijkstra rows.
    """

    name: str
    buildings: int
    floors: int
    skybridges_per_gap: int
    sample_pairs: int
    query_reps: int
    build_dense: bool


LABELS_QUICK = LabelsScale(
    name="quick",
    buildings=1,
    floors=5,
    skybridges_per_gap=0,
    sample_pairs=400,
    query_reps=5,
    build_dense=True,
)

LABELS_PAPER = LabelsScale(
    name="paper",
    buildings=1,
    floors=40,
    skybridges_per_gap=0,
    sample_pairs=600,
    query_reps=5,
    build_dense=True,
)

LABELS_CAMPUS = LabelsScale(
    name="campus",
    buildings=10,
    floors=40,
    skybridges_per_gap=2,
    sample_pairs=400,
    query_reps=3,
    build_dense=False,
)

_SCALES = {scale.name: scale for scale in (LABELS_QUICK, LABELS_PAPER, LABELS_CAMPUS)}


def current_labels_scale() -> LabelsScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
    return _SCALES.get(name, LABELS_QUICK)


def _generate_space(scale: LabelsScale, seed: int):
    """The benchmark space for one scale (building or campus composite)."""
    building = BuildingConfig(floors=scale.floors)
    if scale.buildings == 1:
        return generate_building(building).space
    campus = generate_campus(CampusConfig(
        buildings=scale.buildings,
        building=building,
        skybridges_per_gap=scale.skybridges_per_gap,
        seed=seed,
    ))
    return campus.space


def _sample_pairs(
    door_ids: Tuple[int, ...], count: int, seed: int
) -> List[Tuple[int, int]]:
    """Seeded (source, target) door-id pairs, self-pairs included."""
    rng = random.Random(seed)
    return [
        (rng.choice(door_ids), rng.choice(door_ids)) for _ in range(count)
    ]


def _canonical_reference(
    space, pairs: List[Tuple[int, int]]
) -> Dict[Tuple[int, int], float]:
    """Exact distances for ``pairs`` from fresh per-source Dijkstra rows —
    the same assembly and fold the dense matrix builder uses, so the
    values are canonical down to the last bit."""
    from repro.distance.matrix import _door_graph_edges

    graph = space.distance_graph
    graph.precompute()
    door_ids = tuple(space.topology.door_ids)
    index_of = {door_id: i for i, door_id in enumerate(door_ids)}
    adjacency = door_graph_csr(door_ids, _door_graph_edges(graph))
    sources = sorted({index_of[u] for u, _ in pairs})
    rows = np.atleast_2d(dijkstra(adjacency, directed=True, indices=sources))
    row_of = {u: rows[k] for k, u in enumerate(sources)}
    reference: Dict[Tuple[int, int], float] = {}
    for u_id, v_id in pairs:
        u, v = index_of[u_id], index_of[v_id]
        reference[(u_id, v_id)] = 0.0 if u == v else float(row_of[u][v])
    return reference


def _time_queries(
    index, pairs: List[Tuple[int, int]], reps: int
) -> float:
    """Mean microseconds per ``distance()`` call over ``pairs``."""
    start = time.perf_counter()
    for _ in range(reps):
        for u, v in pairs:
            index.distance(u, v)
    wall = time.perf_counter() - start
    return wall / (reps * len(pairs)) * 1e6


def measure_labels(
    scale: Optional[LabelsScale] = None, seed: int = 0
) -> Dict[str, Any]:
    """Run the labels benchmark at one scale; returns a JSON-ready dict."""
    scale = scale or current_labels_scale()
    space = _generate_space(scale, seed)
    space.distance_graph.precompute()
    doors = len(space.topology.door_ids)

    start = time.perf_counter()
    labeled = IndexFramework.build(space, backend="labels")
    labels_build_s = time.perf_counter() - start
    labels_index = labeled.distance_index
    labels_bytes = labels_index.memory_bytes()
    stats = dict(labels_index.labeling.stats)

    pairs = _sample_pairs(labels_index.door_ids, scale.sample_pairs, seed)
    labels_query_us = _time_queries(labels_index, pairs, scale.query_reps)

    dense: Dict[str, Any] = {"built": scale.build_dense}
    if scale.build_dense:
        start = time.perf_counter()
        dense_framework = IndexFramework.build(space, backend="matrix")
        dense["build_s"] = time.perf_counter() - start
        dense_index = dense_framework.distance_index
        dense_bytes = dense_index.memory_bytes()
        dense["query_us"] = _time_queries(dense_index, pairs, scale.query_reps)
        reference = {
            (u, v): dense_index.distance(u, v) for u, v in pairs
        }
    else:
        dense_bytes = doors * doors * DENSE_BYTES_PER_CELL
        reference = _canonical_reference(space, pairs)
    dense["bytes"] = int(dense_bytes)

    mismatches = sum(
        1
        for (u, v), expected in reference.items()
        if labels_index.distance(u, v) != expected
    )

    return {
        "scale": scale.name,
        "seed": seed,
        "doors": doors,
        "buildings": scale.buildings,
        "floors": scale.floors,
        "labels": {
            "build_s": labels_build_s,
            "bytes": int(labels_bytes),
            "entries": int(stats.get("entries", 0)),
            "entries_per_door": (
                stats.get("entries", 0) / doors if doors else 0.0
            ),
            "corrections": int(stats.get("corrections", 0)),
            "query_us": labels_query_us,
        },
        "dense": dense,
        "bytes_ratio": dense_bytes / labels_bytes if labels_bytes else 0.0,
        "sampled_pairs": len(pairs),
        "mismatches": mismatches,
    }


def measure_labels_artifact(seed: int = 0) -> Dict[str, Any]:
    """The two-scale result committed as ``BENCH_labels.json``.

    The ``campus`` section is the at-scale evidence (dense analytic, the
    labeling must win on resident bytes); the ``quick`` section is what
    ``repro bench --gate`` replays on every run — rebuilding a 13k-door
    labeling per gate invocation would cost minutes of CPU for no extra
    regression signal, so the affordable scale carries the gate.
    """
    campus = measure_labels(LABELS_CAMPUS, seed=seed)
    quick = measure_labels(LABELS_QUICK, seed=seed)
    return {
        "seed": seed,
        "campus": campus,
        "quick": quick,
        "bytes_ratio": campus["bytes_ratio"],
        "mismatches": campus["mismatches"] + quick["mismatches"],
    }


def render_labels_summary(result: Dict[str, Any]) -> str:
    """A short plain-text summary of one :func:`measure_labels` result."""
    labels = result["labels"]
    dense = result["dense"]
    dense_build = (
        f"{dense['build_s']:.2f} s build, " if dense["built"] else "not built, "
    )
    dense_query = (
        f", {dense['query_us']:.1f} us/query" if dense["built"] else ""
    )
    return "\n".join([
        f"labels-bench  scale={result['scale']}  seed={result['seed']}",
        f"  doors: {result['doors']} "
        f"({result['buildings']} building(s) x {result['floors']} floors)",
        f"  labels: {labels['build_s']:.2f} s build, "
        f"{labels['bytes'] / 1e6:.1f} MB resident, "
        f"{labels['entries_per_door']:.1f} entries/door, "
        f"{labels['corrections']} corrections, "
        f"{labels['query_us']:.1f} us/query",
        f"  dense:  {dense_build}"
        f"{dense['bytes'] / 1e6:.1f} MB resident"
        f"{'' if dense['built'] else ' (analytic N^2 x 16)'}"
        f"{dense_query}",
        f"  bytes_ratio: {result['bytes_ratio']:.2f}x "
        f"(dense / labels; >1 means the labeling is smaller)",
        f"  mismatches: {result['mismatches']} "
        f"of {result['sampled_pairs']} sampled pairs",
    ])
