"""Resilient query runtime (robustness layer over §IV-V).

The paper assumes pristine precomputed indexes and unbounded query time;
this package is what a production deployment needs when neither holds:

* :mod:`~repro.runtime.deadline` — cooperative per-query time budgets
  (:class:`Deadline`) threaded through the query hot loops;
* :mod:`~repro.runtime.ladder` — the graceful-degradation ladder
  (:class:`QualityLevel`, :class:`ResilientResult`): exact indexed →
  exact index-free → door-count lattice → Euclidean lower bound;
* :mod:`~repro.runtime.retry` — bounded retry-with-rebuild for stale
  indexes (:class:`RetryPolicy`);
* :mod:`~repro.runtime.integrity` — M_d2d / DPT invariant checks
  (:func:`check_index_integrity`), also surfaced as ``repro doctor``;
* :mod:`~repro.runtime.faults` — a deterministic fault-injection harness
  (corrupt matrix entries, dropped DPT records, mid-query index loss);
* :mod:`~repro.runtime.resilient` — :class:`ResilientQueryEngine`, the
  hardened facade tying all of it together.

See ``docs/robustness.md`` for semantics and a fault-injection cookbook.
"""

from repro.runtime.deadline import Deadline, DeadlineLike, as_deadline
from repro.runtime.faults import (
    FaultHandle,
    FlakyDistanceIndex,
    corrupt_labels,
    corrupt_md2d,
    drop_dpt_records,
    flip_snapshot_byte,
    install_flaky_distance_index,
)
from repro.runtime.integrity import (
    check_index_integrity,
    require_index_integrity,
)
from repro.runtime.ladder import QualityLevel, ResilientResult, RungFailure
from repro.runtime.resilient import ResilientQueryEngine
from repro.runtime.retry import NO_REBUILD, RetryPolicy

__all__ = [
    "Deadline",
    "DeadlineLike",
    "as_deadline",
    "QualityLevel",
    "ResilientResult",
    "RungFailure",
    "ResilientQueryEngine",
    "RetryPolicy",
    "NO_REBUILD",
    "check_index_integrity",
    "require_index_integrity",
    "FaultHandle",
    "FlakyDistanceIndex",
    "corrupt_labels",
    "corrupt_md2d",
    "drop_dpt_records",
    "flip_snapshot_byte",
    "install_flaky_distance_index",
]
