"""The oracle layer: differential per-rung checks, metamorphic
invariants, epoch linearizability — and that each actually catches lies."""

import math

import pytest

from repro.chaos import (
    DifferentialOracle,
    EpochOracle,
    OracleViolation,
    euclidean_bound_violation,
    space_is_undirected,
    symmetry_violation,
    triangle_violation,
)
from repro.model.figure1 import build_figure1
from repro.runtime.ladder import QualityLevel, euclidean_lower_bound
from repro.serve.requests import QueryRequest, QueryResponse
from repro.synthetic.objects import generate_objects
from repro.synthetic.workload import WorkloadOp, query_workload


@pytest.fixture(scope="module")
def fixture_space():
    return build_figure1()


@pytest.fixture(scope="module")
def fixture_objects(fixture_space):
    return [obj for obj, _ in generate_objects(fixture_space, 10, seed=1)]


@pytest.fixture(scope="module")
def oracle(fixture_space, fixture_objects):
    return DifferentialOracle(fixture_space, fixture_objects)


def _response(op, value, quality, epoch=0):
    return QueryResponse(
        request=op.to_request(),
        value=value,
        quality=quality,
        served_epoch=epoch,
    )


def _truth_for(oracle, op):
    engine = oracle.engine
    if op.kind == "range":
        return engine.range_query(op.position, op.radius)
    if op.kind == "knn":
        return engine.knn(op.position, op.k)
    return engine.distance(op.position, op.target)


class TestDifferentialOracle:
    def test_truthful_answers_pass_at_every_rung(self, oracle, fixture_space):
        ops = query_workload(fixture_space, 30, seed=2)
        for op in ops:
            truth = _truth_for(oracle, op)
            oracle.check(
                op, _response(op, truth, QualityLevel.EXACT_INDEXED)
            )
            oracle.check(
                op, _response(op, truth, QualityLevel.EXACT_FALLBACK)
            )

    def test_exact_range_lie_is_caught(self, oracle, fixture_space):
        op = next(
            o for o in query_workload(fixture_space, 30, seed=2)
            if o.kind == "range"
        )
        truth = _truth_for(oracle, op)
        lie = truth[1:] if truth else [999]
        with pytest.raises(OracleViolation, match="differential"):
            oracle.check(op, _response(op, lie, QualityLevel.EXACT_INDEXED))

    def test_door_count_range_may_miss_but_not_invent(
        self, oracle, fixture_space
    ):
        op = next(
            o for o in query_workload(fixture_space, 30, seed=2)
            if o.kind == "range"
        )
        truth = _truth_for(oracle, op)
        # Missing members is within the upper-bound rung's contract...
        oracle.check(op, _response(op, truth[:1], QualityLevel.DOOR_COUNT))
        # ...inventing one is not.
        with pytest.raises(OracleViolation, match="false positives"):
            oracle.check(
                op, _response(op, truth + [999], QualityLevel.DOOR_COUNT)
            )

    def test_euclidean_range_may_add_but_not_miss(self, oracle, fixture_space):
        op = next(
            o for o in query_workload(fixture_space, 30, seed=2)
            if o.kind == "range" and _truth_for(oracle, o)
        )
        truth = _truth_for(oracle, op)
        oracle.check(
            op, _response(op, truth + [999], QualityLevel.EUCLIDEAN)
        )
        with pytest.raises(OracleViolation, match="missed"):
            oracle.check(op, _response(op, truth[1:], QualityLevel.EUCLIDEAN))

    def test_exact_knn_distance_lie_is_caught(self, oracle, fixture_space):
        op = next(
            o for o in query_workload(fixture_space, 30, seed=2)
            if o.kind == "knn"
        )
        truth = _truth_for(oracle, op)
        lie = [(oid, dist * 1.5 + 1.0) for oid, dist in truth]
        with pytest.raises(OracleViolation, match="differential"):
            oracle.check(op, _response(op, lie, QualityLevel.EXACT_INDEXED))

    def test_exact_knn_tie_break_order_is_tolerated(
        self, oracle, fixture_space
    ):
        op = next(
            o for o in query_workload(fixture_space, 30, seed=2)
            if o.kind == "knn" and len(_truth_for(oracle, o)) >= 2
        )
        truth = _truth_for(oracle, op)
        # Two evaluators may order equal-distance neighbours differently;
        # the oracle compares id multisets + rank-by-rank distances.
        same_distances = [
            (truth[1][0], truth[0][1]), (truth[0][0], truth[1][1]),
        ] + truth[2:]
        if math.isclose(truth[0][1], truth[1][1]):
            oracle.check(
                op,
                _response(op, same_distances, QualityLevel.EXACT_INDEXED),
            )

    def test_pt2pt_bounds_per_rung(self, oracle, fixture_space):
        op = next(
            o for o in query_workload(fixture_space, 30, seed=2)
            if o.kind == "pt2pt"
            and not math.isinf(_truth_for(oracle, o))
        )
        truth = _truth_for(oracle, op)
        # DOOR_COUNT must upper-bound:
        oracle.check(op, _response(op, truth + 5.0, QualityLevel.DOOR_COUNT))
        with pytest.raises(OracleViolation, match="upper-bound"):
            oracle.check(
                op, _response(op, truth - 1.0, QualityLevel.DOOR_COUNT)
            )
        # EUCLIDEAN must lower-bound:
        oracle.check(op, _response(op, truth - 1.0, QualityLevel.EUCLIDEAN))
        with pytest.raises(OracleViolation, match="lower-bound"):
            oracle.check(
                op, _response(op, truth + 1.0, QualityLevel.EUCLIDEAN)
            )

    def test_rebind_tracks_topology_mutations(self, fixture_objects):
        from repro.model.figure1 import D24

        space = build_figure1()
        oracle = DifferentialOracle(space, fixture_objects)
        first_engine = oracle.engine
        oracle.rebind(space, fixture_objects)  # same space, same epoch
        assert oracle.engine is first_engine
        space.remove_door(D24)
        oracle.rebind(space, fixture_objects)
        assert oracle.engine is not first_engine


class TestMetamorphicChecks:
    def test_euclidean_bound(self, fixture_space):
        op = WorkloadOp(
            0, "pt2pt",
            position=fixture_space.partition(11).polygon.centroid,
            target=fixture_space.partition(13).polygon.centroid,
        )
        bound = euclidean_lower_bound(op.position, op.target)
        assert euclidean_bound_violation(op, bound + 2.0) is None
        assert euclidean_bound_violation(op, math.inf) is None
        assert euclidean_bound_violation(op, bound / 2.0) is not None

    def test_symmetry(self, fixture_space):
        op = WorkloadOp(
            0, "pt2pt",
            position=fixture_space.partition(11).polygon.centroid,
            target=fixture_space.partition(13).polygon.centroid,
        )
        assert symmetry_violation(op, 10.0, 10.0 + 1e-9) is None
        assert symmetry_violation(op, 10.0, 11.0) is not None

    def test_triangle(self, fixture_space):
        op = WorkloadOp(
            0, "pt2pt",
            position=fixture_space.partition(11).polygon.centroid,
            target=fixture_space.partition(13).polygon.centroid,
        )
        assert triangle_violation(op, 10.0, 6.0, 5.0) is None
        assert triangle_violation(op, 12.0, 6.0, 5.0) is not None
        # Unreachable detour legs make the inequality vacuous.
        assert triangle_violation(op, 12.0, math.inf, 5.0) is None

    def test_figure1_has_one_way_doors(self, fixture_space):
        # d12 and d15 are one-way, so symmetry is NOT a theorem there and
        # the campaign must gate the check on this predicate.
        assert not space_is_undirected(fixture_space)


class TestEpochOracle:
    def _response(self, epoch):
        request = QueryRequest.knn(
            build_figure1().partition(11).polygon.centroid, 1
        )
        return QueryResponse(
            request=request, value=[], quality=QualityLevel.EXACT_INDEXED,
            served_epoch=epoch,
        )

    def test_monotone_epochs_pass(self):
        oracle = EpochOracle()
        for index, epoch in enumerate([0, 0, 1, 1, 2]):
            oracle.observe(index, self._response(epoch))

    def test_regression_is_caught(self):
        oracle = EpochOracle()
        oracle.observe(0, self._response(2))
        with pytest.raises(OracleViolation, match="epoch"):
            oracle.observe(1, self._response(1))

    def test_mixed_epoch_merge_is_caught(self):
        # The reconfig fencing invariant: one answer must never merge
        # shard replies from two different topology epochs.
        request = QueryRequest.knn(
            build_figure1().partition(11).polygon.centroid, 1
        )
        response = QueryResponse(
            request=request, value=[], quality=QualityLevel.EXACT_INDEXED,
            served_epoch=2, reply_epochs=(1, 2),
        )
        oracle = EpochOracle()
        with pytest.raises(OracleViolation, match="mixed epochs"):
            oracle.observe(0, response)

    def test_uniform_reply_epochs_pass(self):
        request = QueryRequest.knn(
            build_figure1().partition(11).polygon.centroid, 1
        )
        response = QueryResponse(
            request=request, value=[], quality=QualityLevel.EXACT_INDEXED,
            served_epoch=3, reply_epochs=(3, 3, 3),
        )
        EpochOracle().observe(0, response)
