"""QueryRequest / QueryResponse envelopes: validation, keys, provenance."""

import math

import pytest

from repro.exceptions import QueryError
from repro.geometry import Point
from repro.runtime import QualityLevel
from repro.serve import QueryKind, QueryRequest, QueryResponse


P1 = Point(1.0, 5.0)
P2 = Point(7.0, 7.0)


class TestFactories:
    def test_range_factory(self):
        request = QueryRequest.range_query(P1, 12.5)
        assert request.kind is QueryKind.RANGE
        assert request.radius == 12.5
        assert request.k is None and request.target is None

    def test_knn_factory(self):
        request = QueryRequest.knn(P1, k=7)
        assert request.kind is QueryKind.KNN
        assert request.k == 7

    def test_knn_defaults_to_nearest_neighbor(self):
        assert QueryRequest.knn(P1).k == 1

    def test_pt2pt_factory(self):
        request = QueryRequest.pt2pt(P1, P2)
        assert request.kind is QueryKind.PT2PT
        assert request.target == P2

    def test_request_ids_are_unique_and_monotone(self):
        a = QueryRequest.knn(P1)
        b = QueryRequest.knn(P1)
        assert b.request_id > a.request_id


class TestValidation:
    def test_range_needs_radius(self):
        with pytest.raises(QueryError):
            QueryRequest(QueryKind.RANGE, P1)

    def test_negative_radius_rejected(self):
        with pytest.raises(QueryError):
            QueryRequest.range_query(P1, -1.0)

    def test_nan_radius_rejected(self):
        with pytest.raises(QueryError):
            QueryRequest.range_query(P1, math.nan)

    def test_knn_needs_positive_k(self):
        with pytest.raises(QueryError):
            QueryRequest.knn(P1, k=0)

    def test_pt2pt_needs_target(self):
        with pytest.raises(QueryError):
            QueryRequest(QueryKind.PT2PT, P1)

    def test_non_finite_position_rejected(self):
        with pytest.raises(QueryError):
            QueryRequest.knn(Point(math.inf, 0.0), k=1)

    def test_non_finite_target_rejected(self):
        with pytest.raises(QueryError):
            QueryRequest.pt2pt(P1, Point(math.nan, 1.0))


class TestCacheKey:
    def test_identical_queries_share_a_key(self):
        a = QueryRequest.range_query(P1, 10.0)
        b = QueryRequest.range_query(Point(1.0, 5.0), 10.0)
        assert a.request_id != b.request_id
        assert a.cache_key() == b.cache_key()

    def test_different_parameters_differ(self):
        assert (
            QueryRequest.range_query(P1, 10.0).cache_key()
            != QueryRequest.range_query(P1, 11.0).cache_key()
        )
        assert (
            QueryRequest.knn(P1, k=2).cache_key()
            != QueryRequest.knn(P1, k=3).cache_key()
        )

    def test_kinds_never_collide(self):
        keys = {
            QueryRequest.range_query(P1, 3.0).cache_key(),
            QueryRequest.knn(P1, k=3).cache_key(),
            QueryRequest.pt2pt(P1, P2).cache_key(),
        }
        assert len(keys) == 3

    def test_pt2pt_is_directional(self):
        assert (
            QueryRequest.pt2pt(P1, P2).cache_key()
            != QueryRequest.pt2pt(P2, P1).cache_key()
        )


class TestResponse:
    def test_degraded_property(self):
        request = QueryRequest.knn(P1)
        exact = QueryResponse(
            request, [], QualityLevel.EXACT_INDEXED, served_epoch=0
        )
        shed = QueryResponse(
            request, [], QualityLevel.EUCLIDEAN, served_epoch=0, shed=True
        )
        assert not exact.degraded
        assert shed.degraded and shed.shed
