"""Tests for reachability / evacuation analysis."""

import pytest

from repro.exceptions import UnknownEntityError
from repro.geometry import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder
from repro.model.figure1 import OUTDOOR, ROOM_13, build_figure1
from repro.routing import (
    evacuation_report,
    partitions_that_can_reach,
    trapped_partitions,
)


@pytest.fixture(scope="module")
def figure1():
    return build_figure1()


class TestReachability:
    def test_figure1_everything_reaches_outdoor(self, figure1):
        safe = partitions_that_can_reach(figure1, [OUTDOOR])
        assert safe == frozenset(figure1.partition_ids)
        assert trapped_partitions(figure1, [OUTDOOR]) == frozenset()

    def test_unknown_target_raises(self, figure1):
        with pytest.raises(UnknownEntityError):
            partitions_that_can_reach(figure1, [999])

    def test_one_way_trap(self):
        """A room whose only door leads in (never out) is trapped — and with
        the exit beyond it, everything else is trapped too."""
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10), name="lobby")
        builder.add_partition(2, rectangle(10, 0, 14, 4), name="vault")
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 2), one_way=True
        )
        space = builder.build()
        # Exit = lobby: the vault cannot get back out.
        assert trapped_partitions(space, [1]) == frozenset({2})
        # Exit = vault: everything can reach it.
        assert trapped_partitions(space, [2]) == frozenset()

    def test_multiple_exits_union(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_partition(3, rectangle(20, 0, 30, 10))
        builder.add_door(
            1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2), one_way=True
        )
        builder.add_door(
            2, Segment(Point(20, 4), Point(20, 6)), connects=(3, 2), one_way=True
        )
        space = builder.build()
        # Only partition 2 is reachable-from 1 and 3; with exits {1, 3}, 2 is
        # trapped; with exit {2}, everyone is safe.
        assert trapped_partitions(space, [1, 3]) == frozenset({2})
        assert trapped_partitions(space, [2]) == frozenset()


class TestEvacuationReport:
    def test_safe_building(self, figure1):
        report = evacuation_report(figure1, [OUTDOOR])
        assert report.is_safe
        assert report.exits == (OUTDOOR,)
        assert set(report.safe) == set(figure1.partition_ids)
        assert report.trapped == ()

    def test_report_with_trapped_rooms(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 2), one_way=True
        )
        report = evacuation_report(builder.build(), [1])
        assert not report.is_safe
        assert report.trapped == (2,)

    def test_temporal_closure_creates_traps(self, figure1):
        """Closing d13 at night turns room 13 unreachable *into* — but room
        13 can still be *left* via d15, so evacuation stays safe; sealing
        d15 too traps it."""
        from repro.model.figure1 import D13, D15
        from repro.temporal import DoorSchedule, TemporalIndoorSpace

        schedule = DoorSchedule()
        schedule.set_closed(D13)
        temporal = TemporalIndoorSpace(figure1, schedule)
        night = temporal.snapshot(0.0)
        assert evacuation_report(night, [OUTDOOR]).is_safe

        schedule.set_closed(D15)
        locked = TemporalIndoorSpace(figure1, schedule).snapshot(0.0)
        report = evacuation_report(locked, [OUTDOOR])
        assert ROOM_13 in report.trapped
