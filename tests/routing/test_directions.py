"""Tests for per-leg route decomposition and textual directions."""


import pytest

from repro.distance import pt2pt_path
from repro.exceptions import QueryError
from repro.geometry import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder
from repro.model.figure1 import D12, D15, P, Q, ROOM_12, ROOM_13, build_figure1
from repro.routing import RouteLeg, directions, route_legs


@pytest.fixture(scope="module")
def space():
    return build_figure1()


class TestRouteLegs:
    def test_legs_sum_to_path_distance(self, space):
        path = pt2pt_path(space, P, Q)
        legs = route_legs(space, path)
        assert sum(leg.distance for leg in legs) == pytest.approx(path.distance)

    def test_leg_structure_of_motivating_example(self, space):
        path = pt2pt_path(space, P, Q)
        legs = route_legs(space, path)
        assert [leg.partition_id for leg in legs] == [ROOM_13, ROOM_12, 10]
        assert [leg.exit_door for leg in legs] == [D15, D12, None]

    def test_single_partition_path(self, space):
        a, b = Point(6.5, 7), Point(9, 9)
        path = pt2pt_path(space, a, b)
        legs = route_legs(space, path)
        assert len(legs) == 1
        assert legs[0] == RouteLeg(ROOM_13, pytest.approx(a.distance_to(b)), None)

    def test_unreachable_path_raises(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_door(
            1, Segment(Point(4, 1), Point(4, 3)), connects=(2, 1), one_way=True
        )
        space = builder.build()
        path = pt2pt_path(space, Point(1, 1), Point(6, 2))
        assert not path.is_reachable
        with pytest.raises(QueryError):
            route_legs(space, path)

    def test_legs_on_random_positions(self, space):
        import random

        rng = random.Random(17)
        indoor = [p for p in space.partition_ids if p != 0]
        for _ in range(15):
            partitions = [space.partition(rng.choice(indoor)) for _ in range(2)]
            points = []
            for partition in partitions:
                box = partition.polygon.bounding_box
                while True:
                    candidate = Point(
                        rng.uniform(box.min_x, box.max_x),
                        rng.uniform(box.min_y, box.max_y),
                    )
                    if partition.contains(candidate):
                        points.append(candidate)
                        break
            path = pt2pt_path(space, points[0], points[1])
            legs = route_legs(space, path)
            assert sum(leg.distance for leg in legs) == pytest.approx(
                path.distance
            )


class TestDirections:
    def test_motivating_example_text(self, space):
        path = pt2pt_path(space, P, Q)
        steps = directions(space, path)
        assert len(steps) == 3
        assert steps[0].startswith("Walk")
        assert "d15" in steps[0]
        assert steps[1].startswith("Pass through d15;")
        assert "your destination" in steps[-1]

    def test_uses_partition_names(self, space):
        path = pt2pt_path(space, P, Q)
        steps = directions(space, path)
        assert "room 13" in steps[0]
        assert "room 12" in steps[1]
        assert "hallway 10" in steps[2]

    def test_same_partition_directions(self, space):
        steps = directions(space, pt2pt_path(space, P, Point(9, 9)))
        assert len(steps) == 1
        assert "your destination" in steps[0]

    def test_unreachable_directions(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_door(
            1, Segment(Point(4, 1), Point(4, 3)), connects=(2, 1), one_way=True
        )
        space = builder.build()
        path = pt2pt_path(space, Point(1, 1), Point(6, 2))
        assert directions(space, path) == ["No route exists to the destination."]
