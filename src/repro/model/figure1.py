"""The paper's running example floor plan (Figure 1).

The paper never publishes exact coordinates, so this module reconstructs a
floor plan with the same *structure*: the same partitions (hallway 10, rooms
11–14 in the top-left block, rooms 20–22 on the right, staircase 50, outdoor
0), the same doors with the same directionality (d12 one-way room 12 → hallway,
d15 one-way room 13 → room 12, everything else bidirectional), an obstacle in
a right-block room making the d22–d24 distance obstructed, and — crucially —
geometry chosen so the motivating example holds: the shortest walking path
from position ``p`` (in room 13) to position ``q`` (in the hallway) goes
through doors d15 and d12, while the door-count model of Li & Lee picks the
longer path through d13.

Absolute distances therefore differ from the handful of numbers quoted in the
paper's §III (whose own text and Figure 3 already disagree: 1.6 m vs 1.5 m for
the same entry); every structural property is reproduced and unit-tested.

Coordinates are metres on floor 0.  Outdoor space is modelled as a finite
apron strip west of the building so that it can carry geometry like any other
partition (see DESIGN.md, "substitutions").
"""

from __future__ import annotations

from repro.geometry import Point, Segment, rectangle
from repro.model.builder import IndoorSpace, IndoorSpaceBuilder
from repro.model.entities import PartitionKind

#: Identifiers used by the running example, matching the paper's labels.
OUTDOOR = 0
HALLWAY = 10
ROOM_11, ROOM_12, ROOM_13, ROOM_14 = 11, 12, 13, 14
ROOM_20, ROOM_21, ROOM_22 = 20, 21, 22
STAIRCASE_50 = 50

D1, D2, D3 = 1, 2, 3
D11, D12, D13, D14, D15 = 11, 12, 13, 14, 15
D21, D22, D24 = 21, 22, 24

#: The doors of the top-left sub-plan whose distance matrix the paper shows
#: in Figures 3 and 4.
SUBPLAN_DOORS = (D1, D11, D12, D13, D14, D15)

#: The motivating example positions of Figure 1: ``P`` sits in room 13 close
#: to the one-way door d15; ``Q`` sits in the hallway close to d12.
P = Point(6.2, 8.0)
Q = Point(5.0, 5.2)


def _add_top_left_block(builder: IndoorSpaceBuilder) -> None:
    """Outdoor apron, hallway 10, and rooms 11-14 with doors d1, d11-d15."""
    builder.add_partition(
        OUTDOOR, rectangle(-4, 0, 0, 14), PartitionKind.OUTDOOR, name="outdoor"
    )
    builder.add_partition(
        HALLWAY, rectangle(0, 4, 12, 6), PartitionKind.HALLWAY, name="hallway 10"
    )
    builder.add_partition(ROOM_11, rectangle(0, 6, 4, 10), name="room 11")
    builder.add_partition(ROOM_12, rectangle(4, 6, 6, 10), name="room 12")
    builder.add_partition(ROOM_13, rectangle(6, 6, 10, 10), name="room 13")
    builder.add_partition(ROOM_14, rectangle(10, 6, 12, 10), name="room 14")

    builder.add_door(
        D1, Segment(Point(0, 4.6), Point(0, 5.4)), connects=(OUTDOOR, HALLWAY),
        name="d1",
    )
    builder.add_door(
        D11, Segment(Point(1.6, 6), Point(2.4, 6)), connects=(ROOM_11, HALLWAY),
        name="d11",
    )
    # d12 is unidirectional: one can only leave room 12 into the hallway.
    builder.add_door(
        D12, Segment(Point(4.6, 6), Point(5.4, 6)), connects=(ROOM_12, HALLWAY),
        one_way=True, name="d12",
    )
    builder.add_door(
        D13, Segment(Point(7.6, 6), Point(8.4, 6)), connects=(ROOM_13, HALLWAY),
        name="d13",
    )
    builder.add_door(
        D14, Segment(Point(10.6, 6), Point(11.4, 6)), connects=(ROOM_14, HALLWAY),
        name="d14",
    )
    # d15 is unidirectional: one can only walk from room 13 into room 12.
    builder.add_door(
        D15, Segment(Point(6, 7.6), Point(6, 8.4)), connects=(ROOM_13, ROOM_12),
        one_way=True, name="d15",
    )


def _add_right_block(builder: IndoorSpaceBuilder) -> None:
    """Rooms 20-22 with doors d2, d21, d22, d24 and the d22-d24 obstacle."""
    builder.add_partition(ROOM_20, rectangle(12, 4, 20, 10), name="room 20")
    builder.add_partition(ROOM_21, rectangle(12, 0, 16, 4), name="room 21")
    # Room 22 holds an exhibition-stand obstacle that blocks the straight
    # line between doors d22 and d24, making their distance obstructed
    # (the paper's §III-C1 example).
    builder.add_partition(
        ROOM_22,
        rectangle(16, 0, 20, 4),
        name="room 22",
        obstacles=(rectangle(16.4, 1.2, 19.2, 3.2),),
    )
    builder.add_door(
        D2, Segment(Point(12, 4.6), Point(12, 5.4)), connects=(HALLWAY, ROOM_20),
        name="d2",
    )
    builder.add_door(
        D21, Segment(Point(13.6, 4), Point(14.4, 4)), connects=(ROOM_20, ROOM_21),
        name="d21",
    )
    builder.add_door(
        D22, Segment(Point(17.6, 4), Point(18.4, 4)), connects=(ROOM_20, ROOM_22),
        name="d22",
    )
    builder.add_door(
        D24, Segment(Point(16, 1.6), Point(16, 2.4)), connects=(ROOM_21, ROOM_22),
        name="d24",
    )


def _add_staircase(builder: IndoorSpaceBuilder) -> None:
    """Staircase 50 south-west of the hallway, door d3."""
    builder.add_partition(
        STAIRCASE_50,
        rectangle(0, 0, 4, 4),
        PartitionKind.STAIRCASE,
        name="staircase 50",
    )
    builder.add_door(
        D3, Segment(Point(1.6, 4), Point(2.4, 4)), connects=(STAIRCASE_50, HALLWAY),
        name="d3",
    )


def build_figure1() -> IndoorSpace:
    """The complete Figure-1 floor plan: 10 partitions, 11 doors."""
    builder = IndoorSpaceBuilder()
    _add_top_left_block(builder)
    _add_right_block(builder)
    _add_staircase(builder)
    return builder.build()


def build_figure1_subplan() -> IndoorSpace:
    """Only the top-left block of Figure 1: the six doors d1, d11–d15 whose
    door-to-door distance matrix and distance index matrix the paper prints
    as Figures 3 and 4."""
    builder = IndoorSpaceBuilder()
    _add_top_left_block(builder)
    return builder.build()
