"""corrupt_labels and the labels branch of check_index_integrity."""

import pytest

from repro.index import IndexFramework
from repro.model.figure1 import build_figure1
from repro.runtime import check_index_integrity, corrupt_labels, corrupt_md2d
from repro.runtime.faults import LABELS_MODES
from repro.runtime.integrity import Severity


@pytest.fixture
def labels_framework():
    return IndexFramework.build(build_figure1(), backend="labels")


def _all_answers(framework):
    index = framework.distance_index
    return [
        index.distance(u, v)
        for u in index.door_ids
        for v in index.door_ids
    ]


class TestCorruptLabels:
    def test_modes_constant(self):
        assert LABELS_MODES == ("nan", "negative", "skew")

    def test_unknown_mode_rejected(self, labels_framework):
        with pytest.raises(ValueError, match="mode must be one of"):
            corrupt_labels(labels_framework, mode="bogus")

    def test_matrix_framework_rejected(self):
        dense = IndexFramework.build(build_figure1())
        with pytest.raises(ValueError, match="labels backend"):
            corrupt_labels(dense)

    def test_labels_framework_rejected_by_corrupt_md2d(self, labels_framework):
        with pytest.raises(ValueError, match="dense matrix backend"):
            corrupt_md2d(labels_framework)

    @pytest.mark.parametrize("mode", ["nan", "negative"])
    def test_structural_modes_trip_integrity(self, labels_framework, mode):
        handle = corrupt_labels(labels_framework, mode=mode, count=2, seed=3)
        issues = check_index_integrity(labels_framework)
        assert any(
            issue.code == "labels-corrupt"
            and issue.severity is Severity.ERROR
            for issue in issues
        )
        handle.undo()
        assert check_index_integrity(labels_framework) == []

    def test_skew_is_silent_but_changes_answers(self, labels_framework):
        """Finite skew passes structural integrity — only the differential
        oracle can see it.  That asymmetry is the point of the mode."""
        before = _all_answers(labels_framework)
        handle = corrupt_labels(labels_framework, mode="skew", seed=1)
        assert not any(
            issue.code == "labels-corrupt"
            for issue in check_index_integrity(labels_framework)
        )
        assert _all_answers(labels_framework) != before
        handle.undo()
        assert _all_answers(labels_framework) == before

    def test_undo_restores_bit_identity(self, labels_framework):
        before = _all_answers(labels_framework)
        scans_before = [
            list(labels_framework.distance_index.doors_by_distance(u))
            for u in labels_framework.distance_index.door_ids
        ]
        handle = corrupt_labels(labels_framework, mode="nan", count=3, seed=9)
        handle.undo()
        assert _all_answers(labels_framework) == before
        assert [
            list(labels_framework.distance_index.doors_by_distance(u))
            for u in labels_framework.distance_index.door_ids
        ] == scans_before

    def test_same_seed_same_entries(self, labels_framework):
        first = corrupt_labels(labels_framework, mode="skew", count=2, seed=5)
        first.undo()
        second = corrupt_labels(labels_framework, mode="skew", count=2, seed=5)
        second.undo()
        assert first.cells == second.cells

    def test_row_cache_is_invalidated(self, labels_framework):
        """A scan row materialised before the fault must not keep serving
        pre-fault values (and the same on undo)."""
        index = labels_framework.distance_index
        u = index.door_ids[0]
        before = list(index.doors_by_distance(u))
        handle = corrupt_labels(labels_framework, mode="skew", count=4, seed=2)
        during = list(index.doors_by_distance(u))
        handle.undo()
        after = list(index.doors_by_distance(u))
        assert during != before
        assert after == before


class TestIntegrityDispatch:
    def test_clean_labels_framework_has_no_issues(self, labels_framework):
        assert check_index_integrity(labels_framework) == []

    def test_dpt_check_still_runs_for_labels(self, labels_framework):
        from repro.runtime import drop_dpt_records

        handle = drop_dpt_records(labels_framework, count=1, seed=0)
        issues = check_index_integrity(labels_framework)
        assert any(issue.code == "dpt-missing" for issue in issues)
        handle.undo()
