"""``repro chaos run/replay`` and ``repro doctor --campaign``."""

import json

import pytest

from repro.chaos import (
    CampaignConfig,
    CampaignRunner,
    FaultAction,
    FaultPlan,
)
from repro.cli import main


@pytest.fixture(scope="module")
def report_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "report.json"
    code = main([
        "chaos", "run", "--seed", "0", "--duration-ops", "60",
        "--report", str(path),
    ])
    assert code == 0
    return str(path)


class TestChaosRun:
    def test_run_prints_verdict_and_writes_report(
        self, report_path, capsys, tmp_path
    ):
        raw = json.loads(open(report_path, encoding="utf-8").read())
        assert raw["verdict"] == "PASS"
        assert raw["format"] == 1
        assert raw["config"]["seed"] == 0
        assert raw["counts"]["silent_wrong_answer"] == 0

    def test_bench_json_sidecar(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_chaos.json"
        code = main([
            "chaos", "run", "--seed", "1", "--duration-ops", "40",
            "--bench-json", str(bench),
        ])
        assert code == 0
        raw = json.loads(bench.read_text(encoding="utf-8"))
        assert raw["campaign"]["seed"] == 1
        assert raw["campaign"]["verdict"] == "PASS"
        assert raw["campaign"]["digest"]
        assert raw["latency_ms_by_quality"]
        for stats in raw["latency_ms_by_quality"].values():
            assert {"count", "p50", "p90", "p99"} <= set(stats)

    def test_custom_plan_fail_exits_nonzero(self, tmp_path, capsys):
        # Oracles on, gate and breaker off, index corrupted and never
        # healed: the CLI must propagate the FAIL verdict as nonzero exit.
        plan = FaultPlan([
            FaultAction(
                2, "corrupt_md2d",
                {"mode": "nan", "count": 4, "seed": 5},
                label="x",
            ),
        ])
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps(plan.to_json_dict()), encoding="utf-8"
        )
        code = main([
            "chaos", "run", "--seed", "0", "--duration-ops", "40",
            "--plan", str(plan_path),
            "--no-integrity-gate", "--no-breaker",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert "silent_wrong_answer" in out

    def test_unreadable_plan_exits_two(self, tmp_path, capsys):
        code = main([
            "chaos", "run", "--plan", str(tmp_path / "missing.json"),
        ])
        assert code == 2


class TestChaosReplay:
    def test_replay_reproduces_the_digest(self, report_path, capsys):
        code = main(["chaos", "replay", "--report", report_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "digest reproduced" in out

    def test_replay_flags_a_tampered_report(
        self, report_path, tmp_path, capsys
    ):
        raw = json.loads(open(report_path, encoding="utf-8").read())
        raw["digest"] = "0" * 64
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(raw), encoding="utf-8")
        code = main(["chaos", "replay", "--report", str(tampered)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIGEST MISMATCH" in out


class TestDoctorCampaign:
    def test_passing_report_is_healthy(self, report_path, capsys):
        code = main(["doctor", "--campaign", report_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_failing_report_exits_nonzero(self, tmp_path, capsys):
        plan = FaultPlan([
            FaultAction(
                2, "corrupt_md2d",
                {"mode": "nan", "count": 4, "seed": 5},
                label="x",
            ),
        ])
        report = CampaignRunner(CampaignConfig(
            seed=0, duration_ops=40, plan=plan,
            integrity_gate=False, breaker=False,
        )).run()
        path = report.save(tmp_path / "fail.json")
        code = main(["doctor", "--campaign", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_unreadable_report_exits_nonzero(self, tmp_path, capsys):
        code = main(["doctor", "--campaign", str(tmp_path / "missing.json")])
        assert code == 1

    def test_doctor_requires_some_target(self, capsys):
        code = main(["doctor"])
        assert code == 2
