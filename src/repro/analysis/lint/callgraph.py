"""Project-wide call graph with per-function lock summaries.

This module is the interprocedural substrate under REP006 (lock-order
cycles), REP007 (blocking calls under a held lock), and REP008
(epoch-fenced reply merging).  One :class:`ProjectGraph` is built per
lint run (cached per :class:`~repro.analysis.lint.context.ProjectContext`)
in three passes:

1. **Symbols** — every module contributes its import table, its
   top-level functions, and its classes (methods, resolved base classes,
   declared lock attributes with their factory kind and allocation
   site, and inferred attribute types).  Lock identity is the pair
   ``(owner, attr)`` where *owner* is the **declaring** class key
   (``repro.shard.supervisor:ShardSupervisor``) or the module name for
   module-level locks, so subclasses and aliased imports collapse onto
   one node in the lock graph.
2. **Events** — each function body is walked once, tracking the stack
   of syntactically held locks (``with self._lock:``), and emits
   acquire events, call events (with import-aware callee resolution),
   and blocking-primitive events, each stamped with the held stack.
3. **Fixed points** — transitive *acquires* and *blocking* summaries
   are propagated over the call graph to a fixed point, each with a
   shortest witness path (deterministic: ties break lexicographically),
   and the global lock-order graph is derived: an edge ``A -> B`` means
   some thread can try to take ``B`` while holding ``A``, either
   directly or through any chain of calls.

Resolution is deliberately *under*-approximate (an unresolvable call
contributes no edges); the dynamic :mod:`repro.analysis.witness`
runtime exists to catch the holes — any observed acquisition edge
missing from this static graph fails the ``repro lint --witness``
cross-check.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.context import ModuleContext, ProjectContext

__all__ = [
    "AcquireEvent",
    "BlockEvent",
    "CallEvent",
    "ClassInfo",
    "FunctionInfo",
    "LockEdge",
    "LockId",
    "ProjectGraph",
    "build_graph",
    "lock_label",
    "render_dot",
]

#: ("module:Class" | "module", attribute-or-name)
LockId = Tuple[str, str]

#: Lock factories considered reentrant: re-acquiring the same identity
#: on the same thread is legal, so self-edges on them are not cycles.
_REENTRANT_KINDS = {"RLock", "Condition"}

_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}

#: Runtime-kind tags inferred for variables/attributes, used by the
#: blocking-primitive classifier (receiver of ``.join()``, ``.recv()``…).
_KIND_PIPE = "pipe"
_KIND_PROCESS = "process"
_KIND_THREAD = "thread"
_KIND_QUEUE = "queue"
_KIND_FUTURE = "future"

_CTOR_KINDS = {
    "Pipe": _KIND_PIPE,
    "Process": _KIND_PROCESS,
    "Thread": _KIND_THREAD,
    "Timer": _KIND_THREAD,
    "Queue": _KIND_QUEUE,
    "SimpleQueue": _KIND_QUEUE,
    "JoinableQueue": _KIND_QUEUE,
    "LifoQueue": _KIND_QUEUE,
    "PriorityQueue": _KIND_QUEUE,
    "Future": _KIND_FUTURE,
}

_ANNOTATION_KINDS = {
    "Connection": _KIND_PIPE,
    "Process": _KIND_PROCESS,
    "BaseProcess": _KIND_PROCESS,
    "SpawnProcess": _KIND_PROCESS,
    "Thread": _KIND_THREAD,
    "Queue": _KIND_QUEUE,
    "Future": _KIND_FUTURE,
}

_PIPE_NAME_HINTS = ("conn", "pipe")
_PROCESS_NAME_HINTS = ("process", "proc", "popen", "worker_process")
_THREAD_NAME_HINTS = ("thread",)
_FUTURE_NAME_HINTS = ("future", "fut")
_QUEUE_NAME_HINTS = ("queue",)


def lock_label(lock: LockId) -> str:
    """Human form of a lock identity: ``ShardSupervisor._lock``."""
    owner, attr = lock
    if ":" in owner:
        owner = owner.split(":", 1)[1]
    else:
        owner = owner.rsplit(".", 1)[-1]
    return f"{owner}.{attr}"


@dataclass(frozen=True)
class AcquireEvent:
    """One syntactic lock acquisition inside a function body."""

    lock: LockId
    line: int
    col: int
    held: Tuple[LockId, ...]
    #: True when the receiver is not ``self`` / the defining module —
    #: e.g. ``incarnation._lock`` taken from supervisor code.  Used to
    #: ignore same-identity "self" edges that are really two instances.
    cross_instance: bool = False


@dataclass(frozen=True)
class CallEvent:
    """One resolved call site inside a function body."""

    callees: Tuple[str, ...]
    line: int
    col: int
    held: Tuple[LockId, ...]
    text: str


@dataclass(frozen=True)
class BlockEvent:
    """One potentially-blocking primitive inside a function body."""

    kind: str
    line: int
    col: int
    held: Tuple[LockId, ...]
    text: str


@dataclass
class FunctionInfo:
    """Summary of one top-level function or method."""

    key: str
    module_name: str
    relpath: str
    name: str
    lineno: int
    class_key: Optional[str] = None
    returns: str = ""
    #: positional + keyword-only parameter names, in order.
    params: Tuple[str, ...] = ()
    param_annotations: Dict[str, str] = field(default_factory=dict)
    acquires: List[AcquireEvent] = field(default_factory=list)
    calls: List[CallEvent] = field(default_factory=list)
    blocks: List[BlockEvent] = field(default_factory=list)
    #: True when the body compares some ``<expr>.epoch`` — the marker
    #: REP008 uses to recognise fence logic.
    epoch_compare: bool = False


@dataclass
class ClassInfo:
    """Summary of one class definition."""

    key: str
    module_name: str
    name: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    #: declared lock attribute -> factory kind ("Lock", "RLock", ...)
    locks: Dict[str, str] = field(default_factory=dict)
    #: attribute -> candidate class keys (from annotations/constructor
    #: assignments in any method)
    attr_types: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: attribute -> runtime kind tag (pipe/process/thread/queue/future)
    attr_kinds: Dict[str, str] = field(default_factory=dict)
    #: ``Callable``-annotated ctor param -> the ``self.<attr>`` slot it
    #: is stored into; call sites passing ``self.m`` for such a param
    #: register m as a dispatch target for that slot.
    callback_params: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class LockEdge:
    """``src`` is held while ``dst`` is (possibly transitively) taken."""

    src: LockId
    dst: LockId
    relpath: str
    line: int
    #: function-key chain from the holder down to the direct acquirer;
    #: length 1 means the nesting is syntactic within one function.
    path: Tuple[str, ...]


class ProjectGraph:
    """The assembled interprocedural summaries for one lint run."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module name -> {local alias -> dotted target}
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module name -> {module-level lock name -> factory kind}
        self.module_locks: Dict[str, Dict[str, str]] = {}
        #: (relpath, line of the factory call) -> lock identity; the
        #: join key between this graph and witness traces.
        self.alloc_sites: Dict[Tuple[str, int], LockId] = {}
        #: lock factory kind per identity.
        self.lock_kinds: Dict[LockId, str] = {}
        #: transitive acquires with a shortest witness call path.
        self.acquire_paths: Dict[str, Dict[LockId, Tuple[str, ...]]] = {}
        #: transitive blocking kinds with a shortest witness call path
        #: and the line of the primitive at the end of the path.
        self.block_paths: Dict[str, Dict[str, Tuple[Tuple[str, ...], int]]] = {}
        #: (class_key, attr) -> function keys registered into that
        #: callback slot at any constructor call site project-wide.
        #: Populated on the first body walk; calls through the slot
        #: resolve on the second (see :func:`build_graph`).
        self.callback_targets: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        #: (src, dst) -> first deterministic witness edge.
        self.edges: Dict[Tuple[LockId, LockId], LockEdge] = {}

    # -- lookup helpers -------------------------------------------------

    def resolve_method(self, class_key: str, name: str) -> Optional[str]:
        """MRO-ish lookup of ``name`` starting at ``class_key``."""
        seen: Set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop(0)
            if key in seen:
                continue
            seen.add(key)
            info = self.classes.get(key)
            if info is None:
                continue
            found = info.methods.get(name)
            if found is not None:
                return found
            stack.extend(info.bases)
        return None

    def declaring_class(self, class_key: str, attr: str) -> Optional[str]:
        """The base class that declares lock ``attr`` (MRO order)."""
        seen: Set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop(0)
            if key in seen:
                continue
            seen.add(key)
            info = self.classes.get(key)
            if info is None:
                continue
            if attr in info.locks:
                return key
            stack.extend(info.bases)
        return None

    def lock_for(self, class_key: str, attr: str) -> Optional[LockId]:
        """The identity of ``self.<attr>`` seen from ``class_key`` — keyed
        by the *declaring* class, so subclasses share the base's lock."""
        owner = self.declaring_class(class_key, attr)
        if owner is None:
            return None
        return (owner, attr)

    def cycles(self) -> List[List[LockId]]:
        """Elementary cycles of the lock graph (Tarjan SCCs + self loops).

        Each cycle is returned as the node list in edge order, rotated so
        the lexicographically-smallest lock leads — stable output for
        fingerprinting.
        """
        adjacency: Dict[LockId, List[LockId]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, []).append(dst)
            adjacency.setdefault(dst, [])
        for peers in adjacency.values():
            peers.sort()

        index: Dict[LockId, int] = {}
        low: Dict[LockId, int] = {}
        on_stack: Set[LockId] = set()
        stack: List[LockId] = []
        sccs: List[List[LockId]] = []
        counter = [0]

        def strongconnect(node: LockId) -> None:
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for peer in adjacency.get(node, []):
                if peer not in index:
                    strongconnect(peer)
                    low[node] = min(low[node], low[peer])
                elif peer in on_stack:
                    low[node] = min(low[node], index[peer])
            if low[node] == index[node]:
                component: List[LockId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

        for node in sorted(adjacency):
            if node not in index:
                strongconnect(node)

        cycles: List[List[LockId]] = []
        for component in sccs:
            if len(component) > 1:
                ordered = sorted(component)
                cycles.append(ordered)
            elif (component[0], component[0]) in self.edges:
                cycles.append([component[0]])
        cycles.sort()
        return cycles


# ---------------------------------------------------------------------------
# Pass 1: symbols
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` attribute/name chain as a string ("" if not a chain)."""
    parts: List[str] = []
    cursor: ast.expr = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return ""


def _self_attr(node: ast.expr) -> str:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _annotation_text(node: Optional[ast.expr]) -> str:
    """Flatten an annotation to source text, unquoting string forms."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - unparse is total on 3.9+
        return ""


def _annotation_core(text: str) -> str:
    """Strip ``Optional[...]``/quotes to the innermost dotted name."""
    text = text.strip().strip("'\"")
    for wrapper in ("Optional[", "typing.Optional["):
        if text.startswith(wrapper) and text.endswith("]"):
            return _annotation_core(text[len(wrapper):-1])
    return text


def _is_lock_factory(node: ast.expr) -> Optional[str]:
    """Factory kind when ``node`` is ``threading.Lock()`` etc., else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = ""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name in _LOCK_FACTORIES else None


def _ctor_kind(value: ast.expr) -> Optional[str]:
    """Runtime-kind tag when ``value`` constructs a known primitive."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    if name in _CTOR_KINDS:
        return _CTOR_KINDS[name]
    if name == "submit" or name == "shutdown_future":
        return _KIND_FUTURE
    return None


def _kind_from_annotation(text: str) -> Optional[str]:
    core = _annotation_core(text)
    leaf = core.split("[", 1)[0].rsplit(".", 1)[-1]
    return _ANNOTATION_KINDS.get(leaf)


def _kind_from_name(name: str) -> Optional[str]:
    low = name.lower().lstrip("_")
    for hints, kind in (
        (_PIPE_NAME_HINTS, _KIND_PIPE),
        (_PROCESS_NAME_HINTS, _KIND_PROCESS),
        (_THREAD_NAME_HINTS, _KIND_THREAD),
        (_FUTURE_NAME_HINTS, _KIND_FUTURE),
        (_QUEUE_NAME_HINTS, _KIND_QUEUE),
    ):
        if any(low == hint or low.endswith(hint) for hint in hints):
            return kind
    return None


def _import_table(tree: ast.Module) -> Dict[str, str]:
    """Top-level ``import``/``from`` bindings: alias -> dotted target."""
    table: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else local
                table[local] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def _collect_symbols(graph: ProjectGraph, module: ModuleContext) -> None:
    mod = module.module_name
    graph.imports[mod] = _import_table(module.tree)
    graph.module_locks[mod] = {}

    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            kind = _is_lock_factory(node.value)
            if kind is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lock: LockId = (mod, target.id)
                        graph.module_locks[mod][target.id] = kind
                        graph.lock_kinds[lock] = kind
                        graph.alloc_sites[
                            (module.relpath, node.value.lineno)
                        ] = lock
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _register_function(graph, module, node, class_key=None)
        elif isinstance(node, ast.ClassDef):
            _collect_class(graph, module, node)


def _register_function(
    graph: ProjectGraph,
    module: ModuleContext,
    node: ast.FunctionDef,
    class_key: Optional[str],
) -> FunctionInfo:
    if class_key is None:
        key = f"{module.module_name}:{node.name}"
    else:
        key = f"{class_key}.{node.name}"
    info = FunctionInfo(
        key=key,
        module_name=module.module_name,
        relpath=module.relpath,
        name=node.name,
        lineno=node.lineno,
        class_key=class_key,
        returns=_annotation_text(node.returns),
    )
    args = node.args
    all_args = args.posonlyargs + args.args + args.kwonlyargs
    info.params = tuple(arg.arg for arg in all_args)
    for arg in all_args:
        text = _annotation_text(arg.annotation)
        if text:
            info.param_annotations[arg.arg] = text
    graph.functions[key] = info
    return info


def _collect_class(
    graph: ProjectGraph, module: ModuleContext, cls: ast.ClassDef
) -> None:
    key = f"{module.module_name}:{cls.name}"
    info = ClassInfo(key=key, module_name=module.module_name, name=cls.name)
    for base in cls.bases:
        dotted = _dotted(base)
        if dotted:
            info.bases.append(dotted)  # resolved in pass 1.5

    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = _register_function(graph, module, stmt, class_key=key)
            info.methods[stmt.name] = func.key
            _collect_attr_facts(graph, module, info, stmt)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            text = _annotation_text(stmt.annotation)
            kind = _kind_from_annotation(text)
            if kind is not None:
                info.attr_kinds.setdefault(stmt.target.id, kind)
    graph.classes[key] = info


def _collect_attr_facts(
    graph: ProjectGraph,
    module: ModuleContext,
    info: ClassInfo,
    method: ast.FunctionDef,
) -> None:
    """Harvest ``self.x = ...`` lock declarations / type facts."""
    param_ann = {
        arg.arg: _annotation_text(arg.annotation)
        for arg in (
            method.args.posonlyargs + method.args.args + method.args.kwonlyargs
        )
        if arg.annotation is not None
    }
    for node in ast.walk(method):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
            attr = _self_attr(node.target)
            text = _annotation_text(node.annotation)
            if attr and text:
                info.attr_types.setdefault(attr, (_annotation_core(text),))
                kind = _kind_from_annotation(text)
                if kind is not None:
                    info.attr_kinds.setdefault(attr, kind)
        if value is None:
            continue

        lock_kind = _is_lock_factory(value)
        tuple_ctor = _ctor_kind(value)
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)) and tuple_ctor:
                # e.g. ``self.conn, child = ctx.Pipe()``
                for element in target.elts:
                    attr = _self_attr(element)
                    if attr:
                        info.attr_kinds.setdefault(attr, tuple_ctor)
                continue
            attr = _self_attr(target)
            if not attr:
                continue
            if lock_kind is not None:
                info.locks[attr] = lock_kind
                lock: LockId = (info.key, attr)
                graph.lock_kinds[lock] = lock_kind
                graph.alloc_sites[(module.relpath, value.lineno)] = lock
                continue
            if tuple_ctor is not None:
                info.attr_kinds.setdefault(attr, tuple_ctor)
            if isinstance(value, ast.Name) and "Callable" in param_ann.get(
                value.id, ""
            ):
                # ``self._on_adopt = on_adopt`` with a Callable-annotated
                # param: a callback slot.  Witness traces caught a real
                # edge flowing through exactly this pattern (reconfig's
                # adopt hook taking the sharded service's state lock).
                info.callback_params[value.id] = attr
            for candidate in _value_type_candidates(value, param_ann):
                existing = info.attr_types.get(attr, ())
                if candidate not in existing:
                    info.attr_types[attr] = existing + (candidate,)


def _value_type_candidates(
    value: ast.expr, param_annotations: Dict[str, str]
) -> List[str]:
    """Dotted type-name candidates for an assignment's right-hand side."""
    candidates: List[str] = []
    queue: List[ast.expr] = [value]
    while queue:
        expr = queue.pop(0)
        if isinstance(expr, ast.BoolOp):
            queue.extend(expr.values)
        elif isinstance(expr, ast.IfExp):
            queue.extend([expr.body, expr.orelse])
        elif isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted and dotted[0].isupper() or (
                "." in dotted and dotted.rsplit(".", 1)[-1][:1].isupper()
            ):
                candidates.append(dotted)
        elif isinstance(expr, ast.Name):
            text = param_annotations.get(expr.id, "")
            if text:
                candidates.append(_annotation_core(text))
    return candidates


def _resolve_bases(graph: ProjectGraph) -> None:
    """Rewrite ClassInfo.bases from dotted names to class keys."""
    for info in graph.classes.values():
        resolved: List[str] = []
        for dotted in info.bases:
            key = _resolve_class_name(graph, info.module_name, dotted)
            if key is not None:
                resolved.append(key)
        info.bases = resolved


def _resolve_class_name(
    graph: ProjectGraph, module_name: str, dotted: str
) -> Optional[str]:
    """Resolve a (possibly imported) dotted class name to a class key."""
    dotted = _annotation_core(dotted).split("[", 1)[0]
    if not dotted:
        return None
    head, _, rest = dotted.partition(".")
    table = graph.imports.get(module_name, {})

    # Local class in the same module.
    local = f"{module_name}:{dotted}"
    if local in graph.classes:
        return local
    # ``from mod import Class`` (possibly aliased).
    if not rest and head in table:
        target = table[head]
        target_mod, _, target_name = target.rpartition(".")
        key = f"{target_mod}:{target_name}"
        if key in graph.classes:
            return key
    # ``import mod`` / ``from pkg import mod`` then ``mod.Class``.
    if rest and head in table:
        key = f"{table[head]}:{rest}"
        if key in graph.classes:
            return key
    # Fully-qualified already.
    mod, _, name = dotted.rpartition(".")
    if mod:
        key = f"{mod}:{name}"
        if key in graph.classes:
            return key
    return None


# ---------------------------------------------------------------------------
# Pass 2: per-function events
# ---------------------------------------------------------------------------


class _FunctionWalker(ast.NodeVisitor):
    """Walk one function body tracking the syntactic held-lock stack."""

    def __init__(
        self,
        graph: ProjectGraph,
        module: ModuleContext,
        info: FunctionInfo,
    ) -> None:
        self.graph = graph
        self.module = module
        self.info = info
        self.held: List[LockId] = []
        # name -> runtime kind tag / candidate class keys, flow-insensitive
        self.var_kinds: Dict[str, str] = {}
        self.var_types: Dict[str, Tuple[str, ...]] = {}
        self._seed_params()

    # -- environment ----------------------------------------------------

    def _seed_params(self) -> None:
        for name, text in self.info.param_annotations.items():
            kind = _kind_from_annotation(text)
            if kind is not None:
                self.var_kinds[name] = kind
            resolved = _resolve_class_name(
                self.graph, self.info.module_name, text
            )
            if resolved is not None:
                self.var_types[name] = (resolved,)

    def _class_info(self) -> Optional[ClassInfo]:
        if self.info.class_key is None:
            return None
        return self.graph.classes.get(self.info.class_key)

    def _expr_kind(self, expr: ast.expr) -> Optional[str]:
        """Runtime-kind tag of a receiver expression."""
        if isinstance(expr, ast.Name):
            kind = self.var_kinds.get(expr.id)
            if kind is not None:
                return kind
            return _kind_from_name(expr.id)
        attr = _self_attr(expr)
        if attr:
            cls = self._class_info()
            if cls is not None:
                kind = self._attr_kind(cls, attr)
                if kind is not None:
                    return kind
            return _kind_from_name(attr)
        if isinstance(expr, ast.Attribute):
            return _kind_from_name(expr.attr)
        return None

    def _attr_kind(self, cls: ClassInfo, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        stack = [cls.key]
        while stack:
            key = stack.pop(0)
            if key in seen:
                continue
            seen.add(key)
            info = self.graph.classes.get(key)
            if info is None:
                continue
            if attr in info.attr_kinds:
                return info.attr_kinds[attr]
            stack.extend(info.bases)
        return None

    def _expr_types(self, expr: ast.expr) -> Tuple[str, ...]:
        """Candidate class keys of a receiver expression."""
        if isinstance(expr, ast.Name):
            return self.var_types.get(expr.id, ())
        if isinstance(expr, ast.Call):
            # Chained call (``self.counter(name).increment()``): type
            # the receiver from the resolved callee's return annotation,
            # or the class itself when the callee is a constructor.
            # Witness traces caught this exact hole — the registry's
            # get-or-create accessors return the lock-bearing object.
            out: List[str] = []
            for callee in self._resolve_call(expr):
                info = self.graph.functions.get(callee)
                if info is None:
                    continue
                if info.name == "__init__" and info.class_key is not None:
                    resolved: Optional[str] = info.class_key
                else:
                    core = _annotation_core(info.returns)
                    if not core:
                        continue
                    resolved = _resolve_class_name(
                        self.graph, info.module_name, core
                    )
                if resolved is not None and resolved not in out:
                    out.append(resolved)
            return tuple(out)
        attr = _self_attr(expr)
        if attr:
            cls = self._class_info()
            seen: Set[str] = set()
            stack = [cls.key] if cls is not None else []
            while stack:
                key = stack.pop(0)
                if key in seen:
                    continue
                seen.add(key)
                info = self.graph.classes.get(key)
                if info is None:
                    continue
                if attr in info.attr_types:
                    out: List[str] = []
                    for dotted in info.attr_types[attr]:
                        resolved = _resolve_class_name(
                            self.graph, info.module_name, dotted
                        )
                        if resolved is not None:
                            out.append(resolved)
                    return tuple(out)
                stack.extend(info.bases)
        return ()

    # -- lock identification --------------------------------------------

    def _lock_id(self, expr: ast.expr) -> Tuple[Optional[LockId], bool]:
        """(lock identity, cross_instance) for a lock expression."""
        attr = _self_attr(expr)
        if attr and self.info.class_key is not None:
            lock = self.graph.lock_for(self.info.class_key, attr)
            if lock is not None:
                return lock, False
        if isinstance(expr, ast.Name):
            kinds = self.graph.module_locks.get(self.info.module_name, {})
            if expr.id in kinds:
                return (self.info.module_name, expr.id), False
            # Local alias of a known lock type? Not tracked — unknown.
            return None, False
        if isinstance(expr, ast.Attribute) and not attr:
            # ``obj._lock`` on a typed receiver: cross-instance identity.
            for class_key in self._expr_types(expr.value):
                lock = self.graph.lock_for(class_key, expr.attr)
                if lock is not None:
                    return lock, True
        return None, False

    # -- traversal ------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            lock, cross = self._lock_id(item.context_expr)
            if lock is None:
                # Non-lock context managers may still contain calls
                # (evaluated with the earlier items' locks held).
                self.visit(item.context_expr)
                continue
            self._record_acquire(lock, item.context_expr, cross)
            self.held.append(lock)
            pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def _record_acquire(
        self, lock: LockId, expr: ast.expr, cross: bool
    ) -> None:
        self.info.acquires.append(
            AcquireEvent(
                lock=lock,
                line=expr.lineno,
                col=expr.col_offset,
                held=tuple(self.held),
                cross_instance=cross,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        ctor = _ctor_kind(node.value)
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)) and ctor:
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.var_kinds.setdefault(element.id, ctor)
                continue
            if not isinstance(target, ast.Name):
                continue
            if ctor is not None:
                self.var_kinds.setdefault(target.id, ctor)
            for dotted in _value_type_candidates(
                node.value, self.info.param_annotations
            ):
                resolved = _resolve_class_name(
                    self.graph, self.info.module_name, dotted
                )
                if resolved is not None:
                    existing = self.var_types.get(target.id, ())
                    if resolved not in existing:
                        self.var_types[target.id] = existing + (resolved,)
            if isinstance(node.value, ast.Call):
                # ``inc = self._ready_incarnation(...)`` — type the
                # binding from the callee's return annotation so method
                # calls on it resolve.  Witness traces caught this hole:
                # the supervisor's prepare/commit paths reach the
                # incarnation's send lock only through such a binding.
                for resolved in self._expr_types(node.value):
                    existing = self.var_types.get(target.id, ())
                    if resolved not in existing:
                        self.var_types[target.id] = existing + (resolved,)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # Manual ``x.acquire(...)`` counts as an acquisition event (the
        # held-region itself is not tracked; witness traces cover that).
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            lock, cross = self._lock_id(node.func.value)
            if lock is not None:
                self._record_acquire(lock, node.func, cross)

        block = self._classify_blocking(node)
        if block is not None:
            kind, text = block
            self.info.blocks.append(
                BlockEvent(
                    kind=kind,
                    line=node.lineno,
                    col=node.col_offset,
                    held=tuple(self.held),
                    text=text,
                )
            )

        callees = self._resolve_call(node)
        self._register_callbacks(node, callees)
        if callees:
            self.info.calls.append(
                CallEvent(
                    callees=callees,
                    line=node.lineno,
                    col=node.col_offset,
                    held=tuple(self.held),
                    text=_dotted(node.func) or "<call>",
                )
            )
        self.generic_visit(node)

    # Closures run later, usually off-lock: reset the held stack inside
    # (same conservative choice REP001 makes).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved, self.held = self.held, []
        self.generic_visit(node)
        self.held = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved, self.held = self.held, []
        self.generic_visit(node)
        self.held = saved

    def visit_Compare(self, node: ast.Compare) -> None:
        for operand in [node.left] + list(node.comparators):
            if isinstance(operand, ast.Attribute) and operand.attr == "epoch":
                self.info.epoch_compare = True
        self.generic_visit(node)

    # -- callback slots --------------------------------------------------

    def _register_callbacks(
        self, node: ast.Call, callees: Tuple[str, ...]
    ) -> None:
        """Record callables passed into ``Callable``-annotated ctor slots."""
        for callee in callees:
            info = self.graph.functions.get(callee)
            if info is None or info.name != "__init__":
                continue
            if info.class_key is None:
                continue
            cls = self.graph.classes.get(info.class_key)
            if cls is None or not cls.callback_params:
                continue
            params = (
                info.params[1:]
                if info.params[:1] in (("self",), ("cls",))
                else info.params
            )
            bindings: List[Tuple[str, ast.expr]] = [
                (params[idx], arg)
                for idx, arg in enumerate(node.args)
                if idx < len(params)
            ]
            bindings.extend(
                (kw.arg, kw.value) for kw in node.keywords if kw.arg
            )
            for name, value in bindings:
                attr = cls.callback_params.get(name)
                if attr is None:
                    continue
                target = self._callable_target(value)
                if target is None:
                    continue
                slot = (info.class_key, attr)
                existing = self.graph.callback_targets.get(slot, ())
                if target not in existing:
                    self.graph.callback_targets[slot] = existing + (target,)

    def _callable_target(self, expr: ast.expr) -> Optional[str]:
        """Function key of a callback argument (``self.m`` / local f)."""
        attr = _self_attr(expr)
        if attr and self.info.class_key is not None:
            return self.graph.resolve_method(self.info.class_key, attr)
        if isinstance(expr, ast.Name):
            mod = self.info.module_name
            local = f"{mod}:{expr.id}"
            if local in self.graph.functions:
                return local
            target = self.graph.imports.get(mod, {}).get(expr.id)
            if target:
                t_mod, _, t_name = target.rpartition(".")
                key = f"{t_mod}:{t_name}"
                if key in self.graph.functions:
                    return key
        return None

    # -- call resolution ------------------------------------------------

    def _resolve_call(self, node: ast.Call) -> Tuple[str, ...]:
        func = node.func
        graph = self.graph
        mod = self.info.module_name

        if isinstance(func, ast.Name):
            name = func.id
            local = f"{mod}:{name}"
            if local in graph.functions:
                return (local,)
            local_cls = f"{mod}:{name}"
            if local_cls in graph.classes:
                init = graph.resolve_method(local_cls, "__init__")
                return (init,) if init else ()
            target = graph.imports.get(mod, {}).get(name)
            if target:
                target_mod, _, target_name = target.rpartition(".")
                key = f"{target_mod}:{target_name}"
                if key in graph.functions:
                    return (key,)
                if key in graph.classes:
                    init = graph.resolve_method(key, "__init__")
                    return (init,) if init else ()
            return ()

        if not isinstance(func, ast.Attribute):
            return ()

        # super().m()
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self.info.class_key is not None
        ):
            cls = graph.classes.get(self.info.class_key)
            if cls is not None:
                for base in cls.bases:
                    found = graph.resolve_method(base, func.attr)
                    if found is not None:
                        return (found,)
            return ()

        # self.m() / cls.m()
        receiver_attr = _self_attr(func)
        if receiver_attr and self.info.class_key is not None:
            found = graph.resolve_method(self.info.class_key, receiver_attr)
            if found:
                return (found,)
            # ``self._on_adopt(...)``: not a method, so try the callback
            # slots — dispatch to every callable any constructor call
            # site registered into this attribute (MRO order).
            seen: Set[str] = set()
            stack = [self.info.class_key]
            while stack:
                key = stack.pop(0)
                if key in seen:
                    continue
                seen.add(key)
                targets = graph.callback_targets.get((key, receiver_attr))
                if targets:
                    return targets
                cls = graph.classes.get(key)
                if cls is not None:
                    stack.extend(cls.bases)
            return ()

        # mod.f() / mod.Class()
        dotted = _dotted(func.value)
        if dotted:
            table = graph.imports.get(mod, {})
            head, _, rest = dotted.partition(".")
            if head in table and not rest:
                base = table[head]
                key = f"{base}:{func.attr}"
                if key in graph.functions:
                    return (key,)
                cls_key = f"{base}:{func.attr}"
                if cls_key in graph.classes:
                    init = graph.resolve_method(cls_key, "__init__")
                    return (init,) if init else ()
                # mod.Class(...) handled; mod.obj.m() falls through.
            # ClassName.method(...) — unbound call through the class.
            cls_key2 = _resolve_class_name(graph, mod, dotted)
            if cls_key2 is not None:
                found = graph.resolve_method(cls_key2, func.attr)
                if found is not None:
                    return (found,)

        # obj.m() via inferred receiver type(s).
        out: List[str] = []
        for class_key in self._expr_types(func.value):
            found = graph.resolve_method(class_key, func.attr)
            if found is not None and found not in out:
                out.append(found)
        return tuple(out)

    # -- blocking classification ----------------------------------------

    def _classify_blocking(
        self, node: ast.Call
    ) -> Optional[Tuple[str, str]]:
        func = node.func
        text = _dotted(func) or "<call>"
        keywords = {kw.arg for kw in node.keywords if kw.arg}

        if isinstance(func, ast.Name):
            table = self.graph.imports.get(self.info.module_name, {})
            target = table.get(func.id, "")
            if target == "time.sleep" or (
                func.id == "sleep" and target.endswith("sleep")
            ):
                return "sleep", text
            if func.id == "SharedMemory" or target.endswith("SharedMemory"):
                return "shm-attach", text
            return None

        if not isinstance(func, ast.Attribute):
            return None

        attr = func.attr
        receiver = func.value
        recv_kind = self._expr_kind(receiver)
        recv_dotted = _dotted(receiver)

        if attr == "sleep" and recv_dotted == "time":
            return "sleep", text
        if attr == "SharedMemory" and recv_dotted.endswith("shared_memory"):
            return "shm-attach", text
        if recv_dotted == "subprocess" and attr in (
            "run",
            "call",
            "check_call",
            "check_output",
        ):
            return "subprocess", text

        if attr in ("send", "recv", "send_bytes", "recv_bytes"):
            if recv_kind == _KIND_PIPE:
                return f"pipe-{attr.split('_', 1)[0]}", text
            return None

        if attr == "join":
            if isinstance(receiver, ast.Constant):
                return None  # ", ".join(...)
            if recv_kind in (_KIND_THREAD, _KIND_PROCESS):
                return "join", text
            if not node.args and not node.keywords:
                # str.join always takes an argument; a bare .join() is a
                # thread/process join on an untyped receiver.
                return "join", text
            if "timeout" in keywords:
                return "join", text
            return None

        if attr == "start" and recv_kind == _KIND_PROCESS:
            # Spawning a worker pickles state and forks an interpreter —
            # tens of milliseconds minimum, unbounded under load.
            return "process-spawn", text

        if attr == "wait":
            if recv_kind == _KIND_PROCESS:
                return "subprocess", text
            lock, _ = self._lock_id(receiver)
            if lock is not None and lock in self.held:
                # Condition.wait() on the held condition *releases* it.
                return None
            return "wait", text

        if attr == "communicate":
            return "subprocess", text

        if attr == "result":
            if recv_kind == _KIND_FUTURE:
                return "future-wait", text
            return None

        if attr in ("get", "put"):
            if recv_kind != _KIND_QUEUE:
                return None
            for kw in node.keywords:
                if (
                    kw.arg == "block"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                ):
                    return None
            if attr == "get" and node.args:
                return None  # dict.get(key) shape
            return "queue", text

        return None


# ---------------------------------------------------------------------------
# Pass 3: fixed points and the lock graph
# ---------------------------------------------------------------------------


def _better_path(
    current: Optional[Tuple[str, ...]], candidate: Tuple[str, ...]
) -> bool:
    if current is None:
        return True
    return (len(candidate), candidate) < (len(current), current)


def _propagate(graph: ProjectGraph) -> None:
    """Compute transitive acquire/blocking summaries to a fixed point."""
    acquire_paths = graph.acquire_paths
    block_paths = graph.block_paths
    for key, info in graph.functions.items():
        own_a: Dict[LockId, Tuple[str, ...]] = {}
        for event in info.acquires:
            if event.lock not in own_a:
                own_a[event.lock] = (key,)
        acquire_paths[key] = own_a
        own_b: Dict[str, Tuple[Tuple[str, ...], int]] = {}
        for block in info.blocks:
            if block.kind not in own_b:
                own_b[block.kind] = ((key,), block.line)
        block_paths[key] = own_b

    changed = True
    while changed:
        changed = False
        for key in sorted(graph.functions):
            info = graph.functions[key]
            mine_a = acquire_paths[key]
            mine_b = block_paths[key]
            for call in info.calls:
                for callee in call.callees:
                    if callee == key:
                        continue
                    for lock, path in acquire_paths.get(callee, {}).items():
                        candidate = (key,) + path
                        if _better_path(mine_a.get(lock), candidate):
                            mine_a[lock] = candidate
                            changed = True
                    for kind, (path, line) in block_paths.get(
                        callee, {}
                    ).items():
                        candidate = (key,) + path
                        current = mine_b.get(kind)
                        if current is None or _better_path(
                            current[0], candidate
                        ):
                            mine_b[kind] = (candidate, line)
                            changed = True


def _build_edges(graph: ProjectGraph) -> None:
    """Derive the lock-order graph from events + transitive acquires."""

    def add_edge(
        src: LockId,
        dst: LockId,
        relpath: str,
        line: int,
        path: Tuple[str, ...],
    ) -> None:
        if src == dst:
            return
        key = (src, dst)
        existing = graph.edges.get(key)
        candidate = LockEdge(
            src=src, dst=dst, relpath=relpath, line=line, path=path
        )
        if existing is None or (
            (len(candidate.path), candidate.relpath, candidate.line)
            < (len(existing.path), existing.relpath, existing.line)
        ):
            graph.edges[key] = candidate

    for key in sorted(graph.functions):
        info = graph.functions[key]
        for event in info.acquires:
            for held in event.held:
                if held == event.lock and (
                    event.cross_instance
                    or graph.lock_kinds.get(event.lock) in _REENTRANT_KINDS
                ):
                    # Reentrant re-take or a sibling instance's lock of
                    # the same class: not a self-deadlock edge.
                    continue
                add_edge(held, event.lock, info.relpath, event.line, (key,))
        for call in info.calls:
            if not call.held:
                continue
            for callee in call.callees:
                for lock, path in graph.acquire_paths.get(
                    callee, {}
                ).items():
                    for held in call.held:
                        if held == lock:
                            # Same identity through a call chain: only a
                            # cycle for non-reentrant kinds, and those
                            # are handled by the acquire-event pass when
                            # the chain stays on ``self``.  Through calls
                            # the receiver is usually another instance —
                            # skip rather than guess.
                            continue
                        add_edge(
                            held,
                            lock,
                            info.relpath,
                            call.line,
                            (key,) + path,
                        )


def build_graph(project: ProjectContext) -> ProjectGraph:
    """Assemble (or fetch the cached) graph for ``project``."""
    cached = _CACHE.get(id(project))
    if cached is not None and cached[0] is project:
        return cached[1]

    graph = ProjectGraph()
    modules = [
        m for m in project.modules if m.module_name.startswith("repro")
    ]
    for module in modules:
        _collect_symbols(graph, module)
    _resolve_bases(graph)

    # Two walk rounds: the first discovers callback registrations
    # (``on_adopt=self._m`` at constructor call sites); the second
    # re-walks with the slot table populated so calls *through* the
    # stored callbacks resolve.  Skipped when nothing registered.
    for walk_round in (1, 2):
        for module in modules:
            for node in module.tree.body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    key = f"{module.module_name}:{node.name}"
                    _walk_function(graph, module, key, node)
                elif isinstance(node, ast.ClassDef):
                    class_key = f"{module.module_name}:{node.name}"
                    for stmt in node.body:
                        if isinstance(
                            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            key = f"{class_key}.{stmt.name}"
                            _walk_function(graph, module, key, stmt)
        if walk_round == 1:
            if not graph.callback_targets:
                break
            for info in graph.functions.values():
                info.acquires.clear()
                info.calls.clear()
                info.blocks.clear()
                info.epoch_compare = False

    _propagate(graph)
    _build_edges(graph)
    _CACHE[id(project)] = (project, graph)
    if len(_CACHE) > 4:  # keep the cache from growing across many runs
        for stale in list(_CACHE)[:-4]:
            del _CACHE[stale]
    return graph


_CACHE: Dict[int, Tuple[ProjectContext, ProjectGraph]] = {}


def _walk_function(
    graph: ProjectGraph,
    module: ModuleContext,
    key: str,
    node: ast.FunctionDef,
) -> None:
    info = graph.functions.get(key)
    if info is None:  # pragma: no cover - registration covers all keys
        return
    walker = _FunctionWalker(graph, module, info)
    for stmt in node.body:
        walker.visit(stmt)


# ---------------------------------------------------------------------------
# DOT export
# ---------------------------------------------------------------------------


def render_dot(
    graph: ProjectGraph, observed: Optional[Iterable[Tuple[LockId, LockId]]] = None
) -> str:
    """The lock-order graph in Graphviz DOT form.

    Static edges are solid; edges in ``observed`` (witness traces) that
    the static graph also knows are bold; cycle edges are red.
    """
    observed_set: Set[Tuple[LockId, LockId]] = set(observed or ())
    cycle_edges: Set[Tuple[LockId, LockId]] = set()
    for cycle in graph.cycles():
        if len(cycle) == 1:
            cycle_edges.add((cycle[0], cycle[0]))
            continue
        for src in cycle:
            for dst in cycle:
                if src != dst and (src, dst) in graph.edges:
                    cycle_edges.add((src, dst))

    nodes: Set[LockId] = set()
    for src, dst in graph.edges:
        nodes.add(src)
        nodes.add(dst)

    def node_id(lock: LockId) -> str:
        return f'"{lock[0]}.{lock[1]}"'

    lines = [
        "digraph lock_order {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="Helvetica", fontsize=10];',
        '  edge [fontname="Helvetica", fontsize=8];',
    ]
    for lock in sorted(nodes):
        kind = graph.lock_kinds.get(lock, "Lock")
        lines.append(
            f"  {node_id(lock)} [label=\"{lock_label(lock)}\\n"
            f"{lock[0].split(':', 1)[0]} ({kind})\"];"
        )
    for (src, dst) in sorted(graph.edges):
        edge = graph.edges[(src, dst)]
        attrs = [f'label="{edge.relpath.rsplit("/", 1)[-1]}:{edge.line}"']
        if (src, dst) in cycle_edges:
            attrs.append("color=red")
            attrs.append("penwidth=2")
        if (src, dst) in observed_set:
            attrs.append("style=bold")
        lines.append(
            f"  {node_id(src)} -> {node_id(dst)} [{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def witness_chain(path: Sequence[str]) -> str:
    """Render a function-key chain for a finding message."""
    return " -> ".join(part.split(":", 1)[-1] for part in path)
