"""Reachability and evacuation-safety analysis.

Directed reachability over the accessibility graph answers questions the
paper's emergency-response motivation raises: which partitions can reach an
exit at all?  One-way doors (security gates) and temporal closures make the
answer non-trivial — a room can be enterable yet offer no way out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set, Tuple

from collections import deque

from repro.exceptions import UnknownEntityError
from repro.model.builder import IndoorSpace


def partitions_that_can_reach(
    space: IndoorSpace, targets: Iterable[int]
) -> FrozenSet[int]:
    """All partitions from which at least one of ``targets`` is reachable
    (respecting door directionality); includes the targets themselves."""
    target_set = set(targets)
    for target in target_set:
        if not space.topology.has_partition(target):
            raise UnknownEntityError("partition", target)
    # Backward BFS over the accessibility graph's reversed edges.
    graph = space.accessibility
    seen: Set[int] = set(target_set)
    queue = deque(target_set)
    while queue:
        current = queue.popleft()
        for edge in graph.in_edges(current):
            if edge.source not in seen:
                seen.add(edge.source)
                queue.append(edge.source)
    return frozenset(seen)


def trapped_partitions(
    space: IndoorSpace, exits: Iterable[int]
) -> FrozenSet[int]:
    """Partitions from which *no* exit partition can be reached."""
    safe = partitions_that_can_reach(space, exits)
    return frozenset(set(space.partition_ids) - safe)


@dataclass(frozen=True)
class EvacuationReport:
    """Outcome of an evacuation-safety analysis.

    Attributes:
        exits: the designated exit partitions.
        safe: partitions with a route to some exit.
        trapped: partitions with no route to any exit.
    """

    exits: Tuple[int, ...]
    safe: Tuple[int, ...]
    trapped: Tuple[int, ...]

    @property
    def is_safe(self) -> bool:
        """True when every partition can reach an exit."""
        return not self.trapped


def evacuation_report(
    space: IndoorSpace, exits: Iterable[int]
) -> EvacuationReport:
    """Classify every partition as safe or trapped w.r.t. the given exits."""
    exit_tuple = tuple(sorted(set(exits)))
    safe = partitions_that_can_reach(space, exit_tuple)
    trapped = set(space.partition_ids) - safe
    return EvacuationReport(
        exits=exit_tuple,
        safe=tuple(sorted(safe)),
        trapped=tuple(sorted(trapped)),
    )
