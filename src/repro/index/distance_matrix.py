"""M_d2d and M_idx: the base indexing structure of §IV-A.

``M_d2d`` stores every door-to-door minimum walking distance; it is generally
asymmetric because of directional doors (the paper's Figure-3 remark).
``M_idx`` is the Distance Index Matrix: row ``d_i`` lists *door ids* in
non-descending order of ``M_d2d[d_i, ·]``, so query processing can scan a
door's neighbourhood nearest-first and stop as soon as a distance exceeds the
query bound — the with/without-M_idx comparison is Figures 8 and 9's central
experiment.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.distance.matrix import (
    DoorDistanceMatrix,
    build_distance_matrix,
    build_distance_matrix_reference,
)
from repro.exceptions import UnknownEntityError
from repro.model.distance_graph import DistanceAwareGraph


class DistanceIndexMatrix:
    """The pair (M_d2d, M_idx) plus id/index bookkeeping.

    Rows and columns are ordered by ascending door id.  ``M_idx`` is stored
    as integer *matrix indices* internally and translated to door ids at the
    API boundary, matching the paper's presentation (Figure 4 shows door
    ids).
    """

    #: Backend name for :class:`repro.index.backend.DistanceBackend`.
    kind = "matrix"

    def __init__(self, distances: DoorDistanceMatrix) -> None:
        self._distances = distances
        # argsort is stable, so equal distances order by ascending door id —
        # deterministic, which tests rely on.
        self._order = np.argsort(distances.matrix, axis=1, kind="stable")
        self._index_of: Dict[int, int] = dict(distances.index_of)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, graph: DistanceAwareGraph, reference: bool = False
    ) -> "DistanceIndexMatrix":
        """Compute M_d2d with Algorithm 1 (or the bulk builder) and derive
        M_idx from it.

        Args:
            graph: the distance-aware graph.
            reference: use the paper-faithful per-door Algorithm 1 builder
                instead of the fast bulk builder (both produce identical
                matrices; the reference exists for validation).
        """
        distances = (
            build_distance_matrix_reference(graph)
            if reference
            else build_distance_matrix(graph)
        )
        return cls(distances)

    @classmethod
    def from_parts(
        cls, distances: DoorDistanceMatrix, order: np.ndarray
    ) -> "DistanceIndexMatrix":
        """Assemble from a prebuilt (M_d2d, M_idx) pair without re-sorting.

        The shared-memory fast-restart path of :mod:`repro.shard.shm`: a
        respawned worker attaches read-only views of both matrices and must
        not pay the O(N² log N) argsort again.  ``order`` must hold matrix
        indices shaped exactly like M_d2d.
        """
        if order.shape != distances.matrix.shape:
            raise ValueError(
                f"scan order shape {order.shape} does not match "
                f"M_d2d shape {distances.matrix.shape}"
            )
        self = cls.__new__(cls)
        self._distances = distances
        self._order = order
        self._index_of = dict(distances.index_of)
        return self

    # ------------------------------------------------------------------
    # M_d2d access
    # ------------------------------------------------------------------
    @property
    def door_ids(self) -> Tuple[int, ...]:
        """Ascending door ids labelling rows and columns."""
        return self._distances.door_ids

    @property
    def size(self) -> int:
        """Number of doors N."""
        return self._distances.size

    @property
    def md2d(self) -> np.ndarray:
        """The raw N×N distance matrix (row/column order = ``door_ids``)."""
        return self._distances.matrix

    def distance(self, from_door: int, to_door: int) -> float:
        """M_d2d[d_i, d_j] by door id."""
        try:
            i = self._index_of[from_door]
            j = self._index_of[to_door]
        except KeyError as exc:
            raise UnknownEntityError("door", exc.args[0]) from None
        return float(self._distances.matrix[i, j])

    # ------------------------------------------------------------------
    # M_idx access
    # ------------------------------------------------------------------
    @property
    def scan_order(self) -> np.ndarray:
        """The raw N×N ordering: row i holds *matrix indices* sorted by
        ascending M_d2d[i, ·].  Integrity checks use it to verify that the
        matrix and its index still agree (each row gathered in this order
        must be non-descending — true by construction, broken by any
        in-place tampering with M_d2d values)."""
        return self._order

    @property
    def midx(self) -> np.ndarray:
        """The raw N×N index matrix: row i holds door *ids* sorted by
        ascending distance from ``door_ids[i]``."""
        ids = np.asarray(self._distances.door_ids)
        return ids[self._order]

    def doors_by_distance(
        self, from_door: int, max_distance: Optional[float] = None
    ) -> Iterator[Tuple[int, float]]:
        """Yield ``(door_id, distance)`` in non-descending distance order
        from ``from_door`` — the sorted scan the range/kNN algorithms run.

        Stops before yielding any door farther than ``max_distance`` (and
        always skips unreachable, infinite-distance doors), mirroring the
        early-termination check of Algorithm 5 lines 7-8.
        """
        try:
            i = self._index_of[from_door]
        except KeyError:
            raise UnknownEntityError("door", from_door) from None
        matrix = self._distances.matrix
        ids = self._distances.door_ids
        for j in self._order[i]:
            dist = float(matrix[i, j])
            if math.isinf(dist):
                break
            if max_distance is not None and dist > max_distance:
                break
            yield ids[j], dist

    def doors_unsorted(
        self, from_door: int
    ) -> Iterator[Tuple[int, float]]:
        """Yield ``(door_id, distance)`` in plain door-id order — the
        "without d2d index" baseline of §VI-B, which must scan the whole
        M_d2d row because no cutoff is possible."""
        try:
            i = self._index_of[from_door]
        except KeyError:
            raise UnknownEntityError("door", from_door) from None
        matrix = self._distances.matrix
        for j, door_id in enumerate(self._distances.door_ids):
            dist = float(matrix[i, j])
            if math.isinf(dist):
                continue
            yield door_id, dist

    def nearest_doors(self, from_door: int, k: int) -> Tuple[Tuple[int, float], ...]:
        """The k nearest doors (by walking distance) from ``from_door``,
        nearest first — a convenience view over M_idx."""
        result = []
        for door_id, dist in self.doors_by_distance(from_door):
            result.append((door_id, dist))
            if len(result) == k:
                break
        return tuple(result)

    def min_distance_between(
        self, from_doors: Sequence[int], to_doors: Sequence[int]
    ) -> float:
        """Minimum M_d2d entry over the ``from_doors`` × ``to_doors``
        rectangle — the scatter-gather shard-pruning lower bound."""
        try:
            rows = [self._index_of[d] for d in from_doors]
            cols = [self._index_of[d] for d in to_doors]
        except KeyError as exc:
            raise UnknownEntityError("door", exc.args[0]) from None
        if not rows or not cols:
            return math.inf
        return float(self._distances.matrix[np.ix_(rows, cols)].min())

    def memory_bytes(self) -> int:
        """Approximate memory footprint of M_d2d + M_idx, for the §VI-B
        storage-size accounting."""
        return int(self._distances.matrix.nbytes + self._order.nbytes)

    def memory_report(self) -> dict:
        """Per-component byte accounting (dense backend: the two N×N
        matrices dominate everything else)."""
        return {
            "md2d_bytes": int(self._distances.matrix.nbytes),
            "midx_bytes": int(self._order.nbytes),
        }
