"""A lightweight, dependency-free metrics registry for the serving layer.

Counters and latency histograms, thread-safe, snapshotted as one plain
dict so benchmarks, tests, and operators all read the same numbers.  The
histogram keeps a bounded window of the most recent observations (plus
exact running count / sum / max), so long-running services get recent
percentiles at fixed memory cost.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

#: Default number of most-recent samples a histogram retains.
DEFAULT_WINDOW = 8192


class Counter:
    """A named, thread-safe, monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value


class LatencyHistogram:
    """Latency observations with percentile snapshots over a recent window.

    The window (``maxlen`` most recent samples) bounds memory; ``count``,
    ``total`` and ``max`` are exact over the full lifetime.
    """

    def __init__(self, name: str, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"histogram window must be >= 1, got {window}")
        self.name = name
        self._samples: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value_ms: float) -> None:
        """Record one latency observation, in milliseconds."""
        with self._lock:
            self._samples.append(value_ms)
            self._count += 1
            self._total += value_ms
            if value_ms > self._max:
                self._max = value_ms

    @property
    def count(self) -> int:
        """Total number of observations ever recorded."""
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """The nearest-rank ``q``-th percentile (0 < q <= 100) over the
        retained window; 0.0 when empty."""
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
            rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
            return ordered[int(rank) - 1]

    def state(self) -> Dict[str, object]:
        """A deep copy of the histogram's raw state, taken atomically.

        The window is copied into a fresh list under the lock, so the
        caller's view cannot shear against concurrent :meth:`observe`
        calls (a deque being appended to while sorted elsewhere) — and
        the (possibly expensive) percentile sort runs *outside* the lock,
        off the request path.
        """
        with self._lock:
            return {
                "samples": list(self._samples),
                "count": self._count,
                "total": self._total,
                "max": self._max,
            }

    def snapshot(self) -> Dict[str, float]:
        """count / mean / p50 / p95 / p99 / max as one plain dict.

        Computed from an atomically deep-copied :meth:`state`, so a bench
        thread snapshotting mid-record sees one consistent window and
        never holds the lock through the sort.
        """
        state = self.state()
        ordered = sorted(state["samples"])
        count = state["count"]

        def rank(q: float) -> float:
            if not ordered:
                return 0.0
            position = max(1, -(-len(ordered) * q // 100))
            return ordered[int(position) - 1]

        return {
            "count": count,
            "mean_ms": state["total"] / count if count else 0.0,
            "p50_ms": rank(50),
            "p95_ms": rank(95),
            "p99_ms": rank(99),
            "max_ms": state["max"],
        }


class MetricsRegistry:
    """Process-local registry of named counters and latency histograms.

    ``counter`` / ``histogram`` get-or-create lazily, so instrumentation
    points never need registration boilerplate; :meth:`snapshot` renders
    everything as one dict for JSON emission.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(
        self, name: str, window: Optional[int] = None
    ) -> LatencyHistogram:
        """The histogram registered under ``name`` (created on first use)."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = LatencyHistogram(
                    name, window or DEFAULT_WINDOW
                )
            return self._histograms[name]

    def increment(self, name: str, amount: int = 1) -> None:
        """Convenience: bump the counter called ``name``."""
        self.counter(name).increment(amount)

    def observe(self, name: str, value_ms: float) -> None:
        """Convenience: record a latency sample on histogram ``name``."""
        self.histogram(name).observe(value_ms)

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A prefixing view over this registry.

        Everything recorded through the view lands in *this* registry
        under ``<prefix>.<name>`` — how the sharded tier namespaces one
        shard's serving metrics (``shard.2.serve.latency_ms``) while a
        single snapshot still covers the whole fleet.
        """
        return ScopedMetrics(self, prefix)

    def snapshot(self) -> Dict[str, Dict]:
        """All counters and histogram summaries as one plain dict."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "latency": {
                n: h.snapshot() for n, h in sorted(histograms.items())
            },
        }


class ScopedMetrics:
    """A registry view that prefixes every metric name (no own storage).

    Exposes the same recording surface as :class:`MetricsRegistry`
    (``counter`` / ``histogram`` / ``increment`` / ``observe``), so
    instrumented code can take either interchangeably.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        if not prefix:
            raise ValueError("scoped metrics need a non-empty prefix")
        self._registry = registry
        self._prefix = prefix

    def _scoped(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str) -> Counter:
        """The registry's counter for the prefixed name."""
        return self._registry.counter(self._scoped(name))

    def histogram(
        self, name: str, window: Optional[int] = None
    ) -> LatencyHistogram:
        """The registry's histogram for the prefixed name."""
        return self._registry.histogram(self._scoped(name), window)

    def increment(self, name: str, amount: int = 1) -> None:
        """Increment the prefixed counter by ``amount``."""
        self._registry.increment(self._scoped(name), amount)

    def observe(self, name: str, value_ms: float) -> None:
        """Record one sample into the prefixed histogram."""
        self._registry.observe(self._scoped(name), value_ms)

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """Nest a further prefix under this one."""
        return ScopedMetrics(self._registry, self._scoped(prefix))
