"""Tests for indoor trajectories and session playback."""

import pytest

from repro import IndoorObject, Point, QueryEngine, pt2pt_path
from repro.exceptions import QueryError
from repro.model.figure1 import P, Q, build_figure1
from repro.tracking import IndoorTrajectory, TrackingSession, drive_session
from repro.tracking.monitors import EventKind


@pytest.fixture(scope="module")
def space():
    return build_figure1()


@pytest.fixture(scope="module")
def p_to_q(space):
    return pt2pt_path(space, P, Q)


class TestConstruction:
    def test_from_path_endpoints(self, space, p_to_q):
        trajectory = IndoorTrajectory.from_path(space, p_to_q, start_time=10.0)
        assert trajectory.waypoints[0] == P
        assert trajectory.waypoints[-1] == Q
        assert trajectory.start_time == 10.0

    def test_duration_matches_distance_over_speed(self, space, p_to_q):
        trajectory = IndoorTrajectory.from_path(space, p_to_q, speed=2.0)
        assert trajectory.duration == pytest.approx(p_to_q.distance / 2.0)

    def test_invalid_inputs(self, space, p_to_q):
        import math

        from repro.distance.path import IndoorPath

        with pytest.raises(QueryError):
            IndoorTrajectory.from_path(space, p_to_q, speed=0)
        dead = IndoorPath(math.inf, P, Q, (), ())
        with pytest.raises(QueryError):
            IndoorTrajectory.from_path(space, dead)
        with pytest.raises(QueryError):
            IndoorTrajectory((P,), (1.0, 2.0))
        with pytest.raises(QueryError):
            IndoorTrajectory((P, Q), (2.0, 2.0))


class TestPlayback:
    def test_position_clamps_outside_span(self, space, p_to_q):
        trajectory = IndoorTrajectory.from_path(space, p_to_q)
        assert trajectory.position_at(-5.0) == P
        assert trajectory.position_at(trajectory.end_time + 5.0) == Q

    def test_midpoint_of_first_leg(self, space):
        path = pt2pt_path(space, Point(6.5, 7.0), Point(9.5, 7.0))
        trajectory = IndoorTrajectory.from_path(space, path, speed=1.0)
        halfway = trajectory.position_at(1.5)
        assert halfway.approx_equals(Point(8.0, 7.0), tol=1e-9)

    def test_positions_are_always_indoor(self, space, p_to_q):
        trajectory = IndoorTrajectory.from_path(space, p_to_q)
        steps = 20
        for i in range(steps + 1):
            t = trajectory.start_time + trajectory.duration * i / steps
            position = trajectory.position_at(t)
            assert space.get_host_partition(position) is not None, (t, position)

    def test_monotone_progress_toward_target(self, space, p_to_q):
        trajectory = IndoorTrajectory.from_path(space, p_to_q)
        # Remaining time decreases, so the final waypoint is reached exactly.
        assert trajectory.position_at(trajectory.end_time) == Q


class TestDriveSession:
    def test_walker_triggers_monitor_events(self, space, p_to_q):
        engine = QueryEngine.for_space(build_figure1())
        engine.add_object(IndoorObject(1, P))
        session = TrackingSession(engine)
        watch = session.watch_range(Q, radius=2.0)
        assert watch.result == []  # the walker starts far from q

        trajectory = IndoorTrajectory.from_path(space, p_to_q, speed=1.0)
        times = drive_session(session, {1: trajectory}, tick=0.25)
        assert len(times) >= 4
        assert watch.result == [1]
        kinds = [event.kind for event in watch.events]
        assert EventKind.ENTER in kinds

    def test_tick_validation(self, space, p_to_q):
        engine = QueryEngine.for_space(build_figure1())
        engine.add_object(IndoorObject(1, P))
        session = TrackingSession(engine)
        trajectory = IndoorTrajectory.from_path(space, p_to_q)
        with pytest.raises(QueryError):
            drive_session(session, {1: trajectory}, tick=0)

    def test_empty_trajectories(self):
        engine = QueryEngine.for_space(build_figure1())
        session = TrackingSession(engine)
        assert drive_session(session, {}, tick=1.0) == []

    def test_multi_floor_trajectory(self):
        from repro.synthetic import BuildingConfig, generate_building

        building = generate_building(BuildingConfig(floors=2, rooms_per_floor=4))
        space = building.space
        path = pt2pt_path(space, Point(2.5, 2.0, 0), Point(2.5, 2.0, 1))
        trajectory = IndoorTrajectory.from_path(space, path)
        for i in range(11):
            t = trajectory.start_time + trajectory.duration * i / 10
            position = trajectory.position_at(t)
            assert space.get_host_partition(position) is not None
        assert trajectory.position_at(trajectory.end_time).floor == 1
