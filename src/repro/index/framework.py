"""The assembled indexing framework the query algorithms run on (§IV-V).

:class:`IndexFramework` bundles, for one indoor space:

* the distance-aware graph G_dist (with f_dv / f_d2d precomputed),
* the Door-to-Door Distance Matrix M_d2d and Distance Index Matrix M_idx,
* the Door-to-Partition Table,
* the partition R-tree (installed as the space's ``getHostPartition``
  backend), and
* the per-partition grid-indexed object buckets.

Everything lives in main memory, as in the paper's experiments.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.exceptions import StaleIndexError
from repro.index.backend import DistanceBackend, validate_backend
from repro.index.distance_matrix import DistanceIndexMatrix
from repro.index.dpt import DoorPartitionTable
from repro.index.objects import DEFAULT_CELL_SIZE, IndoorObject, ObjectStore
from repro.index.rtree import PartitionRTree
from repro.model.builder import IndoorSpace


class IndexFramework:
    """All §IV index structures for one indoor space.

    Build with :meth:`build`; hand the instance to
    :class:`repro.queries.engine.QueryEngine`.
    """

    def __init__(
        self,
        space: IndoorSpace,
        distance_index: DistanceBackend,
        dpt: DoorPartitionTable,
        rtree: PartitionRTree,
        objects: ObjectStore,
    ) -> None:
        self.space = space
        self.distance_index = distance_index
        self.dpt = dpt
        self.rtree = rtree
        self.objects = objects
        #: Topology epoch of ``space`` at the moment the indexes were built;
        #: compared against ``space.topology_epoch`` by :meth:`check_fresh`.
        self.built_epoch = space.topology_epoch
        #: How :meth:`build` was parameterised; :meth:`rebuild` replays it
        #: so a rebuilt framework keeps its backend and builder choices.
        self.build_config = {
            "backend": getattr(distance_index, "kind", "matrix"),
            "reference_matrix": False,
        }

    @classmethod
    def build(
        cls,
        space: IndoorSpace,
        objects: Optional[Iterable[IndoorObject]] = None,
        cell_size: float = DEFAULT_CELL_SIZE,
        reference_matrix: bool = False,
        backend: str = "matrix",
    ) -> "IndexFramework":
        """Precompute every index structure for ``space``.

        Args:
            space: the indoor space to index.
            objects: initial objects to load into the buckets.
            cell_size: grid cell edge for the per-partition object index.
            reference_matrix: build M_d2d with the paper-faithful per-door
                Algorithm 1 instead of the fast bulk builder (validation
                only; identical result; matrix backend only).
            backend: distance backend — ``"matrix"`` for the dense
                M_d2d / M_idx pair of §IV, ``"labels"`` for the 2-hop
                labeling of :mod:`repro.labels` (bit-identical answers,
                O(label entries) instead of O(N²) resident bytes).
        """
        validate_backend(backend)
        if reference_matrix and backend != "matrix":
            raise ValueError(
                "reference_matrix only applies to the matrix backend"
            )
        graph = space.distance_graph
        graph.precompute()
        if backend == "labels":
            from repro.labels import LabeledDistanceIndex

            distance_index: DistanceBackend = LabeledDistanceIndex.build(graph)
        else:
            distance_index = DistanceIndexMatrix.build(
                graph, reference=reference_matrix
            )
        dpt = DoorPartitionTable.build(graph)
        rtree = PartitionRTree(space).install()
        store = ObjectStore(space, cell_size)
        if objects is not None:
            store.add_all(objects)
        framework = cls(space, distance_index, dpt, rtree, store)
        framework.build_config = {
            "backend": backend,
            "reference_matrix": reference_matrix,
        }
        return framework

    def with_objects(self, store: ObjectStore) -> "IndexFramework":
        """A framework sharing this one's static indexes (matrix, DPT,
        R-tree) but holding a different object store.

        Floor plans are static while object populations vary, so benchmarks
        reuse the expensive door-distance matrix across object cardinalities
        exactly as a deployed system would.
        """
        derived = IndexFramework(
            self.space, self.distance_index, self.dpt, self.rtree, store
        )
        # The shared static indexes are exactly as fresh as this framework's,
        # regardless of what the space's epoch says right now.
        derived.built_epoch = self.built_epoch
        derived.build_config = dict(self.build_config)
        return derived

    # ------------------------------------------------------------------
    # Staleness epochs
    # ------------------------------------------------------------------
    @property
    def is_fresh(self) -> bool:
        """True while the space has not mutated since the indexes were built."""
        return self.built_epoch == self.space.topology_epoch

    def check_fresh(self) -> None:
        """Raise :class:`~repro.exceptions.StaleIndexError` when the space
        topology mutated after this framework was built.

        Every indexed query calls this on entry, so a stale M_d2d / DPT can
        never silently answer for a changed building.
        """
        current = self.space.topology_epoch
        if self.built_epoch != current:
            raise StaleIndexError(
                f"index built at topology epoch {self.built_epoch} but the "
                f"space is now at epoch {current}; rebuild the framework",
                built_epoch=self.built_epoch,
                current_epoch=current,
            )

    def rebuild(self) -> "IndexFramework":
        """Recompute every index structure against the space's current
        topology, carrying the object population over — **and** the build
        configuration: a labels-backed (or reference-matrix) framework
        rebuilds with the same backend instead of silently reverting to
        the fast dense matrix.

        Returns a fresh framework; the original is left untouched so callers
        can swap atomically.
        """
        return IndexFramework.build(
            self.space,
            list(self.objects),
            self.objects.cell_size,
            reference_matrix=bool(self.build_config.get("reference_matrix")),
            backend=str(self.build_config.get("backend", "matrix")),
        )

    @property
    def graph(self):
        """The distance-aware graph G_dist."""
        return self.space.distance_graph

    def memory_report(self) -> dict:
        """Sizes of the main-memory structures, in bytes, mirroring the
        paper's §VI-B accounting (matrix backend: N×N×8 for distances plus
        N×N×8 for the index ordering as stored; DPT: 28 bytes per record).

        ``backend_bytes`` breaks the distance structure down per component
        (labels vs corrections vs patches for the labeled backend), so
        dense and labeled footprints are directly comparable.
        """
        return {
            "doors": self.distance_index.size,
            "backend": getattr(self.distance_index, "kind", "matrix"),
            "matrix_bytes": self.distance_index.memory_bytes(),
            "backend_bytes": self.distance_index.memory_report(),
            "dpt_bytes": self.dpt.memory_bytes(),
            "objects": len(self.objects),
        }
