"""Temporal door-state extension (paper §VII, future work).

"Some doors in a building may be open only during particular periods of
time.  Accordingly, an indoor space model must be able to return
corresponding indoor distances for different time points."

:class:`DoorSchedule` attaches open intervals to doors;
:class:`TemporalIndoorSpace` materialises, per queried time point, a
snapshot indoor space containing only the then-open doors (sharing all
partition geometry), over which every distance algorithm and query of the
core library runs unchanged.  Snapshots are cached by open-door set, so a
schedule with a handful of regimes (day/night, security lockdown) costs a
handful of graphs.
"""

from repro.temporal.schedule import DoorSchedule, TimeInterval
from repro.temporal.temporal_space import TemporalIndoorSpace
from repro.temporal.engine import TemporalQueryEngine

__all__ = [
    "TimeInterval",
    "DoorSchedule",
    "TemporalIndoorSpace",
    "TemporalQueryEngine",
]
