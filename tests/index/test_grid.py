"""Tests for the per-partition uniform grid object index (§V-B)."""

import math
import random

import pytest

from repro.exceptions import ModelError
from repro.geometry import Point, rectangle
from repro.index import PartitionGrid
from repro.model import Partition, PartitionKind


@pytest.fixture
def room():
    return Partition(1, rectangle(0, 0, 20, 10))


@pytest.fixture
def grid(room):
    return PartitionGrid(room, cell_size=2.0)


def fill_random(grid, count, seed=0):
    rng = random.Random(seed)
    positions = {}
    for object_id in range(count):
        p = Point(rng.uniform(0, 20), rng.uniform(0, 10))
        grid.insert(object_id, p)
        positions[object_id] = p
    return positions


class TestMaintenance:
    def test_insert_remove_roundtrip(self, grid):
        grid.insert(1, Point(3, 3))
        assert len(grid) == 1
        assert grid.position_of(1) == Point(3, 3)
        assert grid.remove(1) == Point(3, 3)
        assert len(grid) == 0
        assert grid.occupied_cells == 0

    def test_duplicate_insert_raises(self, grid):
        grid.insert(1, Point(3, 3))
        with pytest.raises(ModelError):
            grid.insert(1, Point(4, 4))

    def test_remove_missing_raises(self, grid):
        with pytest.raises(ModelError):
            grid.remove(42)

    def test_invalid_cell_size_raises(self, room):
        with pytest.raises(ModelError):
            PartitionGrid(room, cell_size=0)

    def test_occupied_cells_grow_and_shrink(self, grid):
        grid.insert(1, Point(0.5, 0.5))
        grid.insert(2, Point(0.7, 0.7))  # same cell
        grid.insert(3, Point(9, 9))
        assert grid.occupied_cells == 2
        grid.remove(2)
        assert grid.occupied_cells == 2
        grid.remove(1)
        assert grid.occupied_cells == 1

    def test_object_ids_and_iteration(self, grid):
        grid.insert(5, Point(1, 1))
        grid.insert(7, Point(2, 2))
        assert set(grid.object_ids()) == {5, 7}
        assert dict(grid.all_within()) == {5: Point(1, 1), 7: Point(2, 2)}


class TestRangeSearch:
    def test_matches_brute_force(self, grid):
        positions = fill_random(grid, 200, seed=1)
        anchor = Point(10, 5)
        for radius in (0.5, 2.0, 5.0, 30.0):
            expected = {
                oid: anchor.distance_to(p)
                for oid, p in positions.items()
                if anchor.distance_to(p) <= radius
            }
            got = dict(grid.range_search(anchor, radius))
            assert got.keys() == expected.keys()
            for oid, dist in got.items():
                assert dist == pytest.approx(expected[oid])

    def test_zero_radius_finds_colocated_object(self, grid):
        grid.insert(1, Point(4, 4))
        assert grid.range_search(Point(4, 4), 0.0) == [(1, 0.0)]

    def test_negative_radius_is_empty(self, grid):
        grid.insert(1, Point(4, 4))
        assert grid.range_search(Point(4, 4), -1.0) == []

    def test_anchor_at_door_position(self, grid):
        # Queries anchor range searches at door midpoints on the boundary.
        grid.insert(1, Point(1, 1))
        results = grid.range_search(Point(0, 0), 2.0)
        assert results == [(1, pytest.approx(math.sqrt(2)))]

    def test_obstacle_partition_uses_walking_distance(self):
        room = Partition(
            1, rectangle(0, 0, 20, 10), obstacles=(rectangle(9, 0.5, 11, 9.5),)
        )
        grid = PartitionGrid(room, cell_size=2.0)
        grid.insert(1, Point(15, 6))
        anchor = Point(5, 6)
        euclidean = anchor.distance_to(Point(15, 6))
        # Walking must round the obstacle's bottom corners.
        results = dict(grid.range_search(anchor, 30.0))
        assert results[1] > euclidean + 1.0
        # A radius between the Euclidean and walking distance excludes it.
        assert grid.range_search(anchor, euclidean + 0.5) == []


class TestNnSearch:
    def test_matches_brute_force_for_various_k(self, grid):
        positions = fill_random(grid, 150, seed=2)
        anchor = Point(3, 3)
        by_distance = sorted(
            (anchor.distance_to(p), oid) for oid, p in positions.items()
        )
        for k in (1, 5, 20):
            got = grid.nn_search(anchor, k=k)
            assert len(got) == k
            for (_oid, dist), (exp_dist, _exp_oid) in zip(got, by_distance):
                assert dist == pytest.approx(exp_dist)

    def test_bound_excludes_far_objects(self, grid):
        grid.insert(1, Point(1, 1))
        grid.insert(2, Point(19, 9))
        anchor = Point(0, 0)
        got = grid.nn_search(anchor, bound=5.0, k=10)
        assert [oid for oid, _ in got] == [1]

    def test_empty_grid(self, grid):
        assert grid.nn_search(Point(1, 1), k=3) == []

    def test_k_zero_or_negative(self, grid):
        grid.insert(1, Point(1, 1))
        assert grid.nn_search(Point(1, 1), k=0) == []

    def test_results_sorted_ascending(self, grid):
        fill_random(grid, 80, seed=3)
        got = grid.nn_search(Point(10, 5), k=10)
        distances = [d for _, d in got]
        assert distances == sorted(distances)

    def test_fewer_objects_than_k(self, grid):
        grid.insert(1, Point(1, 1))
        grid.insert(2, Point(2, 2))
        assert len(grid.nn_search(Point(0, 0), k=10)) == 2


class TestStaircaseBucket:
    def test_cross_floor_objects_are_found(self):
        stairs = Partition(
            50,
            rectangle(0, 0, 4, 4, floor=0),
            PartitionKind.STAIRCASE,
            stair_length=6.0,
        )
        grid = PartitionGrid(stairs, cell_size=2.0)
        grid.insert(1, Point(2, 2, floor=0))
        anchor = Point(2, 2, floor=1)  # the upper landing
        results = dict(grid.range_search(anchor, 10.0))
        assert results[1] == pytest.approx(6.0)
        nn = grid.nn_search(anchor, k=1)
        assert nn == [(1, pytest.approx(6.0))]
