"""Typed request / response envelopes for the serving layer.

:class:`QueryRequest` is the wire format of :mod:`repro.serve`: one
immutable, validated description of a range, kNN, or point-to-point
distance query.  Requests are hashable up to their :meth:`~QueryRequest.
cache_key`, which deliberately excludes the ``request_id`` so that two
identical queries submitted by different clients share one cache entry and
one batch slot.

:class:`QueryResponse` carries the answer plus its serving provenance —
the :class:`~repro.runtime.ladder.QualityLevel` it was produced at, the
topology epoch it is valid for, and whether it came from the cache, a
shared batch, or a load-shedding rung.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.exceptions import QueryError
from repro.geometry import Point
from repro.queries.checks import require_finite, require_finite_position
from repro.runtime.ladder import QualityLevel


class QueryKind(enum.Enum):
    """The query types the serving layer accepts."""

    RANGE = "range"
    KNN = "knn"
    PT2PT = "pt2pt"


_id_lock = threading.Lock()
_id_counter = itertools.count(1)


def _next_request_id() -> int:
    """Process-unique monotone request id (thread-safe)."""
    with _id_lock:
        return next(_id_counter)


@dataclass(frozen=True)
class QueryRequest:
    """One distance-aware query, validated at construction.

    Use the :meth:`range_query`, :meth:`knn`, and :meth:`pt2pt` factories
    rather than the raw constructor; they fill in the kind and check the
    per-kind required fields.

    Attributes:
        kind: which query to run.
        position: the query position (range / kNN) or the source (pt2pt).
        radius: range radius in metres (``RANGE`` only).
        k: neighbour count (``KNN`` only).
        target: destination position (``PT2PT`` only).
        request_id: process-unique id, excluded from the cache key.
    """

    kind: QueryKind
    position: Point
    radius: Optional[float] = None
    k: Optional[int] = None
    target: Optional[Point] = None
    request_id: int = field(default_factory=_next_request_id, compare=False)

    def __post_init__(self) -> None:
        """Validate the per-kind required fields eagerly."""
        require_finite_position(self.position)
        if self.kind is QueryKind.RANGE:
            if self.radius is None:
                raise QueryError("range request needs a radius")
            require_finite(self.radius, "range radius")
            if self.radius < 0:
                raise QueryError(
                    f"range radius must be non-negative, got {self.radius}"
                )
        elif self.kind is QueryKind.KNN:
            if self.k is None or self.k < 1:
                raise QueryError(f"kNN request needs k >= 1, got {self.k}")
        elif self.kind is QueryKind.PT2PT:
            if self.target is None:
                raise QueryError("pt2pt request needs a target position")
            require_finite_position(self.target, "target position")

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def range_query(cls, position: Point, radius: float) -> "QueryRequest":
        """A range query Q_r(position, radius)."""
        return cls(QueryKind.RANGE, position, radius=radius)

    @classmethod
    def knn(cls, position: Point, k: int = 1) -> "QueryRequest":
        """A k-nearest-neighbour query at ``position``."""
        return cls(QueryKind.KNN, position, k=k)

    @classmethod
    def pt2pt(cls, source: Point, target: Point) -> "QueryRequest":
        """A point-to-point minimum walking distance query."""
        return cls(QueryKind.PT2PT, source, target=target)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def cache_key(self) -> Tuple:
        """A hashable identity for the *answer* this request asks for.

        Excludes ``request_id``: identical queries from different callers
        map to the same entry of the serving layer's distance cache.  The
        topology epoch is *not* part of this key — the cache pairs every
        entry with the epoch it was computed at (see
        :class:`repro.serve.cache.EpochLRUCache`).
        """
        p = self.position
        if self.kind is QueryKind.RANGE:
            return ("range", p.x, p.y, p.floor, self.radius)
        if self.kind is QueryKind.KNN:
            return ("knn", p.x, p.y, p.floor, self.k)
        t = self.target
        return ("pt2pt", p.x, p.y, p.floor, t.x, t.y, t.floor)


@dataclass(frozen=True)
class QueryResponse:
    """A served answer plus its provenance.

    Attributes:
        request: the request this answers.
        value: the answer — a sorted id list (range), ``(id, distance)``
            pairs nearest-first (kNN), or metres (pt2pt).
        quality: the degradation-ladder rung that produced ``value``
            (``EXACT_INDEXED`` unless load shedding kicked in).
        served_epoch: the space's topology epoch the answer is valid for.
        cached: the answer came from the distance cache.
        batched: the answer was computed inside a shared-work batch of
            two or more requests.
        shed: admission pressure downgraded this request to a cheaper
            ladder rung before execution.
        breaker: an open circuit breaker routed this request to its
            fallback rung (exact serving was suspended or just failed).
        latency_ms: submit-to-completion wall-clock time.
        missing_shards: shards that failed to contribute exact results
            (sharded serving only; empty for single-process services).
            A non-empty tuple always comes with a degraded ``quality`` —
            a partial answer is never presented as exact.
        reply_epochs: the distinct topology epochs of the shard replies
            merged into ``value`` (sharded serving only; empty for
            single-process services, cacheless rungs, and gap-fill-only
            answers).  The router's fencing invariant keeps this at most
            one epoch long — the evidence the chaos EpochOracle audits.
    """

    request: QueryRequest
    value: Any
    quality: QualityLevel
    served_epoch: int
    cached: bool = False
    batched: bool = False
    shed: bool = False
    breaker: bool = False
    latency_ms: float = 0.0
    missing_shards: Tuple[int, ...] = ()
    reply_epochs: Tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when the answer came from below the exact indexed rung."""
        return self.quality is not QualityLevel.EXACT_INDEXED

    @property
    def partial(self) -> bool:
        """True when one or more shards failed to contribute exact results
        and their slice of the answer was filled from a degraded rung."""
        return bool(self.missing_shards)
