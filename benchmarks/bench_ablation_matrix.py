"""Ablation: door-distance matrix construction strategies (§IV-A).

The paper precomputes M_d2d with Algorithm 1 per door.  The library also
ships a bulk builder that assembles the f_d2d door graph into a sparse CSR
matrix and runs scipy's Dijkstra — numerically identical (asserted here) and
much faster in CPython.  This ablation measures both, plus the M_idx
derivation (an argsort) and the one-time f_d2d precompute.
"""

import numpy as np
import pytest

from repro.bench.harness import get_building
from repro.distance import build_distance_matrix, build_distance_matrix_reference
from repro.index import DistanceIndexMatrix
from repro.synthetic import BuildingConfig, generate_building


@pytest.mark.parametrize("floors", [10, 20, 30, 40])
def test_ablation_matrix_bulk_build(benchmark, floors):
    graph = get_building(floors).space.distance_graph
    benchmark.extra_info["doors"] = len(graph.space.door_ids)
    benchmark.pedantic(build_distance_matrix, args=(graph,), rounds=2, iterations=1)


@pytest.mark.parametrize("floors", [5, 10])
def test_ablation_matrix_reference_build(benchmark, floors):
    """The paper-faithful per-door Algorithm 1 builder (small buildings
    only — it is the quadratic-Dijkstra baseline the bulk builder replaces)."""
    graph = get_building(floors).space.distance_graph
    benchmark.extra_info["doors"] = len(graph.space.door_ids)
    benchmark.pedantic(
        build_distance_matrix_reference, args=(graph,), rounds=1, iterations=1
    )


def test_ablation_builders_identical(benchmark):
    graph = get_building(5).space.distance_graph
    bulk = build_distance_matrix(graph)
    reference = build_distance_matrix_reference(graph)
    np.testing.assert_allclose(bulk.matrix, reference.matrix)
    benchmark.pedantic(build_distance_matrix, args=(graph,), rounds=1, iterations=1)


@pytest.mark.parametrize("floors", [10, 30])
def test_ablation_midx_derivation(benchmark, floors):
    """Deriving M_idx from M_d2d (the per-row argsort of §IV-A)."""
    graph = get_building(floors).space.distance_graph
    distances = build_distance_matrix(graph)
    benchmark.extra_info["doors"] = distances.size
    benchmark.pedantic(DistanceIndexMatrix, args=(distances,), rounds=3, iterations=1)


def test_ablation_fd2d_precompute(benchmark):
    """The one-time geometry pass filling the f_dv / f_d2d caches."""

    def build_and_precompute():
        building = generate_building(BuildingConfig(floors=10))
        building.space.distance_graph.precompute()
        return building

    benchmark.pedantic(build_and_precompute, rounds=2, iterations=1)
