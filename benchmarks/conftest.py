"""Shared fixtures for the figure benchmarks.

Buildings, frameworks, and object stores are cached for the whole pytest
session through the harness-level caches, so the expensive substrate
construction (door-distance matrix, R-tree, 50 000-object stores) is paid
once per configuration, exactly as the paper's precomputation story implies.
"""

import pytest

from repro.bench.harness import get_framework, get_store


@pytest.fixture(scope="session")
def framework_30():
    """The 30-floor building's static indexes (no objects)."""
    return get_framework(30)


def query_framework(floors: int, objects: int):
    """Framework for `floors` with an `objects`-sized store attached."""
    return get_framework(floors).with_objects(get_store(floors, objects))
