"""Hypothesis strategies generating random — but always valid — indoor
spaces, used by the property-based test suites.

The generator builds a W×H grid of rectangular rooms.  Adjacent rooms may
be connected by a door placed at a random offset along their shared wall;
doors are randomly one-way.  A spanning tree over the grid guarantees the
plan is connected when every tree door is bidirectional (the default), so
reachability-sensitive properties can opt in to a strongly connected plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from hypothesis import strategies as st

from repro.geometry import Point, Segment
from repro.geometry.polygon import rectangle
from repro.model.builder import IndoorSpace, IndoorSpaceBuilder

ROOM_SIZE = 10.0


@dataclass(frozen=True)
class GridPlan:
    """A generated plan: the space plus bookkeeping for test assertions."""

    space: IndoorSpace
    columns: int
    rows: int
    seed: int

    def partition_id(self, col: int, row: int) -> int:
        return row * self.columns + col + 1

    def room_center(self, col: int, row: int) -> Point:
        return Point(
            col * ROOM_SIZE + ROOM_SIZE / 2, row * ROOM_SIZE + ROOM_SIZE / 2
        )

    def random_interior_point(self, rng: random.Random) -> Point:
        col = rng.randrange(self.columns)
        row = rng.randrange(self.rows)
        return Point(
            col * ROOM_SIZE + rng.uniform(1.0, ROOM_SIZE - 1.0),
            row * ROOM_SIZE + rng.uniform(1.0, ROOM_SIZE - 1.0),
        )


def _spanning_tree_edges(
    columns: int, rows: int, rng: random.Random
) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """A random spanning tree over the grid cells (randomised Prim)."""
    start = (rng.randrange(columns), rng.randrange(rows))
    in_tree = {start}
    frontier = []

    def neighbours(cell):
        col, row = cell
        for dc, dr in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nc, nr = col + dc, row + dr
            if 0 <= nc < columns and 0 <= nr < rows:
                yield (nc, nr)

    for other in neighbours(start):
        frontier.append((start, other))
    edges = []
    while frontier:
        index = rng.randrange(len(frontier))
        source, target = frontier.pop(index)
        if target in in_tree:
            continue
        in_tree.add(target)
        edges.append((source, target))
        for other in neighbours(target):
            if other not in in_tree:
                frontier.append((target, other))
    return edges


def build_grid_plan(
    columns: int,
    rows: int,
    seed: int,
    extra_door_probability: float = 0.4,
    one_way_probability: float = 0.0,
) -> GridPlan:
    """Deterministically build a random grid plan for the given seed.

    The spanning-tree doors are always bidirectional, so with
    ``one_way_probability = 0`` the plan is strongly connected; extra doors
    (on non-tree shared walls) may be one-way with the given probability.
    """
    rng = random.Random(seed)
    builder = IndoorSpaceBuilder()
    for row in range(rows):
        for col in range(columns):
            builder.add_partition(
                row * columns + col + 1,
                rectangle(
                    col * ROOM_SIZE,
                    row * ROOM_SIZE,
                    (col + 1) * ROOM_SIZE,
                    (row + 1) * ROOM_SIZE,
                ),
                name=f"room ({col},{row})",
            )

    def pid(cell):
        col, row = cell
        return row * columns + col + 1

    def door_segment(a, b, offset):
        (ac, ar), (bc, br) = a, b
        if ac == bc:  # vertical neighbours -> horizontal wall
            y = max(ar, br) * ROOM_SIZE
            x = ac * ROOM_SIZE + offset
            return Segment(Point(x - 0.5, y), Point(x + 0.5, y))
        x = max(ac, bc) * ROOM_SIZE
        y = ar * ROOM_SIZE + offset
        return Segment(Point(x, y - 0.5), Point(x, y + 0.5))

    door_id = 1
    used_walls = set()
    for a, b in _spanning_tree_edges(columns, rows, rng):
        offset = rng.uniform(1.0, ROOM_SIZE - 1.0)
        builder.add_door(door_id, door_segment(a, b, offset), connects=(pid(a), pid(b)))
        used_walls.add(frozenset((a, b)))
        door_id += 1

    # Extra doors on remaining shared walls, possibly one-way.
    for row in range(rows):
        for col in range(columns):
            for other in ((col + 1, row), (col, row + 1)):
                oc, orow = other
                if oc >= columns or orow >= rows:
                    continue
                wall = frozenset(((col, row), other))
                if wall in used_walls:
                    continue
                if rng.random() >= extra_door_probability:
                    continue
                offset = rng.uniform(1.0, ROOM_SIZE - 1.0)
                one_way = rng.random() < one_way_probability
                builder.add_door(
                    door_id,
                    door_segment((col, row), other, offset),
                    connects=(pid((col, row)), pid(other)),
                    one_way=one_way,
                )
                door_id += 1
    return GridPlan(builder.build(), columns, rows, seed)


@st.composite
def grid_plans(
    draw,
    max_columns: int = 4,
    max_rows: int = 3,
    one_way_probability: float = 0.0,
):
    """Hypothesis strategy producing :class:`GridPlan` instances."""
    columns = draw(st.integers(min_value=1, max_value=max_columns))
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return build_grid_plan(
        columns, rows, seed, one_way_probability=one_way_probability
    )


@st.composite
def plan_with_points(draw, count: int = 2, one_way_probability: float = 0.0):
    """A grid plan plus ``count`` random interior points."""
    plan = draw(grid_plans(one_way_probability=one_way_probability))
    point_seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(point_seed)
    points = [plan.random_interior_point(rng) for _ in range(count)]
    return plan, points


@st.composite
def metamorphic_cases(draw, one_way_probability: float = 0.0):
    """A grid plan plus a (source, target, pivot) position triple.

    The raw material of the metamorphic distance invariants
    (:mod:`repro.chaos.oracles`): d_E ≤ d_I on any pair, symmetry on
    undirected plans, and the triangle inequality through the pivot.
    """
    plan, points = draw(
        plan_with_points(count=3, one_way_probability=one_way_probability)
    )
    return plan, points[0], points[1], points[2]


@st.composite
def workload_cases(draw, max_ops: int = 6):
    """A grid plan plus a seeded mixed query workload over it.

    Drives the per-rung guarantee properties: every
    :class:`~repro.runtime.ladder.QualityLevel` evaluator must honour its
    documented bound on every generated op.
    """
    from repro.synthetic.workload import query_workload

    plan = draw(grid_plans(max_columns=3, max_rows=2))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=1, max_value=max_ops))
    return plan, query_workload(plan.space, count, seed=seed)
