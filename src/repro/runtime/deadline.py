"""Cooperative per-query time budgets.

A :class:`Deadline` is a wall-clock budget created when a query is admitted
and *threaded through* the query's hot loops: the door-expansion loops of
range / kNN processing and the Dijkstra loops of position-to-position
distance evaluation call :meth:`Deadline.check` once per iteration and bail
out with :class:`~repro.exceptions.DeadlineExceededError` the moment the
budget is gone.  Nothing is interrupted pre-emptively — a pathological plan
can therefore overshoot by at most one loop iteration, never hang.

The clock is injectable so tests can drive deadlines deterministically::

    clock = FakeClock()
    deadline = Deadline(5.0, clock=clock)
    clock.advance(6.0)
    assert deadline.expired
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional, Union

from repro.exceptions import DeadlineExceededError, QueryError


class Deadline:
    """A cooperative time budget for one query.

    Args:
        budget: seconds allowed from *now*; ``0`` is legal and expires
            immediately (useful to probe "would this query even start").
            ``math.inf`` never expires.
        clock: monotonic-time source, injectable for deterministic tests.

    Raises:
        QueryError: if ``budget`` is negative or NaN.
    """

    __slots__ = ("budget", "_clock", "_expires_at")

    def __init__(
        self,
        budget: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if math.isnan(budget) or budget < 0:
            raise QueryError(
                f"deadline budget must be a non-negative number, got {budget}"
            )
        self.budget = float(budget)
        self._clock = clock
        self._expires_at = clock() + budget

    @classmethod
    def unbounded(cls) -> "Deadline":
        """A deadline that never expires (checks are near-free)."""
        return cls(math.inf)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        if math.isinf(self._expires_at):
            return math.inf
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        """True once the budget has been consumed."""
        if math.isinf(self._expires_at):
            return False
        return self._clock() >= self._expires_at

    def check(self, what: str = "query") -> None:
        """Raise :class:`DeadlineExceededError` when the budget is gone.

        Called from hot loops; the non-expired path is one clock read and
        one comparison.
        """
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget:g}s deadline",
                budget=self.budget,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget:g}, remaining={self.remaining():g})"


#: What callers may pass wherever a deadline is accepted: an existing
#: :class:`Deadline`, a plain number of seconds, or ``None`` (no limit).
DeadlineLike = Union["Deadline", float, int, None]


def as_deadline(value: DeadlineLike) -> Optional[Deadline]:
    """Coerce a user-facing deadline argument to a :class:`Deadline`.

    ``None`` stays ``None`` (the query functions skip checks entirely);
    a number becomes a fresh budget of that many seconds.
    """
    if value is None or isinstance(value, Deadline):
        return value
    return Deadline(float(value))
