"""Correctness oracles: turning "it didn't crash" into "it was never wrong".

Three independent oracles judge every served answer:

* :class:`DifferentialOracle` — recompute the answer on a pristine,
  never-faulted :class:`~repro.queries.engine.QueryEngine` and compare
  *by the served rung's documented guarantee*: exact rungs must match the
  truth exactly; ``DOOR_COUNT`` answers are upper bounds (a range result
  may miss members but never invent them); ``EUCLIDEAN`` answers are
  lower bounds (a range result may include extras but never miss a true
  member).  A violation at any rung is a silent wrong answer — the
  service claimed a guarantee its answer does not satisfy.
* metamorphic distance invariants (:func:`euclidean_bound_violation`,
  :func:`symmetry_violation`, :func:`triangle_violation`) — properties
  that hold for *any* correct indoor metric without knowing the truth:
  d_E(p,q) ≤ d_I(p,q); d(p,q) = d(q,p) on fully-undirected door graphs;
  d(p,q) ≤ d(p,m) + d(m,q) for exact answers.
* :class:`EpochOracle` — linearizability of topology epochs: once any
  response computed at epoch E has been returned, no later response may
  claim an earlier epoch; and no single merged answer may mix shard
  replies from two different epochs (``reply_epochs`` must be uniform —
  the router's reconfiguration fencing invariant).

All comparisons use an absolute/relative tolerance of :data:`EPS` so
float formatting never masquerades as corruption.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.model.builder import IndoorSpace
from repro.queries.engine import QueryEngine
from repro.runtime.ladder import QualityLevel, euclidean_lower_bound
from repro.serve.requests import QueryResponse
from repro.synthetic.workload import WorkloadOp

#: Comparison tolerance for distances (absolute, and relative via max).
EPS = 1e-6


def _close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= EPS * max(1.0, abs(a), abs(b))


def space_is_undirected(space: IndoorSpace) -> bool:
    """True when every door is bidirectional (symmetry is only a theorem
    then; one one-way door makes d(p,q) ≠ d(q,p) legitimate)."""
    return all(
        space.topology.is_bidirectional(door_id)
        for door_id in space.door_ids
    )


class OracleViolation(Exception):
    """A served answer broke a correctness guarantee.

    Attributes:
        oracle: which oracle caught it (``differential`` / ``metamorphic``
            / ``epoch``).
        detail: deterministic description (safe to digest).
    """

    def __init__(self, oracle: str, detail: str) -> None:
        self.oracle = oracle
        self.detail = detail
        super().__init__(f"{oracle}: {detail}")


# ----------------------------------------------------------------------
# Differential oracle
# ----------------------------------------------------------------------
class DifferentialOracle:
    """Judge served answers against a pristine engine, per rung guarantee.

    The oracle owns its *own* index framework built from the served
    space's current topology and object population — faults are injected
    into the service's framework, never this one.  Call :meth:`rebind`
    after any topology mutation or service restart so the truth tracks
    the live space.
    """

    def __init__(self, space: IndoorSpace, objects) -> None:
        self._engine = QueryEngine.for_space(space, list(objects))
        self._space = space
        self._epoch = space.topology_epoch

    @property
    def engine(self) -> QueryEngine:
        """The pristine engine (tests probe it directly)."""
        return self._engine

    def rebind(self, space: IndoorSpace, objects) -> None:
        """Rebuild the pristine engine when the served topology moved."""
        if space is self._space and space.topology_epoch == self._epoch:
            return
        self._engine = QueryEngine.for_space(space, list(objects))
        self._space = space
        self._epoch = space.topology_epoch

    # ------------------------------------------------------------------
    def check(self, op: WorkloadOp, response: QueryResponse) -> None:
        """Raise :class:`OracleViolation` when ``response`` breaks the
        guarantee of the rung it was served at."""
        if op.kind == "range":
            self._check_range(op, response)
        elif op.kind == "knn":
            self._check_knn(op, response)
        else:
            self._check_pt2pt(op, response)

    def _check_range(self, op: WorkloadOp, response: QueryResponse) -> None:
        truth = self._engine.range_query(op.position, op.radius)
        served = list(response.value)
        quality = response.quality
        if quality.is_exact:
            if served != truth:
                raise OracleViolation(
                    "differential",
                    f"op {op.index} range@{quality.name}: served {served} "
                    f"!= truth {truth}",
                )
        elif quality is QualityLevel.DOOR_COUNT:
            extras = sorted(set(served) - set(truth))
            if extras:
                raise OracleViolation(
                    "differential",
                    f"op {op.index} range@DOOR_COUNT: false positives "
                    f"{extras} (upper-bound rung must never invent members)",
                )
        else:  # EUCLIDEAN: lower bound — a superset of the truth
            missed = sorted(set(truth) - set(served))
            if missed:
                raise OracleViolation(
                    "differential",
                    f"op {op.index} range@EUCLIDEAN: missed members "
                    f"{missed} (lower-bound rung must never miss one)",
                )

    def _check_knn(self, op: WorkloadOp, response: QueryResponse) -> None:
        quality = response.quality
        served: List[Tuple[int, float]] = list(response.value)
        if quality.is_exact:
            truth = self._engine.knn(op.position, op.k)
            if not self._knn_equal(served, truth):
                raise OracleViolation(
                    "differential",
                    f"op {op.index} knn@{quality.name}: served {served} "
                    f"!= truth {truth}",
                )
            return
        # Bound rungs: the reported distance of every returned object must
        # bound its true distance from the right side.
        for object_id, reported in served:
            true_distance = self._engine.distance(
                op.position, self._engine.get_object(object_id).position
            )
            if quality is QualityLevel.DOOR_COUNT:
                if reported < true_distance - EPS * max(1.0, true_distance):
                    raise OracleViolation(
                        "differential",
                        f"op {op.index} knn@DOOR_COUNT: object {object_id} "
                        f"reported {reported:.9g} below true "
                        f"{true_distance:.9g} (must upper-bound)",
                    )
            else:  # EUCLIDEAN
                if reported > true_distance + EPS * max(1.0, true_distance):
                    raise OracleViolation(
                        "differential",
                        f"op {op.index} knn@EUCLIDEAN: object {object_id} "
                        f"reported {reported:.9g} above true "
                        f"{true_distance:.9g} (must lower-bound)",
                    )

    def _check_pt2pt(self, op: WorkloadOp, response: QueryResponse) -> None:
        truth = self._engine.distance(op.position, op.target)
        served = float(response.value)
        quality = response.quality
        if quality.is_exact:
            if not _close(served, truth):
                raise OracleViolation(
                    "differential",
                    f"op {op.index} pt2pt@{quality.name}: served "
                    f"{served:.9g} != truth {truth:.9g}",
                )
        elif quality is QualityLevel.DOOR_COUNT:
            if served < truth - EPS * max(1.0, abs(truth)):
                raise OracleViolation(
                    "differential",
                    f"op {op.index} pt2pt@DOOR_COUNT: served {served:.9g} "
                    f"below true {truth:.9g} (must upper-bound)",
                )
        else:  # EUCLIDEAN
            if not math.isinf(truth) and served > truth + EPS * max(
                1.0, abs(truth)
            ):
                raise OracleViolation(
                    "differential",
                    f"op {op.index} pt2pt@EUCLIDEAN: served {served:.9g} "
                    f"above true {truth:.9g} (must lower-bound)",
                )

    @staticmethod
    def _knn_equal(
        served: List[Tuple[int, float]], truth: List[Tuple[int, float]]
    ) -> bool:
        """Same ids and pairwise-close distances (rank by rank).

        Ids are compared as sorted multisets so two exact evaluators that
        break an equal-distance tie differently are not flagged; the
        distance sequence itself must still match rank for rank.
        """
        if len(served) != len(truth):
            return False
        if sorted(oid for oid, _ in served) != sorted(oid for oid, _ in truth):
            return False
        return all(
            _close(float(s), float(t))
            for (_, s), (_, t) in zip(served, truth)
        )


# ----------------------------------------------------------------------
# Metamorphic invariants
# ----------------------------------------------------------------------
def euclidean_bound_violation(
    op: WorkloadOp, served_value: float
) -> Optional[str]:
    """d_E(p,q) ≤ d_I(p,q): the straight line never beats an indoor walk.

    Holds at every rung — exact and door-count answers are ≥ the true
    distance ≥ the bound, and the Euclidean rung reports the bound itself.
    Returns a deterministic description of the violation, or ``None``.
    """
    bound = euclidean_lower_bound(op.position, op.target)
    if math.isinf(served_value):
        return None  # unreachable: infinitely far satisfies any lower bound
    if served_value < bound - EPS * max(1.0, bound):
        return (
            f"op {op.index}: served distance {served_value:.9g} below the "
            f"Euclidean lower bound {bound:.9g}"
        )
    return None


def symmetry_violation(
    op: WorkloadOp, forward: float, backward: float
) -> Optional[str]:
    """d(p,q) = d(q,p) — a theorem only on fully-undirected door graphs;
    the caller is responsible for checking :func:`space_is_undirected`."""
    if not _close(forward, backward):
        return (
            f"op {op.index}: d(p,q)={forward:.9g} != d(q,p)={backward:.9g} "
            "on an undirected space"
        )
    return None


def triangle_violation(
    op: WorkloadOp, direct: float, via_first: float, via_second: float
) -> Optional[str]:
    """d(p,q) ≤ d(p,m) + d(m,q) for exact answers (any path through m is a
    valid walk, so the minimum can only be shorter)."""
    if math.isinf(via_first) or math.isinf(via_second):
        return None  # detour unreachable: the inequality is vacuous
    detour = via_first + via_second
    if direct > detour + EPS * max(1.0, detour):
        return (
            f"op {op.index}: d(p,q)={direct:.9g} exceeds detour "
            f"d(p,m)+d(m,q)={detour:.9g}"
        )
    return None


# ----------------------------------------------------------------------
# Epoch linearizability
# ----------------------------------------------------------------------
class EpochOracle:
    """No response may be served from an epoch older than one already
    observed: topology mutations linearize at the first response that
    reflects them.  On sharded services the oracle additionally audits
    the router's fencing invariant: the shard replies merged into one
    answer must all carry the same topology epoch — a mixed merge is a
    silent wrong answer even if the value happens to look plausible."""

    def __init__(self) -> None:
        self._max_seen = -1

    def observe(self, op_index: int, response: QueryResponse) -> None:
        """Record one response; raise on an epoch regression or a merge
        that mixed shard replies from different epochs."""
        epochs = set(response.reply_epochs)
        if len(epochs) > 1:
            raise OracleViolation(
                "epoch",
                f"op {op_index}: merged shard replies from mixed epochs "
                f"{sorted(epochs)} into one answer (fencing invariant "
                "violated)",
            )
        epoch = response.served_epoch
        if epoch < self._max_seen:
            raise OracleViolation(
                "epoch",
                f"op {op_index}: served from epoch {epoch} after a "
                f"response from epoch {self._max_seen} was returned",
            )
        self._max_seen = max(self._max_seen, epoch)
