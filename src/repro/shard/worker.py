"""The shard worker process: one spec in, exact answers out.

:func:`shard_worker_main` is the ``multiprocessing`` entry point (module
level, so it imports cleanly under the ``spawn`` start method).  A worker
mirrors the :class:`~repro.serve.lifecycle.SupervisedQueryService`
lifecycle in miniature — STARTING (materialise the spec via the restart
ladder), READY (serve), draining on ``stop`` — but deliberately serves
**exact answers only**: the whole degradation ladder lives in the router,
where a shard's silence is turned into an explicitly degraded partial
result.  A worker that cannot answer exactly says so (an error reply or,
under a crash, pipe EOF); it never guesses.

Wire protocol (tuples over a ``multiprocessing`` duplex pipe):

========================  ==============================================
supervisor → worker        meaning
========================  ==============================================
``("query", seq, req,      evaluate ``req`` with ``budget_s`` seconds of
``budget_s)``              deadline; reply ``("result", seq, value)`` or
                           ``("error", seq, exc_type, message)``
``("batch", items)``       evaluate each ``(seq, req, budget_s)`` item in
                           order; reply one ``("batch_result", replies)``
                           carrying the per-item result/error tuples
``("ping", seq)``          liveness probe; reply ``("pong", seq)``
``("hang", seconds)``      chaos: stop replying for ``seconds``
``("exit", code)``         chaos: die immediately (``os._exit``)
``("stop",)``              drain (pipe order guarantees every earlier
                           query was answered), snapshot, exit cleanly
========================  ==============================================

The first message a worker ever sends is ``("ready", summary)`` — where
``summary`` carries the materialisation source and the epochs it rejoined
at — or ``("start_failed", detail)``.

Self-healing: when the ladder bottomed out at a full rebuild (the shard's
snapshot was missing or quarantined as corrupt) the worker rewrites its
snapshot immediately, so the *next* restart is warm again.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional, Tuple

from repro.exceptions import ReproError
from repro.queries.engine import QueryEngine
from repro.runtime.deadline import Deadline
from repro.serve.cache import EpochLRUCache
from repro.serve.requests import QueryKind, QueryRequest
from repro.shard.spec import ShardSpec, materialize

#: Distinguishes "not cached" from any cached value (None, [], 0.0 …).
_MISS = object()


def evaluate_exact(
    engine: QueryEngine,
    request: QueryRequest,
    deadline: Optional[Deadline] = None,
) -> Any:
    """One request on the exact indexed path, deadline forwarded.

    Returns the same value shapes as the single-process service: a sorted
    id list (range), ``(id, distance)`` pairs in ``(distance, id)`` order
    (kNN), or metres (pt2pt) — the shapes the router's merge relies on.
    """
    if request.kind is QueryKind.RANGE:
        return engine.range_query(
            request.position, request.radius, deadline=deadline
        )
    if request.kind is QueryKind.KNN:
        return engine.knn(request.position, request.k, deadline=deadline)
    return engine.distance(request.position, request.target, deadline=deadline)


def _evaluate_reply(
    engine: QueryEngine,
    seq: int,
    request: QueryRequest,
    budget_s: Optional[float],
    cache: Optional[EpochLRUCache] = None,
    epoch: int = 0,
) -> Tuple:
    """Evaluate one query and shape its wire reply tuple.

    With a ``cache``, exact answers are memoised per request key: a
    worker re-serving a warm key skips the whole expansion and answers
    at pipe speed.  The router's own cache sees every key first, so the
    worker caches earn their keep exactly when the router's evicted —
    they are the tier's second, horizontally-scaled cache level.
    """
    if cache is not None:
        key = request.cache_key()
        hit = cache.get(key, epoch, _MISS)
        if hit is not _MISS:
            return ("result", seq, hit)
    deadline = Deadline(budget_s) if budget_s is not None else None
    try:
        value = evaluate_exact(engine, request, deadline)
    except ReproError as exc:
        return ("error", seq, type(exc).__name__, str(exc))
    if cache is not None:
        cache.put(key, epoch, value)
    return ("result", seq, value)


def _maybe_self_heal_snapshot(
    spec: ShardSpec, framework, source: str
) -> None:
    """After a cold rebuild, rewrite the shard snapshot so the next
    restart takes the warm rung again."""
    if source != "rebuild" or spec.snapshot_path is None:
        return
    from repro.persist.snapshot import save_snapshot

    try:
        save_snapshot(framework, spec.snapshot_path)
    except OSError:  # pragma: no cover - disk trouble; serve anyway
        pass


def shard_worker_main(spec: ShardSpec, conn) -> None:
    """Run one shard worker over its end of a duplex pipe (blocking)."""
    arena = None
    try:
        try:
            framework, source, arena = materialize(spec)
        except BaseException as exc:
            conn.send(("start_failed", f"{type(exc).__name__}: {exc}"))
            return
        _maybe_self_heal_snapshot(spec, framework, source)
        # Warm the door-geometry memo caches before declaring READY: the
        # arena/snapshot rungs skip the full index build that would have
        # filled them, and a cold cache pays per-query geometry on the
        # serving path instead of once here.
        framework.space.distance_graph.precompute()
        engine = QueryEngine(framework)
        cache = (
            EpochLRUCache(spec.cache_capacity)
            if spec.cache_capacity > 0
            else None
        )
        epoch = spec.topology_epoch
        summary = dict(spec.summary())
        summary["source"] = source
        summary["pid"] = os.getpid()
        conn.send(("ready", summary))

        while True:
            try:
                message: Tuple = conn.recv()
            except (EOFError, OSError):
                return  # supervisor died; no one left to answer
            op = message[0]
            if op == "query":
                _, seq, request, budget_s = message
                conn.send(
                    _evaluate_reply(engine, seq, request, budget_s, cache, epoch)
                )
            elif op == "batch":
                # One combined reply per batch: the supervisor's send
                # combining amortises pipe overhead in both directions.
                conn.send((
                    "batch_result",
                    [
                        _evaluate_reply(
                            engine, seq, request, budget_s, cache, epoch
                        )
                        for seq, request, budget_s in message[1]
                    ],
                ))
            elif op == "ping":
                conn.send(("pong", message[1]))
            elif op == "hang":
                # Chaos: simulate a wedged worker. The supervisor's
                # liveness deadline — not this sleep — decides its fate.
                time.sleep(float(message[1]))
            elif op == "exit":
                os._exit(int(message[1]))
            elif op == "stop":
                # Pipe FIFO order means every earlier query was already
                # answered: this *is* the drain barrier.
                if spec.snapshot_path is not None:
                    from repro.persist.snapshot import save_snapshot

                    try:
                        save_snapshot(framework, spec.snapshot_path)
                    except OSError:  # pragma: no cover
                        pass
                try:
                    conn.send(("stopped",))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
                return
            else:
                conn.send(("error", -1, "ValueError", f"unknown op {op!r}"))
    finally:
        if arena is not None:
            arena.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
