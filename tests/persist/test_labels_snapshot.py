"""Snapshot format v2: the labels-backend section (repro.persist.snapshot)."""

import pytest

from repro.exceptions import SnapshotCorruptError
from repro.index import IndexFramework
from repro.persist import load_snapshot, read_manifest, save_snapshot
from repro.persist.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    snapshot_bytes,
)
from tests.persist.test_snapshot import _reseal, _section_offsets


@pytest.fixture
def labels_framework(figure1_framework):
    """The same Figure-1 population, indexed through the labels backend."""
    return IndexFramework.build(
        figure1_framework.space,
        list(figure1_framework.objects),
        backend="labels",
    )


class TestFormat:
    def test_version_2_and_the_v1_range(self):
        assert SNAPSHOT_FORMAT_VERSION == 2
        assert SUPPORTED_FORMAT_VERSIONS == (1, 2)

    def test_manifest_records_the_backend(
        self, labels_framework, figure1_framework, tmp_path
    ):
        labels_path = save_snapshot(labels_framework, tmp_path / "l.snap")
        matrix_path = save_snapshot(figure1_framework, tmp_path / "m.snap")
        assert read_manifest(labels_path)["backend"] == "labels"
        assert read_manifest(matrix_path)["backend"] == "matrix"

    def test_labels_section_replaces_the_matrices(
        self, labels_framework, tmp_path
    ):
        path = save_snapshot(labels_framework, tmp_path / "l.snap")
        names = [s["name"] for s in read_manifest(path)["sections"]]
        assert "labels" in names
        assert "md2d" not in names

    def test_labels_section_bytes_deterministic(self, labels_framework):
        """The manifest carries a wall-clock ``created_at``, but the labels
        payload itself must encode identically on every save."""
        first = snapshot_bytes(labels_framework)
        second = snapshot_bytes(labels_framework)
        start1, length1 = _section_offsets(first)["labels"]
        start2, length2 = _section_offsets(second)["labels"]
        assert first[start1 : start1 + length1] == (
            second[start2 : start2 + length2]
        )


class TestRoundTrip:
    def test_labels_framework_survives_bit_identically(
        self, labels_framework, tmp_path
    ):
        path = save_snapshot(labels_framework, tmp_path / "l.snap")
        restored, manifest = load_snapshot(path)
        original = labels_framework.distance_index
        loaded = restored.distance_index
        assert loaded.kind == "labels"
        assert loaded.door_ids == original.door_ids
        for u in original.door_ids:
            assert list(loaded.doors_by_distance(u)) == list(
                original.doors_by_distance(u)
            )
        assert restored.is_fresh
        assert restored.build_config["backend"] == "labels"
        assert manifest["objects"] == len(labels_framework.objects)

    def test_reloaded_labels_match_the_dense_backend(
        self, labels_framework, figure1_framework, tmp_path
    ):
        path = save_snapshot(labels_framework, tmp_path / "l.snap")
        restored, _ = load_snapshot(path)
        dense = figure1_framework.distance_index
        for u in dense.door_ids:
            for v in dense.door_ids:
                assert restored.distance_index.distance(
                    u, v
                ) == dense.distance(u, v)


class TestCorruption:
    def test_corrupt_labels_section_is_named(self, labels_framework, tmp_path):
        path = save_snapshot(labels_framework, tmp_path / "l.snap")
        data = path.read_bytes()
        start, length = _section_offsets(data)["labels"]
        corrupted = bytearray(data)
        corrupted[start + length // 2] ^= 0xFF
        path.write_bytes(_reseal(bytes(corrupted)))
        with pytest.raises(SnapshotCorruptError) as excinfo:
            load_snapshot(path)
        assert excinfo.value.section == "labels"
