"""Engine-level behaviour: suppressions, baseline round-trips, parsing."""

import textwrap

from repro.analysis.lint import (
    Baseline,
    LintConfig,
    SuppressionTable,
    discover_files,
    run_lint,
)

BAD_CHAOS = """\
    import time

    def stamp():
        return time.time()
    """


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint(tmp_path, **overrides):
    config = LintConfig(
        root=tmp_path, paths=[tmp_path / "src"], jobs=1, **overrides
    )
    return run_lint(config)


class TestSuppressions:
    def test_line_suppression_with_rule(self):
        table = SuppressionTable.from_source(
            "x = 1\ny = time.time()  # repro: noqa REP002\n"
        )
        assert table.is_suppressed("REP002", 2)
        assert not table.is_suppressed("REP001", 2)
        assert not table.is_suppressed("REP002", 1)

    def test_bare_noqa_suppresses_all_rules(self):
        table = SuppressionTable.from_source("y = boom()  # repro: noqa\n")
        assert table.is_suppressed("REP002", 1)
        assert table.is_suppressed("REP004", 1)

    def test_multiple_rules_comma_separated(self):
        table = SuppressionTable.from_source(
            "z = 1  # repro: noqa REP001, REP003\n"
        )
        assert table.is_suppressed("REP001", 1)
        assert table.is_suppressed("REP003", 1)
        assert not table.is_suppressed("REP002", 1)

    def test_file_level_suppression(self):
        table = SuppressionTable.from_source(
            '"""Doc."""\n# repro: noqa-file REP002\nimport time\n'
        )
        assert table.is_suppressed("REP002", 99)
        assert not table.is_suppressed("REP001", 99)

    def test_file_pragma_outside_window_is_ignored(self):
        source = "\n" * 30 + "# repro: noqa-file REP002\n"
        table = SuppressionTable.from_source(source)
        assert not table.is_suppressed("REP002", 1)

    def test_suppressed_findings_are_counted_not_reported(self, tmp_path):
        write(
            tmp_path,
            "src/repro/chaos/x.py",
            """\
            import time

            def stamp():
                return time.time()  # repro: noqa REP002
            """,
        )
        report = lint(tmp_path)
        assert report.new == []
        assert report.suppressed == 1


class TestBaselineRoundTrip:
    def test_add_then_expire(self, tmp_path):
        target = write(tmp_path, "src/repro/chaos/x.py", BAD_CHAOS)
        baseline_path = tmp_path / ".repro-lint-baseline.json"

        first = lint(tmp_path)
        assert [f.rule for f in first.new] == ["REP002"]

        Baseline.from_findings(first.findings).save(baseline_path)
        assert baseline_path.exists()

        second = lint(tmp_path)
        assert second.new == []
        assert [f.rule for f in second.baselined] == ["REP002"]
        assert second.expired == []
        assert second.exit_code() == 0
        assert second.exit_code(strict=True) == 0

        # Pay the debt: the baseline entry expires.
        target.write_text("def stamp():\n    return 0\n")
        third = lint(tmp_path)
        assert third.new == []
        assert third.baselined == []
        assert len(third.expired) == 1
        assert third.exit_code() == 0  # stale entries don't gate...
        assert third.exit_code(strict=True) == 1  # ...except under --strict

        # Pruning restores strict cleanliness.
        Baseline.from_findings(third.findings).save(baseline_path)
        fourth = lint(tmp_path)
        assert fourth.exit_code(strict=True) == 0

    def test_fingerprint_survives_line_renumbering(self, tmp_path):
        target = write(tmp_path, "src/repro/chaos/x.py", BAD_CHAOS)
        baseline_path = tmp_path / ".repro-lint-baseline.json"
        first = lint(tmp_path)
        Baseline.from_findings(first.findings).save(baseline_path)

        # Shift the offending line down; its text is unchanged.
        target.write_text("# preamble comment\n" + target.read_text())
        second = lint(tmp_path)
        assert second.new == []
        assert len(second.baselined) == 1
        assert second.baselined[0].line != first.new[0].line

    def test_editing_the_flagged_line_invalidates_the_entry(self, tmp_path):
        target = write(tmp_path, "src/repro/chaos/x.py", BAD_CHAOS)
        baseline_path = tmp_path / ".repro-lint-baseline.json"
        Baseline.from_findings(lint(tmp_path).findings).save(baseline_path)

        target.write_text(
            textwrap.dedent(
                """\
                import time

                def stamp():
                    return float(time.time())
                """
            )
        )
        report = lint(tmp_path)
        assert [f.rule for f in report.new] == ["REP002"]
        assert len(report.expired) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0


class TestEngine:
    def test_unparsable_file_is_reported_not_fatal(self, tmp_path):
        write(tmp_path, "src/repro/chaos/ok.py", "x = 1\n")
        write(tmp_path, "src/repro/chaos/broken.py", "def oops(:\n")
        report = lint(tmp_path)
        assert report.checked_modules == 1
        assert list(report.unparsable) == ["src/repro/chaos/broken.py"]
        assert report.exit_code() == 1

    def test_discover_skips_junk_directories(self, tmp_path):
        keep = write(tmp_path, "src/a.py", "x = 1\n")
        write(tmp_path, "src/__pycache__/b.py", "x = 1\n")
        write(tmp_path, "src/.venv/c.py", "x = 1\n")
        assert discover_files([tmp_path / "src"]) == [keep.resolve()]

    def test_select_limits_rules(self, tmp_path):
        write(tmp_path, "src/repro/chaos/x.py", BAD_CHAOS)
        report = lint(tmp_path, select={"REP001"})
        assert report.rules == ["REP001"]
        assert report.new == []

    def test_parallel_and_serial_agree(self, tmp_path):
        for i in range(6):
            write(
                tmp_path,
                f"src/repro/chaos/mod{i}.py",
                BAD_CHAOS.replace("stamp", f"stamp{i}"),
            )
        serial = lint(tmp_path)
        parallel = run_lint(
            LintConfig(root=tmp_path, paths=[tmp_path / "src"], jobs=4)
        )
        assert [f.to_dict() for f in serial.new] == [
            f.to_dict() for f in parallel.new
        ]
        assert len(serial.new) == 6
