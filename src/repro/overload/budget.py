"""Per-service retry budgets: token buckets that starve retry storms.

Unbounded retries amplify outages: when a dependency slows down, every
caller retries, multiplying offered load exactly when capacity is
scarcest.  A :class:`RetryBudget` caps fleet-wide retry volume at a
fraction of *successful* work — the classic token-bucket scheme where
each success deposits ``refill_ratio`` tokens (≈10%) and each retry,
hedge, or re-scatter withdraws one.  While the service is healthy the
bucket stays near capacity and retries flow freely; during an outage
successes stop, the bucket drains after ``capacity`` retries, and
further retries are denied until real work succeeds again.

The budget is shared per service instance (thread-pool tier or sharded
tier), not per request — that is the point: one hot request cannot spend
tokens that a thousand cold ones refilled, but a thousand hot ones
cannot each retry twice either.

Everything is counted in operations, never wall-clock, so budget
decisions replay deterministically under the chaos harness.
"""

from __future__ import annotations

# Late-bound factory lookup (not ``from threading import Lock``) so
# the LockWitness session's patched factory sees these allocations.
import threading
from typing import Any, Callable, Dict, Optional, TypeVar

from repro.exceptions import ReproError
from repro.runtime.retry import RetryPolicy
from repro.serve.metrics import MetricsRegistry

T = TypeVar("T")


class RetryBudget:
    """Token bucket gating retries to a fraction of successful work.

    Attributes:
        capacity: maximum tokens the bucket holds (also the initial
            balance — a fresh service can absorb a burst of retries
            before any successes land).
        refill_ratio: tokens deposited per recorded success (~0.1 keeps
            steady-state retry volume at ~10% of throughput).
        metrics: optional registry; denials increment
            ``overload.budget_denied``, spends ``overload.budget_spent``.
    """

    def __init__(
        self,
        capacity: float = 32.0,
        refill_ratio: float = 0.1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill_ratio < 0:
            raise ValueError("refill_ratio must be non-negative")
        self.capacity = float(capacity)
        self.refill_ratio = float(refill_ratio)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._tokens = float(capacity)
        self._successes = 0
        self._spent = 0
        self._denied = 0

    def record_success(self) -> None:
        """Deposit ``refill_ratio`` tokens for one successful operation."""
        with self._lock:
            self._successes += 1
            self._tokens = min(self.capacity, self._tokens + self.refill_ratio)

    def try_spend(self, cost: float = 1.0) -> bool:
        """Withdraw ``cost`` tokens; False (and no withdrawal) if broke."""
        with self._lock:
            if self._tokens >= cost:
                self._tokens -= cost
                self._spent += 1
                granted = True
            else:
                self._denied += 1
                granted = False
        if granted:
            self.metrics.increment("overload.budget_spent")
        else:
            self.metrics.increment("overload.budget_denied")
        return granted

    @property
    def tokens(self) -> float:
        """Current balance (for tests and introspection)."""
        with self._lock:
            return self._tokens

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe state for readiness probes and reports."""
        with self._lock:
            return {
                "tokens": round(self._tokens, 3),
                "capacity": self.capacity,
                "refill_ratio": self.refill_ratio,
                "successes": self._successes,
                "spent": self._spent,
                "denied": self._denied,
            }


def run_with_budget(
    policy: RetryPolicy,
    operation: Callable[[], T],
    budget: Optional[RetryBudget],
) -> T:
    """``policy.run(operation)`` with every attempt after the first paid
    for from ``budget``.

    The first attempt is ordinary work and always free; each *retry*
    withdraws one token.  When the budget denies, the most recent error
    propagates immediately — exactly what an exhausted ``RetryPolicy``
    would have raised, so callers need no new failure mode.
    """
    if budget is None:
        return policy.run(operation)
    last_error: Optional[ReproError] = None
    for attempt, delay in enumerate(policy.delays()):
        if attempt > 0:
            assert last_error is not None
            if not budget.try_spend():
                raise last_error
            if delay > 0:
                policy.sleep(delay)
        try:
            return operation()
        except ReproError as exc:
            last_error = exc
    if last_error is None:
        raise RuntimeError("retry policy permitted no attempts")
    raise last_error
