"""The labels-vs-dense benchmark harness (repro.bench.labels)."""

import pytest

from repro.bench.labels import (
    DENSE_BYTES_PER_CELL,
    LABELS_CAMPUS,
    LABELS_QUICK,
    current_labels_scale,
    measure_labels,
    render_labels_summary,
)


@pytest.fixture(scope="module")
def quick_result():
    return measure_labels(LABELS_QUICK, seed=13)


class TestScales:
    def test_quick_is_the_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_labels_scale() is LABELS_QUICK

    def test_scale_env_selects_campus(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "campus")
        assert current_labels_scale() is LABELS_CAMPUS

    def test_unknown_scale_falls_back_to_quick(self, monkeypatch):
        """Same forgiving behavior as the Table-3 harness scales."""
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        assert current_labels_scale() is LABELS_QUICK

    def test_campus_skips_the_dense_build(self):
        assert LABELS_CAMPUS.build_dense is False
        assert LABELS_QUICK.build_dense is True


class TestMeasure:
    def test_zero_mismatches_against_the_canonical_reference(
        self, quick_result
    ):
        assert quick_result["mismatches"] == 0
        assert quick_result["sampled_pairs"] == LABELS_QUICK.sample_pairs

    def test_metrics_are_populated(self, quick_result):
        labels = quick_result["labels"]
        dense = quick_result["dense"]
        assert labels["bytes"] > 0
        assert labels["build_s"] > 0
        assert labels["query_us"] > 0
        assert dense["built"] is True
        assert dense["bytes"] == (
            quick_result["doors"] ** 2 * DENSE_BYTES_PER_CELL
        )
        assert quick_result["bytes_ratio"] == pytest.approx(
            dense["bytes"] / labels["bytes"]
        )

    def test_summary_renders_both_backends(self, quick_result):
        text = render_labels_summary(quick_result)
        assert "labels" in text
        assert "dense" in text
        assert "mismatches" in text
