"""QueryService end-to-end: concurrency, caching, epochs, shedding."""

import random
import threading

import pytest

from repro.exceptions import ReproError
from repro.index import IndexFramework
from repro.model.figure1 import D15
from repro.queries import QueryEngine
from repro.runtime import QualityLevel
from repro.serve import (
    MetricsRegistry,
    QueryRequest,
    QueryService,
    ShedPolicy,
)


def make_workload(positions, rng, count=40):
    """A deterministic mixed range/kNN/pt2pt request stream."""
    requests = []
    for _ in range(count):
        position = rng.choice(positions)
        roll = rng.random()
        if roll < 0.4:
            requests.append(
                QueryRequest.range_query(position, rng.choice((4.0, 9.0, 15.0)))
            )
        elif roll < 0.8:
            requests.append(QueryRequest.knn(position, k=rng.choice((1, 3, 5))))
        else:
            requests.append(QueryRequest.pt2pt(position, rng.choice(positions)))
    return requests


def naive_answers(framework, requests):
    """Fresh single-threaded QueryEngine answers, one query at a time."""
    engine = QueryEngine(
        IndexFramework.build(framework.space, list(framework.objects))
    )
    answers = []
    for request in requests:
        if request.kind.value == "range":
            answers.append(engine.range_query(request.position, request.radius))
        elif request.kind.value == "knn":
            answers.append(engine.knn(request.position, k=request.k))
        else:
            answers.append(engine.distance(request.position, request.target))
    return answers


class TestServing:
    def test_multithreaded_answers_match_sequential_engine(
        self, serve_framework, query_positions
    ):
        requests = make_workload(query_positions, random.Random(7), count=60)
        expected = naive_answers(serve_framework, requests)
        with QueryService(serve_framework, workers=4, max_batch=8) as service:
            responses = service.serve(requests)
        assert [r.value for r in responses] == expected
        assert all(r.quality is QualityLevel.EXACT_INDEXED for r in responses)

    def test_repeated_queries_hit_the_cache(
        self, serve_framework, query_positions
    ):
        request = QueryRequest.range_query(query_positions[0], 8.0)
        with QueryService(serve_framework, workers=1) as service:
            first = service.execute(request)
            second = service.execute(
                QueryRequest.range_query(query_positions[0], 8.0)
            )
        assert not first.cached and second.cached
        assert first.value == second.value
        assert service.cache.stats()["hits"] >= 1

    def test_execute_is_synchronous_and_exact(
        self, serve_framework, query_positions
    ):
        service = QueryService(serve_framework)  # never started
        response = service.execute(QueryRequest.knn(query_positions[0], k=3))
        assert response.quality is QualityLevel.EXACT_INDEXED
        assert len(response.value) == 3

    def test_concurrent_submitters(self, serve_framework, query_positions):
        requests = make_workload(query_positions, random.Random(13), count=48)
        expected = naive_answers(serve_framework, requests)
        results = [None] * len(requests)
        with QueryService(serve_framework, workers=3) as service:

            def client(indices):
                for i in indices:
                    results[i] = service.submit(requests[i]).result()

            threads = [
                threading.Thread(target=client, args=(range(i, 48, 4),))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert [r.value for r in results] == expected

    def test_invalid_request_fails_alone(self, serve_framework, query_positions):
        from repro.geometry import Point

        good = QueryRequest.range_query(query_positions[0], 6.0)
        bad = QueryRequest.range_query(Point(900.0, 900.0), 6.0)
        with QueryService(serve_framework, workers=1) as service:
            good_future = service.submit(good)
            bad_future = service.submit(bad)
            assert good_future.result().value is not None
            with pytest.raises(ReproError):
                bad_future.result()


class TestTopologyMutation:
    def test_midstream_mutation_invalidates_cache_and_rebuilds(
        self, serve_framework, query_positions
    ):
        """The ISSUE's acceptance scenario: mutate the topology while the
        service is running; epoch-keyed cache entries must die and
        post-mutation answers must match a fresh single-threaded engine."""
        space = serve_framework.space
        request = QueryRequest.range_query(query_positions[0], 9.0)
        with QueryService(serve_framework, workers=2) as service:
            before = service.execute(request)
            warm = service.execute(
                QueryRequest.range_query(query_positions[0], 9.0)
            )
            assert warm.cached and warm.served_epoch == before.served_epoch

            space.remove_door(D15)  # bumps the topology epoch mid-stream

            after = service.execute(
                QueryRequest.range_query(query_positions[0], 9.0)
            )
        assert after.served_epoch == before.served_epoch + 1
        assert not after.cached  # the old entry was unusable
        assert service.cache.stats()["invalidations"] >= 1
        assert service.metrics.counter("serve.rebuilds").value == 1

        # Exactness against a from-scratch engine on the mutated space.
        scratch = QueryEngine(
            IndexFramework.build(space, list(service.engine.framework.objects))
        )
        assert after.value == scratch.range_query(query_positions[0], 9.0)

    def test_mutation_under_concurrent_load_stays_exact(
        self, serve_framework, query_positions
    ):
        space = serve_framework.space
        requests = make_workload(query_positions, random.Random(29), count=30)
        with QueryService(serve_framework, workers=3) as service:
            futures = [service.submit(r) for r in requests[:15]]
            space.remove_door(D15)
            futures += [service.submit(r) for r in requests[15:]]
            responses = [f.result() for f in futures]
        final_epoch = space.topology_epoch
        # Every response served after the mutation is exact for the new
        # topology; verify the ones stamped with the final epoch.
        scratch = QueryEngine(
            IndexFramework.build(space, list(service.engine.framework.objects))
        )
        checked = 0
        for request, response in zip(requests, responses):
            if response.served_epoch != final_epoch:
                continue
            checked += 1
            if request.kind.value == "range":
                assert response.value == scratch.range_query(
                    request.position, request.radius
                )
            elif request.kind.value == "knn":
                assert response.value == scratch.knn(request.position, k=request.k)
            else:
                assert response.value == scratch.distance(
                    request.position, request.target
                )
        assert checked >= 15  # everything submitted after the bump, at least


class TestShedding:
    def test_saturated_queue_sheds_to_euclidean(
        self, serve_framework, query_positions
    ):
        service = QueryService(
            serve_framework,
            workers=1,
            queue_capacity=1,
            shed_policy=ShedPolicy(shed_at=0.999),
        )
        # Do not start workers: fill the queue beyond capacity first, so
        # later submissions see occupancy >= 1 deterministically.
        first = service.submit(QueryRequest.knn(query_positions[0], k=2))
        second = service.submit(QueryRequest.knn(query_positions[1], k=2))
        service.start()
        responses = [first.result(), second.result()]
        service.stop()
        shed = [r for r in responses if r.shed]
        assert shed
        assert all(r.quality is QualityLevel.EUCLIDEAN for r in shed)
        assert service.metrics.counter("serve.shed").value == len(shed)

    def test_degrade_band_uses_door_count(self, serve_framework, query_positions):
        policy = ShedPolicy(degrade_at=0.0, shed_at=2.0)
        assert policy.quality_cap(0.5) is QualityLevel.DOOR_COUNT
        service = QueryService(
            serve_framework, workers=1, queue_capacity=1, shed_policy=policy
        )
        ticket_future = service.submit(QueryRequest.knn(query_positions[0], k=2))
        service.start()
        response = ticket_future.result()
        service.stop()
        assert response.quality in (
            QualityLevel.DOOR_COUNT,
            QualityLevel.EXACT_INDEXED,
        )

    def test_default_policy_never_sheds_below_full(self):
        policy = ShedPolicy()
        assert policy.quality_cap(0.99) is QualityLevel.EXACT_INDEXED
        assert policy.quality_cap(1.0) is QualityLevel.EUCLIDEAN


class TestMetricsAndKnobs:
    def test_snapshot_contains_all_sections(
        self, serve_framework, query_positions
    ):
        registry = MetricsRegistry()
        with QueryService(serve_framework, metrics=registry) as service:
            service.execute(QueryRequest.knn(query_positions[0], k=1))
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["serve.responses"] == 1
        assert "serve.latency_ms" in snapshot["latency"]
        assert "hit_rate" in snapshot["cache"]

    def test_duplicate_inflight_requests_coalesce(
        self, serve_framework, query_positions
    ):
        request = QueryRequest.range_query(query_positions[0], 7.0)
        with QueryService(serve_framework, workers=1, max_batch=16) as service:
            responses = service.serve([request, request, request])
        values = {tuple(r.value) for r in responses}
        assert len(values) == 1
        executed = service.metrics.counter("serve.cache_misses").value
        coalesced = service.metrics.counter("serve.coalesced").value
        hits = service.metrics.counter("serve.cache_hits").value
        assert executed + hits == 3 or coalesced > 0

    def test_invalid_knobs_rejected(self, serve_framework):
        with pytest.raises(ValueError):
            QueryService(serve_framework, workers=0)
        with pytest.raises(ValueError):
            QueryService(serve_framework, queue_capacity=0)
        with pytest.raises(ValueError):
            QueryService(serve_framework, max_batch=0)

    def test_accepts_engine_and_resilient_wrappers(self, serve_framework):
        engine = QueryEngine(serve_framework)
        assert QueryService(engine).engine is engine
        resilient = engine.resilient()
        assert QueryService(resilient).engine is engine
