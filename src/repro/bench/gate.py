"""Benchmark regression gate: ``python -m repro bench --gate``.

Compares a fresh measurement against the benchmark artifacts committed
at the repo root (``BENCH_serve.json``, ``BENCH_shard.json``,
``BENCH_labels.json``, ``BENCH_overload.json``, ``BENCH_reconfig.json``)
and exits non-zero when the serving tiers, the labels backend, the
overload-control stack, or live reconfiguration regressed.  Two kinds of
checks:

* **ratio metrics** (``speedup``, ``speedup_vs_service``,
  ``bytes_ratio``, ``availability``) — compared with a relative
  tolerance (default 20%).
  Ratios divide out the host's absolute speed, so a fresh run on a
  slower machine still gates meaningfully; absolute qps/wall numbers are
  deliberately *not* compared across machines.
* **exactness metrics** (``mismatches``, ``degraded``) — hard equality
  against zero, no tolerance ever: a serving tier that returns one wrong
  or silently partial answer has failed regardless of how fast it is.

The fresh run replays the committed artifact's own scale and seed, so
the comparison is workload-identical by construction.  One exception:
the labels artifact commits a ``campus`` section (13k+ doors, the
at-scale evidence) *and* a ``quick`` section, and the gate replays only
the latter — rebuilding a campus-sized labeling on every gate run costs
minutes of CPU for no extra regression signal, and the label-compactness
ratio regresses at every scale or at none.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Relative slack for ratio metrics (fresh >= committed * (1 - tol)).
DEFAULT_TOLERANCE = 0.20

#: artifact file -> (ratio metric paths, exact-zero metric paths)
GATE_ARTIFACTS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "BENCH_serve.json": (("speedup",), ("mismatches",)),
    "BENCH_shard.json": (
        ("speedup", "speedup_vs_service"),
        ("mismatches", "sharded.degraded"),
    ),
    "BENCH_labels.json": (
        ("quick.bytes_ratio",),
        ("quick.mismatches",),
    ),
    "BENCH_overload.json": (
        ("protected.goodput_ratio_capped", "protected.slo_attainment"),
        ("mismatches",),
    ),
    "BENCH_reconfig.json": (
        ("rolling.availability", "rolling.answered_fraction"),
        ("rolling.mismatches", "rolling.epoch_mix_violations"),
    ),
}


def _lookup(result: Dict[str, Any], path: str) -> Any:
    value: Any = result
    for part in path.split("."):
        value = value[part]
    return value


def compare_benchmarks(
    artifact: str,
    committed: Dict[str, Any],
    fresh: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict[str, Any]]:
    """Check ``fresh`` against ``committed`` for one artifact.

    Returns one check dict per gated metric:
    ``{"artifact", "metric", "kind", "committed", "fresh", "ok", "detail"}``.
    """
    if artifact not in GATE_ARTIFACTS:
        raise ValueError(f"no gate definition for artifact {artifact!r}")
    ratio_paths, exact_paths = GATE_ARTIFACTS[artifact]
    checks: List[Dict[str, Any]] = []
    for path in ratio_paths:
        committed_value = float(_lookup(committed, path))
        fresh_value = float(_lookup(fresh, path))
        floor = committed_value * (1.0 - tolerance)
        ok = fresh_value >= floor
        checks.append({
            "artifact": artifact,
            "metric": path,
            "kind": "ratio",
            "committed": committed_value,
            "fresh": fresh_value,
            "ok": ok,
            "detail": (
                f"fresh {fresh_value:.3f} vs floor {floor:.3f} "
                f"(committed {committed_value:.3f}, tolerance {tolerance:.0%})"
            ),
        })
    for path in exact_paths:
        fresh_value = int(_lookup(fresh, path))
        ok = fresh_value == 0
        checks.append({
            "artifact": artifact,
            "metric": path,
            "kind": "exact",
            "committed": 0,
            "fresh": fresh_value,
            "ok": ok,
            "detail": f"must be 0, measured {fresh_value}",
        })
    return checks


def _fresh_serve(committed: Dict[str, Any]) -> Dict[str, Any]:
    from repro.bench.serve import SERVE_PAPER, SERVE_QUICK, measure_serve

    scale = SERVE_PAPER if committed.get("scale") == "paper" else SERVE_QUICK
    return measure_serve(scale, seed=int(committed.get("seed", 0)))


def _fresh_shard(committed: Dict[str, Any]) -> Dict[str, Any]:
    from repro.bench.shard import SHARD_PAPER, SHARD_QUICK, measure_shard

    scale = SHARD_PAPER if committed.get("scale") == "paper" else SHARD_QUICK
    return measure_shard(scale, seed=int(committed.get("seed", 0)))


def _fresh_labels(committed: Dict[str, Any]) -> Dict[str, Any]:
    from repro.bench.labels import LABELS_QUICK, measure_labels

    seed = int(committed.get("seed", 0))
    return {"seed": seed, "quick": measure_labels(LABELS_QUICK, seed=seed)}


def _fresh_overload(committed: Dict[str, Any]) -> Dict[str, Any]:
    from repro.bench.overload import (
        OVERLOAD_PAPER,
        OVERLOAD_QUICK,
        measure_overload,
    )

    scale = (
        OVERLOAD_PAPER if committed.get("scale") == "paper" else OVERLOAD_QUICK
    )
    return measure_overload(scale, seed=int(committed.get("seed", 0)))


def _fresh_reconfig(committed: Dict[str, Any]) -> Dict[str, Any]:
    from repro.bench.reconfig import (
        RECONFIG_PAPER,
        RECONFIG_QUICK,
        measure_reconfig,
    )

    scale = (
        RECONFIG_PAPER if committed.get("scale") == "paper" else RECONFIG_QUICK
    )
    return measure_reconfig(scale, seed=int(committed.get("seed", 0)))


_FRESH_RUNNERS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "BENCH_serve.json": _fresh_serve,
    "BENCH_shard.json": _fresh_shard,
    "BENCH_labels.json": _fresh_labels,
    "BENCH_overload.json": _fresh_overload,
    "BENCH_reconfig.json": _fresh_reconfig,
}


def run_gate(
    root: Optional[Path] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    artifacts: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Gate every committed artifact under ``root`` (default: cwd).

    Returns ``{"ok": bool, "checks": [...], "skipped": [...]}``; a
    missing artifact file is skipped (reported, not failed) so the gate
    stays usable in repos that commit only one of the benchmarks.
    """
    root = Path(root) if root is not None else Path.cwd()
    names = artifacts if artifacts is not None else sorted(GATE_ARTIFACTS)
    checks: List[Dict[str, Any]] = []
    skipped: List[str] = []
    for name in names:
        if name not in GATE_ARTIFACTS:
            raise ValueError(f"no gate definition for artifact {name!r}")
        path = root / name
        if not path.exists():
            skipped.append(name)
            continue
        with open(path) as handle:
            committed = json.load(handle)
        fresh = _FRESH_RUNNERS[name](committed)
        checks.extend(compare_benchmarks(name, committed, fresh, tolerance))
    return {
        "ok": all(check["ok"] for check in checks),
        "checks": checks,
        "skipped": skipped,
    }


def render_gate_report(report: Dict[str, Any]) -> str:
    """Plain-text gate summary, one line per check."""
    lines = []
    for check in report["checks"]:
        status = "PASS" if check["ok"] else "FAIL"
        lines.append(
            f"{status}  {check['artifact']}  {check['metric']}: "
            f"{check['detail']}"
        )
    for name in report["skipped"]:
        lines.append(f"SKIP  {name}: not committed")
    verdict = "GATE PASS" if report["ok"] else "GATE FAIL"
    lines.append(verdict)
    return "\n".join(lines)
