"""Tests for IndoorSpace / IndoorSpaceBuilder."""

import math

import pytest

from repro.exceptions import ModelError, UnknownEntityError
from repro.geometry import Point, rectangle
from repro.model import IndoorSpaceBuilder
from repro.model.figure1 import (
    D12,
    D13,
    D15,
    HALLWAY,
    P,
    Q,
    ROOM_13,
    build_figure1,
)


@pytest.fixture(scope="module")
def space():
    return build_figure1()


class TestBuilderValidation:
    def test_duplicate_partition_id_raises(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        with pytest.raises(ModelError):
            builder.add_partition(1, rectangle(4, 0, 8, 4))

    def test_duplicate_door_id_raises(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_door(1, Point(4, 2), connects=(1, 2))
        with pytest.raises(ModelError):
            builder.add_door(1, Point(4, 3), connects=(1, 2))

    def test_bad_door_geometry_raises(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        with pytest.raises(ModelError):
            builder.add_door(1, "not geometry", connects=(1, 2))

    def test_door_outside_partition_raises_at_build(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_door(1, Point(20, 20), connects=(1, 2))
        with pytest.raises(ModelError):
            builder.build()
        # ... unless geometric validation is explicitly disabled.
        builder.build(validate_geometry=False)

    def test_door_to_unknown_partition_raises(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        with pytest.raises(UnknownEntityError):
            builder.add_door(1, Point(4, 2), connects=(1, 2))


class TestIndoorSpaceAccess:
    def test_entity_counts(self, space):
        assert space.num_partitions == 10
        assert space.num_doors == 11
        assert space.num_floors == 1

    def test_unknown_lookups_raise(self, space):
        with pytest.raises(UnknownEntityError):
            space.partition(999)
        with pytest.raises(UnknownEntityError):
            space.door(999)

    def test_iteration_is_ordered(self, space):
        ids = [p.partition_id for p in space.partitions()]
        assert ids == sorted(ids)
        door_ids = [d.door_id for d in space.doors()]
        assert door_ids == sorted(door_ids)

    def test_partitions_on_floor(self, space):
        assert len(space.partitions_on_floor(0)) == 10
        assert space.partitions_on_floor(3) == []


class TestHostPartition:
    def test_p_is_in_room_13(self, space):
        assert space.get_host_partition(P).partition_id == ROOM_13

    def test_q_is_in_hallway(self, space):
        assert space.get_host_partition(Q).partition_id == HALLWAY

    def test_point_in_no_partition(self, space):
        assert space.get_host_partition(Point(100, 100)) is None
        with pytest.raises(ModelError):
            space.require_host_partition(Point(100, 100))

    def test_shared_wall_resolves_to_lowest_id(self, space):
        # (8, 6) is d13's midpoint, on the wall between hallway 10 and room 13.
        host = space.get_host_partition(Point(8, 6))
        assert host.partition_id == HALLWAY

    def test_custom_locator_is_used(self, space):
        calls = []

        def locator(point):
            calls.append(point)
            return ROOM_13

        space.set_partition_locator(locator)
        try:
            assert space.get_host_partition(Q).partition_id == ROOM_13
            assert calls == [Q]
        finally:
            space.set_partition_locator(None)

    def test_locator_returning_none(self, space):
        space.set_partition_locator(lambda point: None)
        try:
            assert space.get_host_partition(Q) is None
        finally:
            space.set_partition_locator(None)


class TestDistV:
    def test_dist_v_to_touching_door(self, space):
        # P = (6.2, 8) and d15's midpoint is (6, 8).
        assert space.dist_v(P, D15) == pytest.approx(0.2)

    def test_dist_v_to_non_touching_door_is_inf(self, space):
        # d12 does not touch room 13, P's host partition.
        assert math.isinf(space.dist_v(P, D12))

    def test_dist_v_with_explicit_partition(self, space):
        partition = space.partition(ROOM_13)
        assert space.dist_v(P, D13, partition) == pytest.approx(
            P.distance_to(Point(8, 6))
        )

    def test_dist_v_for_homeless_point_is_inf(self, space):
        assert math.isinf(space.dist_v(Point(100, 100), D13))
