"""Guard rails for the public API surface and documentation discipline."""

import importlib
import inspect
import pkgutil

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_no_duplicates_in_all(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_is_exposed(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_every_submodule_imports(self):
        failures = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            if module_info.name.endswith("__main__"):
                continue
            try:
                importlib.import_module(module_info.name)
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append((module_info.name, exc))
        assert failures == []


def public_objects():
    """Every public module, class, and function in the repro package."""
    results = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module_info.name.endswith("__main__"):
            continue
        module = importlib.import_module(module_info.name)
        results.append((module_info.name, module))
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_info.name:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                results.append((f"{module_info.name}.{name}", obj))
                if inspect.isclass(obj):
                    for method_name, method in vars(obj).items():
                        if method_name.startswith("_"):
                            continue
                        if inspect.isfunction(method):
                            results.append(
                                (
                                    f"{module_info.name}.{name}.{method_name}",
                                    method,
                                )
                            )
    return results


class TestDocstrings:
    @pytest.mark.parametrize(
        "qualified_name,obj",
        public_objects(),
        ids=[name for name, _ in public_objects()],
    )
    def test_every_public_item_is_documented(self, qualified_name, obj):
        doc = inspect.getdoc(obj)
        assert doc and doc.strip(), f"{qualified_name} lacks a docstring"
