"""Epoch-fenced live topology reconfiguration for the sharded tier.

The single-process tier mutates its space through a
:class:`~repro.persist.wal.WalRecorder` and rebuilds in place; the sharded
tier cannot — its indexes live in worker processes that must keep serving
while the building changes.  This module is the supervisor-side control
plane that rolls a topology mutation across the fleet with zero downtime:

1. **Record.**  The mutation is WAL-appended and applied to the
   supervisor-side space (the same crash contract as the single-process
   tier: the record is durable before the memory mutates, so crash
   recovery replays it).
2. **Retarget + fence.**  Every shard slot's spec is swapped to the new
   epoch and the supervisor's *fence epoch* rises — the round's point of
   no return.  From here every restart (planned or crash) rejoins at the
   new epoch, and the router refuses to merge exact replies from below
   the fence: a query racing the round degrades to its Euclidean gap
   fill; it never mixes epochs and never serves a stale exact answer.
3. **Prepare.**  Each worker receives the WAL delta over its pipe and
   stages the next epoch's index on a *private copy* of its space
   (:func:`stage_framework`) — labels shards reuse the WAL-driven
   incremental repair of :mod:`repro.labels.repair`, matrix shards
   rebuild — while still answering queries at the old epoch.
4. **Commit.**  After every reachable worker acks its prepare, commits
   roll shard by shard; each ack atomically flips that worker's served
   epoch.  A worker that cannot prepare (or died in between) falls to
   the rebuild rung: a *planned* restart re-materialises it from the
   already-retargeted spec, rejoining at the new epoch without burning
   the supervisor's fault budget.

Both phases are idempotent on the worker side (``prepare``/``commit``
for an epoch at or below the served one ack success), so a torn round —
the coordinator dying between any two steps — is healed by
:meth:`ReconfigCoordinator.resume`, which simply re-runs the round.
Even with no resume, the supervisor's monitor notices workers whose
served epoch lags their (retargeted) spec beyond a grace period and
planned-restarts them: the fleet converges to the fence epoch no matter
where the round tore.

Chaos crash points (:mod:`repro.runtime.crashpoints`):

* ``reconfig.prepare.torn`` — die after the WAL record and the retarget,
  before any worker stages (the fence is up, nothing is staged);
* ``reconfig.commit.torn`` — die after the first commit ack (the fleet
  straddles two epochs; fencing keeps every merge single-epoch);
* ``reconfig.kill_after_prepare`` — SIGKILL a worker between its prepare
  ack and its commit (its respawn rejoins at the new epoch from the
  retargeted spec).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.index.framework import IndexFramework
from repro.index.objects import ObjectStore
from repro.io.json_io import space_from_dict, space_to_dict
from repro.persist.wal import TopologyWAL, WalRecord, WalRecorder, replay_records
from repro.runtime import crashpoints
from repro.serve.metrics import MetricsRegistry
from repro.shard.router import ScatterGatherRouter
from repro.shard.spec import respec_for_epoch
from repro.shard.supervisor import ShardSupervisor

#: Counters the tier's readiness payload surfaces (see
#: :meth:`ReconfigCoordinator.snapshot`).
RECONFIG_COUNTERS = (
    "reconfig.rounds",
    "reconfig.prepares",
    "reconfig.prepare_failures",
    "reconfig.commits",
    "reconfig.commit_failures",
    "reconfig.aborts",
    "reconfig.resumes",
    "reconfig.planned_restarts",
    "reconfig.fenced_replies",
    "reconfig.retried_replies",
    "reconfig.replans",
)


def _owned_store_on(space, objects: ObjectStore) -> ObjectStore:
    """``objects`` re-homed onto ``space`` with every object keeping its
    recorded host partition.

    Topology mutations never move objects between partitions (partition
    geometry is immutable; doors only rewire the graph), so carrying the
    host assignment over verbatim — instead of re-resolving it
    geometrically — preserves the disjoint-and-covering ownership the
    scatter-gather merge proofs rest on, bit for bit.
    """
    store = ObjectStore(space, objects.cell_size)
    for obj in objects:
        store.add(obj, partition_id=objects.host_partition_id(obj.object_id))
    return store


def reindex_framework(
    framework: IndexFramework,
    records: Optional[Sequence[WalRecord]] = None,
) -> Tuple[IndexFramework, str]:
    """A fresh framework over ``framework.space`` (already mutated to the
    target epoch), preserving object ownership exactly.

    Labels-backed frameworks go through the WAL-driven incremental repair
    (:func:`repro.labels.repair.repair_framework`) and only rebuild when
    the delta demands it (``remove_door``, or past the patch budget);
    matrix-backed ones always rebuild — exactly the asymmetry the
    restart ladder already encodes.  Returns ``(fresh, how)`` where
    ``how`` names the path taken (``"repair: …"`` or ``"rebuild"``).
    """
    backend = str(framework.build_config.get("backend", "matrix"))
    if backend == "labels":
        from repro.labels.repair import repair_framework

        fresh, outcome = repair_framework(framework, records=records)
        how = (
            f"repair: {outcome.reason}"
            if outcome.repaired
            else f"rebuild: {outcome.reason}"
        )
    else:
        fresh = IndexFramework.build(
            framework.space,
            cell_size=framework.objects.cell_size,
            reference_matrix=bool(
                framework.build_config.get("reference_matrix")
            ),
            backend=backend,
        )
        how = "rebuild"
    staged = fresh.with_objects(
        _owned_store_on(framework.space, framework.objects)
    )
    return staged, how


def stage_framework(
    framework: IndexFramework,
    records: Sequence[WalRecord],
    backend: str,
) -> Tuple[IndexFramework, str]:
    """Stage the next epoch's framework for a worker's ``prepare``.

    The delta replays on a **private copy** of the space (the dict
    round-trip is float-exact), so the serving framework — and every
    query interleaved with the staging — is untouched until ``commit``
    swaps the whole framework atomically.  Returns ``(staged, how)``.
    """
    staged_space = space_from_dict(space_to_dict(framework.space))
    staged_space.restore_topology_epoch(framework.space.topology_epoch)
    replay_records(staged_space, list(records))
    shim = IndexFramework(
        staged_space,
        framework.distance_index,
        framework.dpt,
        framework.rtree,
        framework.objects,
    )
    # The shim is honestly stale: old indexes over the mutated copy, with
    # the old built epoch — exactly what the repair path expects.
    shim.built_epoch = framework.built_epoch
    shim.build_config = dict(framework.build_config)
    shim.build_config["backend"] = backend
    return reindex_framework(shim, records)


class ReconfigCoordinator:
    """Supervisor-side driver of epoch-fenced rolling reconfiguration.

    One coordinator per :class:`~repro.shard.service.ShardedQueryService`;
    every topology mutation funnels through :meth:`mutate` (usually via
    the :class:`ReconfigRecorder` facade), which runs the full
    record → retarget → prepare → commit round under one lock, so rounds
    serialize and the fleet is never asked to straddle three epochs.

    Args:
        supervisor: the worker fleet.
        router: the scatter-gather router (pruning pauses during rounds).
        framework: the supervisor-side full framework; its space is the
            one the WAL recorder mutates.
        wal: the durable topology WAL (shared with crash recovery).
        shard_ids: every shard in the placement.
        metrics: shared registry (``reconfig.*`` counters).
        ack_timeout_s: per-worker prepare/commit ack budget.
        on_adopt: called with the new full framework after each committed
            round (the service swaps its published reference there).
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        router: ScatterGatherRouter,
        framework: IndexFramework,
        wal: TopologyWAL,
        shard_ids: Sequence[int],
        *,
        metrics: Optional[MetricsRegistry] = None,
        ack_timeout_s: float = 30.0,
        on_adopt: Optional[Callable[[IndexFramework], None]] = None,
    ) -> None:
        self.supervisor = supervisor
        self.router = router
        self.wal = wal
        self.metrics = metrics or MetricsRegistry()
        self.ack_timeout_s = ack_timeout_s
        self._on_adopt = on_adopt
        self._shard_ids = list(shard_ids)
        # Two locks with one global order (round -> state -> everything
        # the supervisor/router own).  ``_round_lock`` serialises whole
        # mutation rounds and is deliberately held across the blocking
        # per-worker prepare/commit acks; it guards nothing the query
        # path reads.  ``_lock`` is the short-critical-section guard for
        # the reference state below (framework, recorder, pending,
        # staged) so readiness probes and chaos injectors never wedge
        # behind a slow worker's ack.
        self._round_lock = threading.RLock()
        self._lock = threading.Lock()
        self._framework = framework
        self._recorder = WalRecorder(framework.space, wal)
        #: Records of every round not yet committed fleet-wide.  Workers
        #: replay idempotently (records at or below their epoch are
        #: skipped), so re-delivering the whole list is always safe.
        self._pending: List[WalRecord] = []
        self._staged_fw: Optional[IndexFramework] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def space(self):
        """The supervisor-side space (chaos injectors read door ids)."""
        with self._lock:
            return self._framework.space

    @property
    def framework(self) -> IndexFramework:
        """The current full framework (post-round: the adopted one)."""
        with self._lock:
            return self._framework

    def snapshot(self) -> Dict[str, Any]:
        """The ``reconfig`` block of the tier's readiness payload."""
        with self._lock:
            pending = len(self._pending)
        payload: Dict[str, Any] = {
            "committed_epoch": self.supervisor.committed_epoch,
            "fence_epoch": self.supervisor.fence_epoch,
            "pending_records": pending,
            "epoch_skew": {
                shard: info["epoch_skew"]
                for shard, info in
                self.supervisor.readiness()["shards"].items()
            },
        }
        for name in RECONFIG_COUNTERS:
            payload[name.split(".", 1)[1]] = self.metrics.counter(name).value
        return payload

    # ------------------------------------------------------------------
    # Mutation rounds
    # ------------------------------------------------------------------
    def mutate(self, fn: Callable[[WalRecorder], Any]) -> Any:
        """Run one topology mutation as a full epoch-fenced round.

        ``fn`` receives the WAL recorder and performs exactly one
        mutation.  If the WAL append or the in-memory apply fails, the
        round aborts cleanly (the recorder already rolled the record
        back; nothing was retargeted).  Once the record is durable the
        round is past its point of no return: any later failure —
        including an injected crash — leaves a torn round that
        :meth:`resume` (or the supervisor's epoch-lag monitor) heals.
        """
        # The round lock is held across the blocking worker acks on
        # purpose: it serialises rounds, and nothing the query path or
        # the readiness probe reads is guarded by it (that state lives
        # under self._lock), so a slow worker stalls only other
        # mutations.
        with self._round_lock:
            return self._mutate_round(fn)  # repro: noqa REP007

    def _mutate_round(self, fn: Callable[[WalRecorder], Any]) -> Any:
        """One full round; caller holds ``self._round_lock``."""
        self._resume_round()  # heal any torn round before a new one
        # Pruning bounds mix the distance index with door geometry,
        # so they must freeze *before* the space mutates under them.
        self.router.begin_reconfig()
        with self._lock:
            recorder = self._recorder
        try:
            result = fn(recorder)
        except BaseException:
            self.metrics.increment("reconfig.aborts")
            self.router.abort_reconfig()
            raise
        record = recorder.last_record
        assert record is not None
        with self._lock:
            self._pending.append(record)
            pending = list(self._pending)
            framework = self._framework
        target = framework.space.topology_epoch
        # Reindex the full framework and retarget every slot BEFORE
        # any prepare: from this instant every restart rejoins at
        # ``target`` and the router fences below it — no exact
        # old-epoch answer can be merged even if we die right here.
        staged, _ = reindex_framework(framework, pending)
        with self._lock:
            self._staged_fw = staged
        self.supervisor.retarget(
            {
                shard_id: respec_for_epoch(
                    self.supervisor.spec_of(shard_id), staged
                )
                for shard_id in self._shard_ids
            },
            target,
        )
        crashpoints.fire("reconfig.prepare.torn")
        self._run_round(target)
        self._finish_round(target)
        return result

    def resume(self) -> bool:
        """Complete a torn round, if any; returns whether one was healed.

        Safe to call any time (``await_healthy`` does): when the fence
        and committed epochs agree there is nothing to do.
        """
        # Held across worker acks by design — see mutate().
        with self._round_lock:
            return self._resume_round()  # repro: noqa REP007

    def _resume_round(self) -> bool:
        """Heal a torn round; caller holds ``self._round_lock``."""
        target = self.supervisor.fence_epoch
        if self.supervisor.committed_epoch >= target:
            return False
        self.metrics.increment("reconfig.resumes")
        with self._lock:
            staged = self._staged_fw
            framework = self._framework
            pending = list(self._pending)
        if staged is None or staged.space.topology_epoch != target:
            # The staged framework was lost with the torn round; the live
            # space already carries the mutation (it applied before the
            # fence rose), so reindexing it lands at the target.
            staged, _ = reindex_framework(framework, pending)
            with self._lock:
                self._staged_fw = staged
        self._run_round(target)
        self._finish_round(target)
        return True

    def _run_round(self, target: int) -> None:
        """Prepare then commit every shard; failures fall to the rebuild
        rung (a planned restart from the already-retargeted spec).
        Caller holds ``self._round_lock`` only — the ack waits must not
        block state readers."""
        with self._lock:
            records = [record.to_dict() for record in self._pending]
        self.metrics.increment("reconfig.rounds")
        prepared: List[int] = []
        for shard_id in self._shard_ids:
            self.metrics.increment("reconfig.prepares")
            ok, detail = self.supervisor.prepare_shard(
                shard_id, target, records, self.ack_timeout_s
            )
            if not ok:
                self.metrics.increment("reconfig.prepare_failures")
                # Rebuild rung: restart onto the retargeted spec — the
                # worker rejoins at ``target`` without a delta to apply.
                self.supervisor.planned_restart(shard_id)
                continue
            prepared.append(shard_id)
            if crashpoints.consume("reconfig.kill_after_prepare"):
                # Chaos: this worker dies in the window between its
                # prepare ack and its commit.  Its respawn (from the
                # retargeted spec) rejoins at the new epoch.
                self.supervisor.kill_shard(shard_id)
        for shard_id in prepared:
            self.metrics.increment("reconfig.commits")
            ok, detail = self.supervisor.commit_shard(
                shard_id, target, self.ack_timeout_s
            )
            if ok:
                crashpoints.fire("reconfig.commit.torn")
            else:
                self.metrics.increment("reconfig.commit_failures")
                self.supervisor.planned_restart(shard_id)

    def _finish_round(self, target: int) -> None:
        """Publish the round: every shard either flipped or is restarting
        onto the new spec, so the epoch is committed fleet-wide.
        Caller holds ``self._round_lock``."""
        self.supervisor.mark_committed(target)
        with self._lock:
            new_fw = self._staged_fw
            assert new_fw is not None
            self._framework = new_fw
            self._recorder = WalRecorder(new_fw.space, self.wal)
            self._pending.clear()
            self._staged_fw = None
        self.router.finish_reconfig(new_fw)
        if self._on_adopt is not None:
            self._on_adopt(new_fw)


class ReconfigRecorder:
    """The sharded tier's drop-in for :class:`WalRecorder`.

    Same mutation surface — ``add_partition`` / ``add_door`` /
    ``remove_door`` — but each call runs one complete epoch-fenced
    rolling round across the fleet (chaos campaigns drive topology
    actions through this without knowing which tier is serving).
    """

    def __init__(self, coordinator: ReconfigCoordinator) -> None:
        self._coordinator = coordinator

    @property
    def space(self):
        """The supervisor-side space (post-mutation epochs read here)."""
        return self._coordinator.space

    def add_partition(self, *args, **kwargs):
        """Record, then roll a new partition across the fleet."""
        return self._coordinator.mutate(
            lambda recorder: recorder.add_partition(*args, **kwargs)
        )

    def add_door(self, *args, **kwargs):
        """Record, then roll a new door across the fleet."""
        return self._coordinator.mutate(
            lambda recorder: recorder.add_door(*args, **kwargs)
        )

    def remove_door(self, *args, **kwargs):
        """Record, then roll a door removal across the fleet."""
        return self._coordinator.mutate(
            lambda recorder: recorder.remove_door(*args, **kwargs)
        )
