#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the Figure-1 floor plan, inspects the topology mappings, prints the
door-to-door distance matrix and distance index matrix of the six-door
sub-plan (the paper's Figures 3 and 4), reproduces the motivating shortest
path example, and runs a range and a kNN query.

Run:  python examples/quickstart.py
"""

from repro import IndoorObject, Point, QueryEngine
from repro.index import DistanceIndexMatrix
from repro.model.figure1 import (
    D12,
    D13,
    D15,
    P,
    Q,
    ROOM_12,
    ROOM_13,
    SUBPLAN_DOORS,
    build_figure1,
    build_figure1_subplan,
)


def show_topology(space):
    print("== Topology mappings (paper §III-A) ==")
    topo = space.topology
    print(f"D2P(d12)  = {sorted(topo.d2p(D12))}   (unidirectional)")
    print(f"D2P(d15)  = {sorted(topo.d2p(D15))}   (unidirectional)")
    print(f"P2D-enter(room 12) = {sorted(topo.enterable_doors(ROOM_12))}")
    print(f"P2D-leave(room 12) = {sorted(topo.leaveable_doors(ROOM_12))}")
    print(f"P2D-leave(room 13) = {sorted(topo.leaveable_doors(ROOM_13))}")
    print()


def show_matrices():
    print("== M_d2d and M_idx of the six-door sub-plan (Figures 3-4) ==")
    subplan = build_figure1_subplan()
    index = DistanceIndexMatrix.build(subplan.distance_graph)
    labels = [f"d{d}" for d in SUBPLAN_DOORS]
    print("M_d2d (metres):")
    print("      " + " ".join(f"{label:>6}" for label in labels))
    for i, from_door in enumerate(SUBPLAN_DOORS):
        row = " ".join(
            f"{index.distance(from_door, to_door):6.2f}"
            for to_door in SUBPLAN_DOORS
        )
        print(f"{labels[i]:>5} {row}")
    print("M_idx (door ids, ascending distance per row):")
    for i, from_door in enumerate(SUBPLAN_DOORS):
        ordered = " ".join(f"d{d:<3}" for d in index.midx[i])
        print(f"{labels[i]:>5}  {ordered}")
    asym = (
        index.distance(11, 15),
        index.distance(15, 11),
    )
    print(f"asymmetry from one-way doors: M[d11,d15]={asym[0]:.2f} "
          f"!= M[d15,d11]={asym[1]:.2f}")
    print()


def show_motivating_example(engine):
    print("== The motivating example (paper Figure 1) ==")
    path = engine.shortest_path(P, Q)
    print(f"p = {P} (room 13),  q = {Q} (hallway)")
    print(f"shortest walk:   {path.describe()}")
    baseline = engine.door_count_distance(P, Q)
    print(
        f"door-count model (Li & Lee): crosses {baseline.doors_crossed} door "
        f"but walks {baseline.walking_distance:.2f} m "
        f"(+{baseline.walking_distance - path.distance:.2f} m extra)"
    )
    print()


def show_queries(engine):
    print("== Distance-aware queries (paper §V) ==")
    engine.add_objects(
        [
            IndoorObject(1, Point(6.5, 9.0), payload="defibrillator"),
            IndoorObject(2, Point(1.0, 5.0), payload="extinguisher"),
            IndoorObject(3, Point(2.0, 8.0), payload="printer"),
            IndoorObject(4, Point(18.0, 8.0), payload="coffee machine"),
        ]
    )
    in_range = engine.range_query(P, radius=8.0)
    print(f"objects within 8 m of p: "
          f"{[engine.get_object(i).payload for i in in_range]}")
    for object_id, distance in engine.knn(P, k=3):
        print(f"  kNN: {engine.get_object(object_id).payload:<15} "
              f"{distance:6.2f} m")
    print()


def main():
    space = build_figure1()
    engine = QueryEngine.for_space(space)
    print(f"Figure-1 plan: {space.num_partitions} partitions, "
          f"{space.num_doors} doors\n")
    show_topology(space)
    show_matrices()
    show_motivating_example(engine)
    show_queries(engine)


if __name__ == "__main__":
    main()
