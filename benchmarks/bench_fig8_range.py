"""Figure 8: range query performance (Algorithm 5).

Paper setting: 30-floor building (~1 000 doors) for the object-count and
radius sweeps; 10-40 floors at fixed per-floor density for the floor sweep;
100 queries per point; r defaults to 30 m.  Paper findings to reproduce in
shape:

* (a) the M_idx index improves range queries only *moderately* (the sorted
  scan helps little when the radius bounds the search anyway);
* (b) the index helps more as the building grows;
* (c) response time grows with the radius but stays moderate.
"""

import pytest

from conftest import query_framework
from repro.bench.harness import get_building
from repro.queries import range_query
from repro.synthetic import random_positions

QUERIES_PER_POINT = 10


def _run_queries(framework, positions, radius, use_index):
    for q in positions:
        range_query(framework, q, radius, use_index=use_index)


@pytest.mark.parametrize("objects", [1_000, 10_000, 50_000])
@pytest.mark.parametrize("use_index", [True, False], ids=["with_idx", "without_idx"])
def test_fig8a_range_vs_object_count(benchmark, objects, use_index):
    framework = query_framework(30, objects)
    positions = random_positions(get_building(30), QUERIES_PER_POINT, seed=81)
    benchmark.extra_info.update({"objects": objects, "radius_m": 30})
    benchmark.pedantic(
        _run_queries,
        args=(framework, positions, 30.0, use_index),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("floors", [10, 20, 30, 40])
@pytest.mark.parametrize("use_index", [True, False], ids=["with_idx", "without_idx"])
def test_fig8b_range_vs_floor_count(benchmark, floors, use_index):
    framework = query_framework(floors, floors * 1_500)
    positions = random_positions(get_building(floors), QUERIES_PER_POINT, seed=82)
    benchmark.extra_info.update({"floors": floors, "radius_m": 20})
    benchmark.pedantic(
        _run_queries,
        args=(framework, positions, 20.0, use_index),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("radius", [10.0, 20.0, 30.0, 40.0, 50.0])
def test_fig8c_range_vs_radius(benchmark, radius):
    framework = query_framework(30, 10_000)
    positions = random_positions(get_building(30), QUERIES_PER_POINT, seed=83)
    benchmark.extra_info.update({"objects": 10_000, "radius_m": radius})
    benchmark.pedantic(
        _run_queries,
        args=(framework, positions, radius, True),
        rounds=2,
        iterations=1,
    )


def test_fig8_results_identical_with_and_without_index(benchmark):
    """Sanity gate: the no-index baseline is an execution strategy, not a
    different query — results must match exactly."""
    framework = query_framework(30, 5_000)
    positions = random_positions(get_building(30), 5, seed=85)
    for q in positions:
        assert range_query(framework, q, 30.0, use_index=True) == range_query(
            framework, q, 30.0, use_index=False
        )
    benchmark.pedantic(
        _run_queries, args=(framework, positions, 30.0, True), rounds=1, iterations=1
    )
