"""All-pairs door-to-door distances (the raw material of §IV's indexes).

Two builders produce the same N×N matrix:

* :func:`build_distance_matrix_reference` — the paper-faithful construction:
  one full Algorithm-1 expansion per source door.
* :func:`build_distance_matrix` — a numerically identical bulk builder that
  assembles the door graph (doors = nodes, finite f_d2d entries = directed
  weighted edges, parallel edges reduced by minimum) into a sparse CSR matrix
  and runs :func:`scipy.sparse.csgraph.dijkstra` over it.  On a 40-floor
  synthetic building this is ~two orders of magnitude faster in CPython,
  which matters because the paper's query experiments precompute the matrix
  for buildings with ~1 300 doors.

Tests assert element-wise equality of the two builders on several topologies.

Matrix rows/columns are ordered by ascending door id; the mapping is returned
alongside the matrix so callers never guess.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.distance.door_to_door import door_to_door_search
from repro.model.distance_graph import DistanceAwareGraph


@dataclass(frozen=True)
class DoorDistanceMatrix:
    """An all-pairs door-to-door distance matrix with its id mapping.

    Attributes:
        matrix: ``matrix[i, j]`` is the minimum walking distance from door
            ``door_ids[i]`` to door ``door_ids[j]``; ``inf`` marks
            unreachable pairs; the diagonal is 0.
        door_ids: ascending door ids; ``index_of`` inverts the mapping.
    """

    matrix: np.ndarray
    door_ids: Tuple[int, ...]

    @property
    def index_of(self) -> Dict[int, int]:
        """Door id → row/column index."""
        return {door_id: i for i, door_id in enumerate(self.door_ids)}

    def distance(self, from_door: int, to_door: int) -> float:
        """Distance between two doors by id."""
        index = self.index_of
        return float(self.matrix[index[from_door], index[to_door]])

    @property
    def size(self) -> int:
        """Number of doors N (the matrix is N×N)."""
        return len(self.door_ids)


def _door_graph_edges(
    graph: DistanceAwareGraph,
) -> List[Tuple[int, int, float]]:
    """All finite f_d2d edges ``(from_door, to_door, weight)``, with parallel
    edges (several partitions connecting the same door pair) reduced to their
    minimum weight."""
    topology = graph.space.topology
    best: Dict[Tuple[int, int], float] = {}
    for partition_id in topology.partition_ids:
        enterable = topology.enterable_doors(partition_id)
        leaveable = topology.leaveable_doors(partition_id)
        for from_door in enterable:
            for to_door in leaveable:
                if from_door == to_door:
                    continue
                weight = graph.fd2d(partition_id, from_door, to_door)
                if math.isinf(weight):
                    continue
                key = (from_door, to_door)
                if weight < best.get(key, math.inf):
                    best[key] = weight
    return [(i, j, w) for (i, j), w in best.items()]


def build_distance_matrix(graph: DistanceAwareGraph) -> DoorDistanceMatrix:
    """Bulk all-pairs builder over a sparse door graph (see module docs).

    The subtlety versus a naive Dijkstra on the door graph is that there is
    none: once f_d2d weights are materialised as directed edges between door
    midpoints, Algorithm 1 *is* Dijkstra on that graph, so the bulk builder
    is exact, not an approximation.
    """
    door_ids = graph.space.topology.door_ids
    n = len(door_ids)
    index = {door_id: i for i, door_id in enumerate(door_ids)}
    if n == 0:
        return DoorDistanceMatrix(np.zeros((0, 0)), ())

    edges = _door_graph_edges(graph)
    rows = np.fromiter((index[i] for i, _, _ in edges), dtype=np.int64, count=len(edges))
    cols = np.fromiter((index[j] for _, j, _ in edges), dtype=np.int64, count=len(edges))
    weights = np.fromiter((w for _, _, w in edges), dtype=np.float64, count=len(edges))
    adjacency = csr_matrix((weights, (rows, cols)), shape=(n, n))
    matrix = dijkstra(adjacency, directed=True)
    np.fill_diagonal(matrix, 0.0)
    return DoorDistanceMatrix(matrix, door_ids)


def build_distance_matrix_reference(
    graph: DistanceAwareGraph,
) -> DoorDistanceMatrix:
    """Paper-faithful all-pairs builder: one Algorithm-1 run per door."""
    door_ids = graph.space.topology.door_ids
    n = len(door_ids)
    matrix = np.full((n, n), math.inf)
    for i, source in enumerate(door_ids):
        result = door_to_door_search(graph, source)
        for j, target in enumerate(door_ids):
            matrix[i, j] = result.distance_to(target)
        matrix[i, i] = 0.0
    return DoorDistanceMatrix(matrix, door_ids)
