"""Unit and property tests for points and segments."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geometry import Point, Segment
from repro.geometry.primitives import orientation

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False, width=32)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -7.1)
        assert p.distance_to(p) == 0.0

    def test_cross_floor_distance_raises(self):
        with pytest.raises(GeometryError):
            Point(0, 0, floor=0).distance_to(Point(0, 0, floor=1))

    def test_points_are_hashable_and_comparable(self):
        assert len({Point(1, 2), Point(1, 2), Point(1, 3)}) == 2
        assert Point(1, 2) < Point(1, 3)

    def test_translated(self):
        assert Point(1, 2, 3).translated(0.5, -1) == Point(1.5, 1.0, 3)

    def test_on_floor(self):
        assert Point(1, 2, 0).on_floor(4) == Point(1, 2, 4)

    def test_approx_equals_respects_floor(self):
        assert Point(1, 2, 0).approx_equals(Point(1 + 1e-12, 2, 0))
        assert not Point(1, 2, 0).approx_equals(Point(1, 2, 1))

    @given(coords, coords, coords, coords)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        p, q = Point(x1, y1), Point(x2, y2)
        assert p.distance_to(q) == pytest.approx(q.distance_to(p))

    @given(coords, coords, coords, coords, coords, coords)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        p, q, r = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert p.distance_to(r) <= p.distance_to(q) + q.distance_to(r) + 1e-6


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, 1)) == 1

    def test_clockwise(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, -1)) == -1

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) == 0


class TestSegment:
    def test_length_and_midpoint(self):
        seg = Segment(Point(0, 0), Point(4, 0))
        assert seg.length == pytest.approx(4.0)
        assert seg.midpoint == Point(2, 0)

    def test_mixed_floor_endpoints_raise(self):
        with pytest.raises(GeometryError):
            Segment(Point(0, 0, 0), Point(1, 1, 1))

    def test_contains_point_on_segment(self):
        seg = Segment(Point(0, 0), Point(10, 10))
        assert seg.contains_point(Point(5, 5))
        assert seg.contains_point(Point(0, 0))
        assert not seg.contains_point(Point(5, 5.1))
        assert not seg.contains_point(Point(11, 11))

    def test_crossing_segments_intersect(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert a.intersects(b)
        assert a.properly_intersects(b)

    def test_touching_at_endpoint_is_not_proper(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(2, 2), Point(4, 0))
        assert a.intersects(b)
        assert not a.properly_intersects(b)

    def test_collinear_overlap_is_not_proper(self):
        a = Segment(Point(0, 0), Point(4, 0))
        b = Segment(Point(2, 0), Point(6, 0))
        assert a.intersects(b)
        assert not a.properly_intersects(b)

    def test_parallel_disjoint_segments(self):
        a = Segment(Point(0, 0), Point(4, 0))
        b = Segment(Point(0, 1), Point(4, 1))
        assert not a.intersects(b)

    def test_different_floor_segments_never_intersect(self):
        a = Segment(Point(0, 0, 0), Point(2, 2, 0))
        b = Segment(Point(0, 2, 1), Point(2, 0, 1))
        assert not a.intersects(b)

    @given(coords, coords, coords, coords)
    def test_intersects_is_symmetric(self, x1, y1, x2, y2):
        a = Segment(Point(x1, y1), Point(x2, y2))
        b = Segment(Point(y1, x2), Point(y2, x1))
        assert a.intersects(b) == b.intersects(a)
        assert a.properly_intersects(b) == b.properly_intersects(a)
