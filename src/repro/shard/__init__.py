"""Shared-nothing multi-process serving for distance-aware indoor queries.

The paper's §IV indexes decompose naturally per floor: objects, their grid
buckets, and their host partitions are floor-local, while M_d2d / M_idx /
the DPT describe the whole building and are read-only at serving time.
This package exploits exactly that split:

* :mod:`~repro.shard.placement` — deterministic partition→shard mapping
  (floor groups, or contiguous partition runs for small spaces);
* :mod:`~repro.shard.shm` — the static matrices published once as
  ``multiprocessing.shared_memory`` segments, reattached read-only by
  every worker in milliseconds;
* :mod:`~repro.shard.spec` / :mod:`~repro.shard.worker` — self-sufficient
  worker specs and the arena → snapshot → rebuild restart ladder;
* :mod:`~repro.shard.supervisor` — heartbeat supervision, liveness
  deadlines, exponential-backoff restarts under a per-shard budget;
* :mod:`~repro.shard.router` — scatter-gather range / kNN / pt2pt that is
  bit-identical to the single-process engine while the fleet is healthy
  and *explicitly degraded, never silently wrong* when it is not;
* :mod:`~repro.shard.reconfig` — epoch-fenced live topology
  reconfiguration: WAL-recorded mutations rolled across the fleet with a
  two-phase prepare/commit, zero downtime, and a router fence that
  guarantees no merge ever mixes epochs;
* :mod:`~repro.shard.service` — the assembled tier behind the familiar
  ``SupervisedQueryService``-style lifecycle.
"""

from repro.shard.placement import FloorPlacement
from repro.shard.reconfig import (
    ReconfigCoordinator,
    ReconfigRecorder,
    stage_framework,
)
from repro.shard.router import ScatterGatherRouter
from repro.shard.service import ShardedQueryService
from repro.shard.shm import SharedIndexArena
from repro.shard.spec import (
    ShardSpec,
    materialize,
    respec_for_epoch,
    shard_framework,
    shard_specs,
)
from repro.shard.supervisor import ShardAnswer, ShardState, ShardSupervisor

__all__ = [
    "FloorPlacement",
    "ReconfigCoordinator",
    "ReconfigRecorder",
    "ScatterGatherRouter",
    "ShardAnswer",
    "ShardSpec",
    "ShardState",
    "ShardSupervisor",
    "ShardedQueryService",
    "SharedIndexArena",
    "materialize",
    "respec_for_epoch",
    "shard_framework",
    "shard_specs",
    "stage_framework",
]
