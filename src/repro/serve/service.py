""":class:`QueryService` — concurrent query serving over a `QueryEngine`.

The serving pipeline, request to response:

1. **Admission.**  ``submit`` stamps the request with a quality cap drawn
   from the :class:`ShedPolicy` given the queue's occupancy at that
   moment.  Under pressure the service never rejects — it descends the
   existing :class:`~repro.runtime.ladder.QualityLevel` degradation
   ladder instead, trading answer quality for instant service exactly as
   :class:`~repro.runtime.resilient.ResilientQueryEngine` does for
   failures.
2. **Freshness.**  Before an exact batch runs, a stale framework (the
   space's ``topology_epoch`` moved) is rebuilt under the bounded
   :class:`~repro.runtime.retry.RetryPolicy`.
3. **Caching.**  Answers live in an :class:`~repro.serve.cache.
   EpochLRUCache` keyed by the epoch they were computed at; PR 1's
   staleness machinery invalidates the whole cache for free.
4. **Batching.**  Cache misses are grouped by
   :func:`~repro.serve.batch.plan_batches` and executed over shared
   substrates (one M_idx row walk / one Dijkstra frontier per group).
5. **Metrics.**  Every stage feeds the
   :class:`~repro.serve.metrics.MetricsRegistry`; ``metrics_snapshot``
   returns the whole picture as one dict.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Union

from repro.exceptions import (
    CorruptIndexError,
    DeadlineExceededError,
    ReproError,
    StaleIndexError,
)
from repro.index.framework import IndexFramework
from repro.overload.budget import RetryBudget, run_with_budget
from repro.overload.limiter import AdaptiveConcurrencyLimiter
from repro.queries.baselines import brute_force_knn, brute_force_range
from repro.queries.engine import QueryEngine
from repro.runtime.integrity import require_index_integrity
from repro.runtime.ladder import (
    QualityLevel,
    door_count_distance_value,
    door_count_knn,
    door_count_range,
    euclidean_knn,
    euclidean_lower_bound,
    euclidean_range,
    exact_fallback_distance,
)
from repro.runtime.resilient import ResilientQueryEngine
from repro.runtime.retry import RetryPolicy
from repro.serve.batch import execute_group, plan_batches
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import EpochLRUCache
from repro.serve.metrics import MetricsRegistry
from repro.serve.requests import QueryKind, QueryRequest, QueryResponse

_MISS = object()

#: Exact-path failures a circuit breaker counts and degrades around; other
#: errors (validation, unreachable positions, ...) still fail fast.
_BREAKER_FAULTS = (CorruptIndexError, DeadlineExceededError)


class ServiceState(enum.Enum):
    """Lifecycle states of a query service.

    ``STARTING → READY → DRAINING → STOPPED``; a supervised service
    (:class:`~repro.serve.lifecycle.SupervisedQueryService`) spends its
    ``STARTING`` phase in snapshot recovery and reports ``NOT_READY`` from
    its readiness probe until that completes.
    """

    STARTING = "starting"
    READY = "ready"
    DRAINING = "draining"
    STOPPED = "stopped"


@dataclass(frozen=True)
class ShedPolicy:
    """Admission-pressure thresholds mapped onto the degradation ladder.

    Occupancy is ``queued requests / queue_capacity`` at submit time.

    Attributes:
        degrade_at: occupancy at/above which requests are capped at the
            ``DOOR_COUNT`` rung (``None`` disables this band — the
            door-count evaluators are exact-ish but not cheap, so the
            default skips straight to shedding).
        shed_at: occupancy at/above which requests are capped at the
            instantaneous ``EUCLIDEAN`` rung.
    """

    degrade_at: Optional[float] = None
    shed_at: float = 1.0

    def quality_cap(self, occupancy: float) -> QualityLevel:
        """The highest ladder rung a request admitted at ``occupancy``
        may be served at."""
        if occupancy >= self.shed_at:
            return QualityLevel.EUCLIDEAN
        if self.degrade_at is not None and occupancy >= self.degrade_at:
            return QualityLevel.DOOR_COUNT
        return QualityLevel.EXACT_INDEXED


@dataclass
class _Ticket:
    """One admitted request travelling through the pipeline."""

    request: QueryRequest
    future: "Future[QueryResponse]"
    enqueued_at: float
    quality_cap: QualityLevel
    retries: int = 0
    shed: bool = field(init=False)

    def __post_init__(self) -> None:
        self.shed = self.quality_cap is not QualityLevel.EXACT_INDEXED


class QueryService:
    """A thread-pool query server with batching, caching, and shedding.

    Args:
        engine: the engine to serve — a :class:`QueryEngine`, a bare
            :class:`IndexFramework`, or a :class:`ResilientQueryEngine`
            (unwrapped to its inner engine; the service supplies its own
            staleness handling).
        workers: worker threads draining the admission queue.
        queue_capacity: nominal queue size; occupancy relative to it
            drives the :class:`ShedPolicy`.  Submissions block (brief
            backpressure) only beyond ``2 × queue_capacity``.
        max_batch: most requests one worker drains per round; groups
            formed within a round share work.
        cache_capacity: entry bound for the epoch-keyed distance cache.
        enable_cache / enable_batching: feature switches, mostly for
            benchmarking the layers separately.
        shed_policy: occupancy thresholds (default: shed to Euclidean at
            a full queue, no door-count band).
        rebuild_on_stale: rebuild the framework when the topology epoch
            moved (otherwise stale exact queries fail with
            :class:`~repro.exceptions.StaleIndexError`).
        retry_policy: bounds for those rebuilds.
        metrics: a registry to share with other components (one is
            created when omitted).
        breaker: a :class:`~repro.serve.breaker.CircuitBreaker` guarding
            the exact indexed path.  With one installed, exact-path
            failures (corrupt index, deadline, mid-query loss) route the
            affected requests to the breaker's fallback rung instead of
            failing them, and repeated failures suspend exact serving
            until a probe succeeds.  ``None`` (default) keeps the
            fail-fast behaviour.
        integrity_gate: run the §IV index invariant checks before every
            exact round.  Closes the silent-wrong-answer window: a
            corrupt M_d2d is *detected* (and, with a breaker, degraded
            around) rather than served.  Off by default — the check is
            O(doors²) per round.
        limiter: an :class:`~repro.overload.AdaptiveConcurrencyLimiter`.
            With one installed, shed occupancy is measured against its
            adaptive limit instead of the fixed ``queue_capacity``, and
            every served latency feeds its AIMD adjustment — admission
            tightens when measured p99 breaches the SLO.  The hard
            ``2 × queue_capacity`` backpressure bound stays.
        retry_budget: a :class:`~repro.overload.RetryBudget` shared by
            the staleness re-admissions and the rebuild retries.  When
            the budget denies, a stale ticket is answered exactly but
            index-free (``EXACT_FALLBACK``) instead of re-queued, and a
            rebuild raises its last error instead of retrying — retry
            storms cannot amplify an outage.
    """

    def __init__(
        self,
        engine: Union[QueryEngine, IndexFramework, ResilientQueryEngine],
        *,
        workers: int = 2,
        queue_capacity: int = 128,
        max_batch: int = 16,
        cache_capacity: int = 4096,
        enable_cache: bool = True,
        enable_batching: bool = True,
        shed_policy: Optional[ShedPolicy] = None,
        rebuild_on_stale: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        breaker: Optional[CircuitBreaker] = None,
        integrity_gate: bool = False,
        limiter: Optional[AdaptiveConcurrencyLimiter] = None,
        retry_budget: Optional[RetryBudget] = None,
    ) -> None:
        if isinstance(engine, ResilientQueryEngine):
            engine = engine.engine
        elif isinstance(engine, IndexFramework):
            engine = QueryEngine(engine)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self._workers = workers
        self._queue_capacity = queue_capacity
        self._max_batch = max_batch
        self._enable_batching = enable_batching
        self._shed_policy = shed_policy or ShedPolicy()
        self._rebuild_on_stale = rebuild_on_stale
        self._retry_policy = retry_policy or RetryPolicy()
        self.cache = EpochLRUCache(cache_capacity if enable_cache else 0)
        self.metrics = metrics or MetricsRegistry()
        self.breaker = breaker
        self._integrity_gate = integrity_gate
        self.limiter = limiter
        self.retry_budget = retry_budget
        if limiter is not None and limiter.metrics is not self.metrics:
            limiter.metrics = self.metrics
        if retry_budget is not None and retry_budget.metrics is not self.metrics:
            retry_budget.metrics = self.metrics
        if breaker is not None and breaker.metrics is not self.metrics:
            # One registry, one picture: transitions land next to the
            # serve counters they explain.
            breaker.metrics = self.metrics

        self._queue: Deque[_Ticket] = deque()
        self._cv = threading.Condition()
        self._rebuild_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._stopping = False
        self._state = ServiceState.STARTING

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> ServiceState:
        """Where the service is in its lifecycle.

        ``DRAINING`` resolves to ``STOPPED`` once every worker has exited
        (relevant after a ``stop(wait=False)``).
        """
        with self._cv:
            if self._state is ServiceState.DRAINING and not any(
                thread.is_alive() for thread in self._threads
            ):
                self._state = ServiceState.STOPPED
            return self._state

    def start(self) -> "QueryService":
        """Spawn the worker threads (idempotent).

        After a ``stop(wait=False)`` the previous generation of workers
        may still be draining; restarting then first joins them, so a
        drained worker can never outlive its generation and keep
        consuming the new generation's queue.
        """
        with self._cv:
            drainers = list(self._threads) if self._stopping else []
            if not drainers and any(t.is_alive() for t in self._threads):
                return self
        for thread in drainers:
            thread.join()
        with self._cv:
            if any(thread.is_alive() for thread in self._threads):
                return self  # a concurrent start() won the race
            self._threads = []
            self._stopping = False
            self._state = ServiceState.READY
            for i in range(self._workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-{i}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Stop accepting work; workers drain the queue, then exit."""
        with self._cv:
            self._stopping = True
            if self._state is ServiceState.READY:
                self._state = ServiceState.DRAINING
            self._cv.notify_all()
            threads = list(self._threads)
        if wait:
            for thread in threads:
                thread.join()
            with self._cv:
                self._state = ServiceState.STOPPED
                self._threads = []

    def __enter__(self) -> "QueryService":
        """Start the workers on context entry."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Drain and stop the workers on context exit."""
        self.stop(wait=True)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a worker."""
        with self._cv:
            return len(self._queue)

    def submit(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Admit one request; resolve its answer asynchronously.

        Never rejects: at/above the shed threshold the request is tagged
        for a cheaper degradation-ladder rung instead.  Blocks briefly
        only when the queue exceeds twice its nominal capacity (hard
        backpressure bound).
        """
        if not self._threads:
            self.start()
        future: "Future[QueryResponse]" = Future()
        with self._cv:
            while (
                len(self._queue) >= 2 * self._queue_capacity
                and not self._stopping
            ):
                self._cv.wait(timeout=0.05)
            capacity = (
                self.limiter.limit
                if self.limiter is not None
                else self._queue_capacity
            )
            occupancy = len(self._queue) / capacity
            cap = self._shed_policy.quality_cap(occupancy)
            ticket = _Ticket(request, future, time.perf_counter(), cap)
            self._queue.append(ticket)
            self._cv.notify()
        self.metrics.increment("serve.requests")
        if ticket.shed:
            self.metrics.increment("serve.shed")
        return future

    def serve(self, requests: Iterable[QueryRequest]) -> List[QueryResponse]:
        """Submit many requests and wait for all; responses in input order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Serve one request synchronously on the calling thread.

        Bypasses the admission queue (so never sheds) but runs the same
        freshness / cache / batch pipeline as queued requests.
        """
        future: "Future[QueryResponse]" = Future()
        ticket = _Ticket(
            request, future, time.perf_counter(), QualityLevel.EXACT_INDEXED
        )
        self.metrics.increment("serve.requests")
        self._process([ticket])
        return future.result()

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Counters, latency percentiles, and cache stats as one dict."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.stats()
        if self.breaker is not None:
            snapshot["breaker"] = self.breaker.snapshot()
        return snapshot

    # ------------------------------------------------------------------
    # Worker pipeline
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stopping:
                    self._cv.wait()
                if not self._queue and self._stopping:
                    return
                limit = self._max_batch if self._enable_batching else 1
                batch: List[_Ticket] = []
                while self._queue and len(batch) < limit:
                    batch.append(self._queue.popleft())
                self._cv.notify_all()  # wake blocked submitters
            self._process(batch)

    def _process(self, tickets: List[_Ticket]) -> None:
        exact: List[_Ticket] = []
        for ticket in tickets:
            if ticket.quality_cap is QualityLevel.EXACT_INDEXED:
                exact.append(ticket)
            else:
                self._serve_degraded(ticket)
        if not exact:
            return

        breaker = self.breaker
        if breaker is not None and not breaker.allow_exact():
            for ticket in exact:
                self._serve_degraded(
                    ticket, level=breaker.fallback, via_breaker=True
                )
            return

        try:
            self._ensure_fresh()
            if self._integrity_gate:
                require_index_integrity(self.engine.framework)
        except ReproError as exc:
            self._exact_path_failed(exact, exc)
            return
        framework = self.engine.framework
        epoch = framework.space.topology_epoch

        # Coalesce identical queries within the round: one execution fans
        # out to every ticket asking the same question.
        pending: "Dict[tuple, List[_Ticket]]" = {}
        for ticket in exact:
            key = ticket.request.cache_key()
            value = self.cache.get(key, epoch, _MISS)
            if value is not _MISS:
                self.metrics.increment("serve.cache_hits")
                self._complete(ticket, value, epoch=epoch, cached=True)
                continue
            self.metrics.increment("serve.cache_misses")
            waiters = pending.setdefault(key, [])
            if waiters:
                self.metrics.increment("serve.coalesced")
            waiters.append(ticket)

        if not pending:
            return
        representatives = [waiters[0].request for waiters in pending.values()]
        groups = plan_batches(framework.space, representatives)
        self.metrics.increment("serve.batches", len(groups))
        for group in groups:
            if group.shared:
                self.metrics.increment(
                    "serve.batched_requests", len(group.requests)
                )
            for request, value in execute_group(framework, group):
                waiters = pending[request.cache_key()]
                if isinstance(value, StaleIndexError):
                    for ticket in waiters:
                        self._retry(ticket, value)
                elif isinstance(value, Exception):
                    self._exact_path_failed(waiters, value)
                else:
                    if breaker is not None:
                        breaker.record_success()
                    if framework.space.topology_epoch == epoch:
                        self.cache.put(request.cache_key(), epoch, value)
                    for index, ticket in enumerate(waiters):
                        self._complete(
                            ticket,
                            value,
                            epoch=epoch,
                            batched=group.shared,
                            cached=index > 0,
                        )

    def _retry(self, ticket: _Ticket, exc: Exception) -> None:
        """Re-admit a ticket that hit mid-flight staleness (bounded)."""
        if not self._rebuild_on_stale or ticket.retries >= 2:
            self._fail(ticket, exc)
            return
        if (
            self.retry_budget is not None
            and not self.retry_budget.try_spend()
        ):
            # Retry storm underway: answer exactly but index-free
            # rather than re-amplify the rebuild queue.
            self._serve_degraded(ticket, level=QualityLevel.EXACT_FALLBACK)
            return
        ticket.retries += 1
        self.metrics.increment("serve.retries")
        if self._threads:
            with self._cv:
                self._queue.append(ticket)
                self._cv.notify()
        else:
            self._process([ticket])

    def _ensure_fresh(self) -> None:
        """Rebuild the framework when the topology epoch moved past it."""
        if self.engine.framework.is_fresh:
            return
        if not self._rebuild_on_stale:
            self.engine.framework.check_fresh()  # raises StaleIndexError
        with self._rebuild_lock:
            if not self.engine.framework.is_fresh:
                self.engine.framework = run_with_budget(
                    self._retry_policy,
                    self.engine.framework.rebuild,
                    self.retry_budget,
                )
                self.metrics.increment("serve.rebuilds")

    def _exact_path_failed(
        self, tickets: List[_Ticket], exc: Exception
    ) -> None:
        """Handle tickets whose exact indexed path failed.

        With a breaker installed and an index/deadline fault, the failure
        is counted and the tickets are served from the breaker's fallback
        rung; otherwise the original fail-fast behaviour applies.
        """
        breaker = self.breaker
        if breaker is not None and isinstance(exc, _BREAKER_FAULTS):
            breaker.record_failure()
            for ticket in tickets:
                self._serve_degraded(
                    ticket, level=breaker.fallback, via_breaker=True
                )
            return
        for ticket in tickets:
            self._fail(ticket, exc)

    def _serve_degraded(
        self,
        ticket: _Ticket,
        level: Optional[QualityLevel] = None,
        via_breaker: bool = False,
    ) -> None:
        """Answer from a lower ladder rung (never cached).

        ``level`` defaults to the ticket's admission-time quality cap;
        the breaker passes its fallback rung explicitly.
        """
        framework = self.engine.framework
        request = ticket.request
        epoch = framework.space.topology_epoch
        if level is None:
            level = ticket.quality_cap
        try:
            if request.kind is QueryKind.RANGE:
                if level is QualityLevel.EXACT_FALLBACK:
                    value: Any = brute_force_range(
                        framework.space, framework.objects,
                        request.position, request.radius,
                    )
                elif level is QualityLevel.DOOR_COUNT:
                    value = door_count_range(
                        framework, request.position, request.radius
                    )
                else:
                    value = euclidean_range(
                        framework, request.position, request.radius
                    )
            elif request.kind is QueryKind.KNN:
                if level is QualityLevel.EXACT_FALLBACK:
                    value = brute_force_knn(
                        framework.space, framework.objects,
                        request.position, request.k,
                    )
                elif level is QualityLevel.DOOR_COUNT:
                    value = door_count_knn(
                        framework, request.position, request.k
                    )
                else:
                    value = euclidean_knn(framework, request.position, request.k)
            else:
                if level is QualityLevel.EXACT_FALLBACK:
                    value = exact_fallback_distance(
                        framework, request.position, request.target
                    )
                elif level is QualityLevel.DOOR_COUNT:
                    value = door_count_distance_value(
                        framework, request.position, request.target
                    )
                else:
                    value = euclidean_lower_bound(
                        request.position, request.target
                    )
        except ReproError as exc:
            self._fail(ticket, exc)
            return
        self.metrics.increment(
            "serve.breaker_degraded" if via_breaker else "serve.degraded"
        )
        self._complete(
            ticket, value, epoch=epoch, quality=level,
            shed=not via_breaker, breaker=via_breaker,
        )

    def _complete(
        self,
        ticket: _Ticket,
        value: Any,
        *,
        epoch: int,
        quality: QualityLevel = QualityLevel.EXACT_INDEXED,
        cached: bool = False,
        batched: bool = False,
        shed: bool = False,
        breaker: bool = False,
    ) -> None:
        latency_ms = (time.perf_counter() - ticket.enqueued_at) * 1000.0
        response = QueryResponse(
            request=ticket.request,
            value=value,
            quality=quality,
            served_epoch=epoch,
            cached=cached,
            batched=batched,
            shed=shed,
            breaker=breaker,
            latency_ms=latency_ms,
        )
        self.metrics.increment("serve.responses")
        self.metrics.observe("serve.latency_ms", latency_ms)
        self.metrics.observe(
            f"serve.latency_ms.{ticket.request.kind.value}", latency_ms
        )
        if self.limiter is not None:
            self.limiter.observe(latency_ms)
        if self.retry_budget is not None and not shed and not breaker:
            # Only full-quality answers refill the budget: a degraded
            # service must not finance the retries that keep it degraded.
            self.retry_budget.record_success()
        ticket.future.set_result(response)

    def _fail(self, ticket: _Ticket, exc: Exception) -> None:
        self.metrics.increment("serve.errors")
        ticket.future.set_exception(exc)
