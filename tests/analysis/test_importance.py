"""Tests for topological door-significance analysis."""

import pytest

from repro.analysis import (
    critical_doors,
    door_betweenness,
    strongly_connected_partitions,
)
from repro.geometry import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder
from repro.model.figure1 import (
    D1,
    D2,
    D13,
    D15,
    D21,
    D24,
    build_figure1,
)
from repro.synthetic import BuildingConfig, generate_building


@pytest.fixture(scope="module")
def figure1():
    return build_figure1()


def chain_space(rooms=4, extra_door=False):
    """Rooms in a row, one connecting door per wall; optionally a second
    door duplicating the middle wall."""
    builder = IndoorSpaceBuilder()
    for i in range(rooms):
        builder.add_partition(i + 1, rectangle(i * 10, 0, i * 10 + 10, 10))
    door_id = 1
    for i in range(rooms - 1):
        builder.add_door(
            door_id,
            Segment(Point((i + 1) * 10, 4), Point((i + 1) * 10, 6)),
            connects=(i + 1, i + 2),
        )
        door_id += 1
    if extra_door:
        builder.add_door(
            door_id,
            Segment(Point(20, 8), Point(20, 9)),
            connects=(2, 3),
        )
    return builder.build()


class TestBetweenness:
    def test_middle_door_of_a_chain_dominates(self):
        space = chain_space(rooms=4)
        scores = door_betweenness(space)
        # Door 2 (between rooms 2 and 3) lies on every cross-building path.
        assert scores[2] == max(scores.values())
        assert scores[2] > scores[1]

    def test_scores_are_fractions(self, figure1):
        scores = door_betweenness(figure1)
        assert set(scores) == set(figure1.door_ids)
        for value in scores.values():
            assert 0.0 <= value <= 1.0

    def test_every_door_participates_in_its_own_pairs(self, figure1):
        # Endpoints count, so every door has nonzero betweenness in a
        # strongly connected plan.
        scores = door_betweenness(figure1)
        assert all(value > 0 for value in scores.values())

    def test_sampling_restricts_evaluation(self, figure1):
        scores = door_betweenness(figure1, sample_pairs=[(D1, D13)])
        assert scores[D1] == 1.0
        assert scores[D13] == 1.0
        assert scores[D24] == 0.0

    def test_d13_outranks_d15_for_room13_traffic(self, figure1):
        # d13 is bidirectional and on most routes touching room 13; d15 only
        # serves the one-way shortcut.
        scores = door_betweenness(figure1)
        assert scores[D13] > scores[D15]


class TestScc:
    def test_figure1_is_one_component(self, figure1):
        components = strongly_connected_partitions(figure1)
        assert len(components) == 1
        assert components[0] == frozenset(figure1.partition_ids)

    def test_one_way_trap_splits_components(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 2), one_way=True
        )
        components = strongly_connected_partitions(builder.build())
        assert sorted(len(c) for c in components) == [1, 1]

    def test_synthetic_building_is_one_component(self):
        building = generate_building(BuildingConfig(floors=2, rooms_per_floor=4))
        components = strongly_connected_partitions(building.space)
        assert len(components) == 1


class TestCriticalDoors:
    def test_every_chain_door_is_critical(self):
        space = chain_space(rooms=4)
        assert critical_doors(space) == [1, 2, 3]

    def test_redundant_door_is_not_critical(self):
        space = chain_space(rooms=4, extra_door=True)
        critical = critical_doors(space)
        # The duplicated middle wall (doors 2 and 4) is redundant.
        assert 2 not in critical
        assert 4 not in critical
        assert critical == [1, 3]

    def test_figure1_critical_set(self, figure1):
        critical = set(critical_doors(figure1))
        # Star-like doors with a single partition behind them are critical...
        assert {D1, D2, D13} <= critical
        # ...but the d21/d22/d24 triangle has redundancy: closing d21 still
        # leaves v21 reachable via d24.
        assert D21 not in critical
        assert D24 not in critical

    def test_one_way_door_criticality(self, figure1):
        # Closing d15 removes the shortcut but room 12 stays reachable only
        # through d15 — so d15 is critical for entering room 12.
        critical = set(critical_doors(figure1))
        assert D15 in critical
