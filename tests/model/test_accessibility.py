"""Tests for the accessibility base graph G_accs (§III-B)."""

import math

import pytest

from repro.model.figure1 import (
    D12,
    D13,
    D15,
    D21,
    HALLWAY,
    OUTDOOR,
    ROOM_11,
    ROOM_12,
    ROOM_13,
    ROOM_20,
    ROOM_21,
    STAIRCASE_50,
    build_figure1,
)


@pytest.fixture(scope="module")
def graph():
    return build_figure1().accessibility


class TestStructure:
    def test_vertices_are_partitions(self, graph):
        assert OUTDOOR in graph.vertices
        assert HALLWAY in graph.vertices
        assert STAIRCASE_50 in graph.vertices
        assert len(graph.vertices) == 10

    def test_labels_are_doors(self, graph):
        assert set(graph.labels) == {1, 2, 3, 11, 12, 13, 14, 15, 21, 22, 24}

    def test_unidirectional_door_yields_single_edge(self, graph):
        d12_edges = [e for e in graph.edges if e.door_id == D12]
        assert len(d12_edges) == 1
        assert d12_edges[0].source == ROOM_12
        assert d12_edges[0].target == HALLWAY

    def test_bidirectional_door_yields_two_edges(self, graph):
        d21_edges = [e for e in graph.edges if e.door_id == D21]
        assert len(d21_edges) == 2
        assert {(e.source, e.target) for e in d21_edges} == {
            (ROOM_20, ROOM_21),
            (ROOM_21, ROOM_20),
        }

    def test_out_edges_of_room_13(self, graph):
        doors = {e.door_id for e in graph.out_edges(ROOM_13)}
        assert doors == {D13, D15}

    def test_in_edges_of_room_12(self, graph):
        doors = {e.door_id for e in graph.in_edges(ROOM_12)}
        assert doors == {D15}

    def test_neighbors(self, graph):
        assert graph.neighbors(ROOM_12) == frozenset({HALLWAY})
        assert graph.neighbors(ROOM_13) == frozenset({HALLWAY, ROOM_12})


class TestReachability:
    def test_everything_reachable_from_hallway(self, graph):
        assert graph.reachable_from(HALLWAY) == frozenset(graph.vertices)

    def test_figure1_is_strongly_connected(self, graph):
        # Room 12 is exit-only via d12 but can still be entered via d15,
        # so the whole plan is strongly connected.
        assert graph.is_strongly_connected()

    def test_one_way_subgraph_breaks_strong_connectivity(self):
        from repro.geometry import Point, Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_door(
            1, Segment(Point(4, 1), Point(4, 3)), connects=(1, 2), one_way=True
        )
        space = builder.build()
        assert not space.accessibility.is_strongly_connected()

    def test_door_hop_distance_motivating_example(self, graph):
        # The Li & Lee "length" of the p -> q routes: via d13 one door is
        # crossed; via d15 and d12 two doors are crossed.  The door-count
        # model therefore prefers d13 even though walking is longer.
        assert graph.door_hop_distance(ROOM_13, HALLWAY) == 1.0

    def test_door_hop_distance_same_partition_is_zero(self, graph):
        assert graph.door_hop_distance(HALLWAY, HALLWAY) == 0.0

    def test_door_hop_distance_multi_hop(self, graph):
        assert graph.door_hop_distance(ROOM_11, ROOM_21) == 3.0

    def test_door_hop_distance_unreachable(self):
        from repro.geometry import Point, Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_door(
            1, Segment(Point(4, 1), Point(4, 3)), connects=(1, 2), one_way=True
        )
        graph = builder.build().accessibility
        assert math.isinf(graph.door_hop_distance(2, 1))
