"""REP005 — export coherence.

Three invariants on the public surface:

1. Every name listed in a package ``__init__``'s ``__all__`` is actually
   bound in that module (def, class, assignment, or import) — a phantom
   entry breaks ``from package import *`` and misleads readers.
2. Every *public* top-level ``def``/``class`` in an ``__init__`` module
   appears in ``__all__`` when one is declared — an unexported public
   definition is an accidental API.
3. ``__all__`` has no duplicates, and the package ``__version__`` in
   ``repro/__init__.py`` matches ``project.version`` in
   ``pyproject.toml`` — the two drifted apart once already (1.4.0 vs
   1.2.0), which is exactly the silent skew this rule pins.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import Checker, register

_VERSION_RE = re.compile(
    r'^version\s*=\s*["\']([^"\']+)["\']', re.MULTILINE
)


def _literal_all(node: ast.expr) -> Optional[List[Tuple[str, int, int]]]:
    """Entries of a literal ``__all__`` list/tuple with their positions."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    entries: List[Tuple[str, int, int]] = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            entries.append((element.value, element.lineno, element.col_offset))
        else:
            return None
    return entries


def _bound_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign):
            names.update(_target_names(node.target))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports (TYPE_CHECKING, optional deps) still
            # bind names on some path; recurse one level.
            for child in ast.walk(node):
                if isinstance(child, ast.ImportFrom):
                    for alias in child.names:
                        if alias.name != "*":
                            names.add(alias.asname or alias.name)
                elif isinstance(child, ast.Import):
                    for alias in child.names:
                        names.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    names.add(child.name)
    return names


def _target_names(target: ast.expr) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    return set()


@register
class ExportCoherenceChecker(Checker):
    rule_id = "REP005"
    summary = "__all__ entries bound, public defs exported, versions agree"

    def __init__(self) -> None:
        self._pyproject_version: Optional[str] = None

    def scan(self, project: ProjectContext) -> None:
        path = project.pyproject_path
        if path.exists():
            match = _VERSION_RE.search(path.read_text(encoding="utf-8"))
            if match:
                self._pyproject_version = match.group(1)

    def check(
        self, module: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        if module.module_name == "repro":
            findings.extend(self._check_version(module))
        if not module.is_package_init:
            return findings

        all_node: Optional[ast.Assign] = None
        entries: Optional[List[Tuple[str, int, int]]] = None
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                all_node = node
                entries = _literal_all(node.value)

        if all_node is None or entries is None:
            return findings

        bound = _bound_names(module.tree)
        seen: Set[str] = set()
        for name, line, col in entries:
            if name in seen:
                findings.append(
                    self.finding(
                        module,
                        line,
                        col,
                        f"duplicate __all__ entry '{name}'",
                        hint="remove the repeated entry",
                    )
                )
            seen.add(name)
            if name not in bound:
                findings.append(
                    self.finding(
                        module,
                        line,
                        col,
                        f"__all__ exports '{name}' but the module never "
                        "binds it",
                        hint="import or define the name, or drop the entry",
                    )
                )

        for node in module.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if node.name.startswith("_") or node.name in seen:
                    continue
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"public definition '{node.name}' in a package "
                        "__init__ is missing from __all__",
                        hint=f"add '{node.name}' to __all__ or rename it "
                        "with a leading underscore",
                    )
                )
        return findings

    def _check_version(self, module: ModuleContext) -> Iterable[Finding]:
        if self._pyproject_version is None:
            return []
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__version__"
                for t in node.targets
            ):
                continue
            if not (
                isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                continue
            declared = node.value.value
            if declared != self._pyproject_version:
                return [
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"__version__ = '{declared}' disagrees with "
                        f"pyproject.toml version "
                        f"'{self._pyproject_version}'",
                        hint="bump both in the same commit",
                    )
                ]
        return []
