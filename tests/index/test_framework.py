"""Tests for the assembled IndexFramework and the ObjectStore."""

import pytest

from repro.exceptions import ModelError, UnknownEntityError
from repro.geometry import Point, rectangle
from repro.index import IndexFramework, IndoorObject, ObjectStore
from repro.model.figure1 import (
    HALLWAY,
    P,
    ROOM_11,
    ROOM_13,
    build_figure1,
)


@pytest.fixture
def space():
    return build_figure1()


@pytest.fixture
def objects():
    return [
        IndoorObject(1, Point(6.5, 9.0), payload="defibrillator"),
        IndoorObject(2, Point(1.0, 5.0), payload="extinguisher"),
        IndoorObject(3, Point(2.0, 8.0), payload="printer"),
    ]


class TestObjectStore:
    def test_add_resolves_host_partition(self, space, objects):
        store = ObjectStore(space)
        assert store.add(objects[0]) == ROOM_13
        assert store.add(objects[1]) == HALLWAY
        assert store.host_partition_id(1) == ROOM_13

    def test_add_with_explicit_partition_skips_lookup(self, space):
        store = ObjectStore(space)
        store.add(IndoorObject(9, Point(6.5, 9.0)), partition_id=ROOM_13)
        assert store.host_partition_id(9) == ROOM_13

    def test_duplicate_id_raises(self, space, objects):
        store = ObjectStore(space)
        store.add(objects[0])
        with pytest.raises(ModelError):
            store.add(IndoorObject(1, Point(1, 5)))

    def test_remove_and_len(self, space, objects):
        store = ObjectStore(space)
        store.add_all(objects)
        assert len(store) == 3
        removed = store.remove(2)
        assert removed.payload == "extinguisher"
        assert len(store) == 2
        assert 2 not in store
        with pytest.raises(UnknownEntityError):
            store.remove(2)

    def test_move_across_partitions(self, space, objects):
        store = ObjectStore(space)
        store.add(objects[0])
        moved = store.move(1, Point(1.0, 5.0))
        assert moved.payload == "defibrillator"
        assert store.host_partition_id(1) == HALLWAY
        assert store.objects_in(ROOM_13) == []

    def test_objects_in_and_occupied(self, space, objects):
        store = ObjectStore(space)
        store.add_all(objects)
        assert {o.object_id for o in store.objects_in(ROOM_11)} == {3}
        assert store.occupied_partitions == (HALLWAY, ROOM_11, ROOM_13)
        assert store.bucket(999) is None

    def test_add_outside_any_partition_raises(self, space):
        store = ObjectStore(space)
        with pytest.raises(ModelError):
            store.add(IndoorObject(1, Point(100, 100)))

    def test_invalid_cell_size(self, space):
        with pytest.raises(ModelError):
            ObjectStore(space, cell_size=-1)

    def test_negative_object_id_raises(self):
        with pytest.raises(ModelError):
            IndoorObject(-1, Point(0, 0))

    def test_iteration(self, space, objects):
        store = ObjectStore(space)
        store.add_all(objects)
        assert {o.object_id for o in store} == {1, 2, 3}


class TestIndexFramework:
    def test_build_assembles_everything(self, space, objects):
        framework = IndexFramework.build(space, objects)
        assert framework.distance_index.size == space.num_doors
        assert len(framework.dpt) == space.num_doors
        assert len(framework.objects) == 3
        # The R-tree is installed as the host-partition locator.
        assert space.get_host_partition(P).partition_id == ROOM_13

    def test_reference_matrix_build_matches(self, objects):
        import numpy as np

        fast = IndexFramework.build(build_figure1(), objects)
        slow = IndexFramework.build(
            build_figure1(), objects, reference_matrix=True
        )
        np.testing.assert_allclose(
            fast.distance_index.md2d, slow.distance_index.md2d
        )

    def test_memory_report(self, space, objects):
        framework = IndexFramework.build(space, objects)
        report = framework.memory_report()
        assert report["doors"] == space.num_doors
        assert report["matrix_bytes"] > 0
        assert report["dpt_bytes"] == 28 * space.num_doors
        assert report["objects"] == 3

    def test_graph_is_precomputed(self, space):
        framework = IndexFramework.build(space)
        stats = framework.graph.cache_stats()
        assert stats["fd2d_entries"] > 0


class TestBackendSelection:
    def test_default_backend_is_the_dense_matrix(self, space):
        framework = IndexFramework.build(space)
        assert framework.distance_index.kind == "matrix"
        assert framework.build_config == {
            "backend": "matrix",
            "reference_matrix": False,
        }

    def test_labels_backend_is_selectable(self, space):
        framework = IndexFramework.build(space, backend="labels")
        assert framework.distance_index.kind == "labels"
        assert framework.build_config["backend"] == "labels"

    def test_unknown_backend_rejected(self, space):
        with pytest.raises(ValueError, match="unknown distance backend"):
            IndexFramework.build(space, backend="btree")

    def test_reference_matrix_is_matrix_only(self, space):
        with pytest.raises(ValueError, match="reference_matrix"):
            IndexFramework.build(
                space, backend="labels", reference_matrix=True
            )

    def test_rebuild_preserves_the_backend(self, space, objects):
        framework = IndexFramework.build(space, objects, backend="labels")
        space.add_partition(70, rectangle(40, 40, 44, 44))
        rebuilt = framework.rebuild()
        assert rebuilt.is_fresh
        assert rebuilt.distance_index.kind == "labels"
        assert rebuilt.build_config["backend"] == "labels"
        assert len(rebuilt.objects) == len(framework.objects)

    def test_rebuild_preserves_reference_matrix(self, space):
        framework = IndexFramework.build(space, reference_matrix=True)
        space.add_partition(71, rectangle(50, 50, 54, 54))
        rebuilt = framework.rebuild()
        assert rebuilt.build_config["reference_matrix"] is True

    def test_with_objects_copies_epoch_and_config(self, space, objects):
        framework = IndexFramework.build(space, backend="labels")
        space.add_partition(72, rectangle(60, 60, 64, 64))
        derived = framework.with_objects(ObjectStore(space))
        assert derived.built_epoch == framework.built_epoch
        assert not derived.is_fresh
        assert derived.build_config == framework.build_config
        # The config is a copy, not a shared dict.
        derived.build_config["backend"] = "matrix"
        assert framework.build_config["backend"] == "labels"

    def test_stale_labels_framework_raises(self, space):
        from repro.exceptions import StaleIndexError
        from repro.model.figure1 import D15

        framework = IndexFramework.build(space, backend="labels")
        space.remove_door(D15)
        with pytest.raises(StaleIndexError):
            framework.check_fresh()

    def test_backend_swap_across_rebuild_answers_identically(self, space):
        """Rebuilding with the other backend answers bit-identically —
        the DistanceBackend contract the query layer relies on."""
        labels = IndexFramework.build(space, backend="labels")
        dense = IndexFramework.build(space, backend="matrix")
        for u in dense.distance_index.door_ids:
            for v in dense.distance_index.door_ids:
                assert labels.distance_index.distance(
                    u, v
                ) == dense.distance_index.distance(u, v)

    def test_memory_report_names_the_backend(self, space):
        labels = IndexFramework.build(space, backend="labels").memory_report()
        dense = IndexFramework.build(space).memory_report()
        assert labels["backend"] == "labels"
        assert dense["backend"] == "matrix"
        assert "labels_bytes" in labels["backend_bytes"]
        assert "md2d_bytes" in dense["backend_bytes"]
