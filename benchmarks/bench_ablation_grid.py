"""Ablation: intra-partition grid cell size (§V-B).

The paper states the grid "is able to accelerate the distance comparison
within a partition" but leaves the configuration open ("the grid
configuration is not the focus of this paper").  This ablation sweeps the
cell edge length to expose the trade-off: tiny cells mean many cell visits,
huge cells degenerate to a full bucket scan.
"""

import pytest

from repro.bench.harness import get_building, get_framework
from repro.queries import knn_query, range_query
from repro.synthetic import build_object_store, random_positions

OBJECTS = 10_000
FLOORS = 30
QUERIES = 10

_stores = {}


def framework_with_cell_size(cell_size):
    key = cell_size
    if key not in _stores:
        _stores[key] = build_object_store(
            get_building(FLOORS), OBJECTS, seed=7, cell_size=cell_size
        )
    return get_framework(FLOORS).with_objects(_stores[key])


@pytest.mark.parametrize("cell_size", [0.5, 1.0, 2.0, 4.0, 8.0])
def test_ablation_grid_cell_size_knn(benchmark, cell_size):
    framework = framework_with_cell_size(cell_size)
    positions = random_positions(get_building(FLOORS), QUERIES, seed=71)
    benchmark.extra_info.update({"cell_size_m": cell_size, "k": 100})

    def run():
        for q in positions:
            knn_query(framework, q, 100)

    benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.parametrize("cell_size", [0.5, 2.0, 8.0])
def test_ablation_grid_cell_size_range(benchmark, cell_size):
    framework = framework_with_cell_size(cell_size)
    positions = random_positions(get_building(FLOORS), QUERIES, seed=72)
    benchmark.extra_info.update({"cell_size_m": cell_size, "radius_m": 30})

    def run():
        for q in positions:
            range_query(framework, q, 30.0)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_ablation_grid_results_invariant_to_cell_size(benchmark):
    """The cell size is performance-only: results must not change."""
    coarse = framework_with_cell_size(8.0)
    fine = framework_with_cell_size(8.0 / 16)
    positions = random_positions(get_building(FLOORS), 3, seed=73)
    for q in positions:
        assert range_query(coarse, q, 25.0) == range_query(fine, q, 25.0)

    def run():
        for q in positions:
            range_query(coarse, q, 25.0)

    benchmark.pedantic(run, rounds=1, iterations=1)
