"""The integrated indoor-outdoor distance model.

:class:`IntegratedSpace` runs a single Dijkstra over the union graph

    doors (weighted by f_d2d)  ∪  road junctions (weighted road edges)

joined by *anchor* edges between exterior doors and road junctions.  Because
everything is one graph, shortest routes interweave freely: exit a building,
walk a road, enter a building — including leaving and re-entering the same
building when the outdoor shortcut is shorter, which is precisely what the
paper says naive model composition cannot express (§VII).

Positions are indoor :class:`~repro.geometry.Point`s or
:class:`OutdoorLocation`s (a road junction).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ModelError, UnknownEntityError
from repro.geometry import Point
from repro.model.builder import IndoorSpace
from repro.outdoor.network import RoadNetwork

#: Union-graph node keys: ("door", door_id) or ("road", node_id).
_Node = Tuple[str, int]


@dataclass(frozen=True)
class OutdoorLocation:
    """A position on the road network: a junction id."""

    node_id: int


Location = Union[Point, OutdoorLocation]


class IntegratedSpace:
    """One indoor space + one road network + door anchors."""

    def __init__(self, space: IndoorSpace, network: RoadNetwork) -> None:
        self.space = space
        self.network = network
        self._anchors: Dict[int, List[Tuple[int, float]]] = {}

    def anchor(
        self, door_id: int, node_id: int, cost: Optional[float] = None
    ) -> None:
        """Join an exterior door to a road junction (both directions).

        Args:
            door_id: the building door serving as an entrance/exit.
            node_id: the road junction in front of it.
            cost: walking distance between them; defaults to the planar
                Euclidean distance between the door midpoint and the node.
        """
        if not self.space.topology.has_door(door_id):
            raise UnknownEntityError("door", door_id)
        position = self.network.node_position(node_id)  # validates the node
        if cost is None:
            midpoint = self.space.door(door_id).midpoint
            cost = position.on_floor(midpoint.floor).distance_to(midpoint)
        if cost < 0:
            raise ModelError(f"negative anchor cost {cost}")
        self._anchors.setdefault(door_id, []).append((node_id, cost))

    @property
    def anchored_doors(self) -> Tuple[int, ...]:
        """Doors joined to the road network, ascending."""
        return tuple(sorted(self._anchors))

    # ------------------------------------------------------------------
    # The union-graph search
    # ------------------------------------------------------------------
    def _expand(self, node: _Node):
        """Yield ``(neighbor, weight)`` over the union graph."""
        kind, identifier = node
        if kind == "road":
            for neighbor, length in self.network.neighbors(identifier):
                yield ("road", neighbor), length
            # Road -> anchored doors.
            for door_id, links in self._anchors.items():
                for node_id, cost in links:
                    if node_id == identifier:
                        yield ("door", door_id), cost
        else:
            graph = self.space.distance_graph
            topology = self.space.topology
            for partition_id in topology.enterable_partitions(identifier):
                for next_door in topology.leaveable_doors(partition_id):
                    weight = graph.fd2d(partition_id, identifier, next_door)
                    if not math.isinf(weight):
                        yield ("door", next_door), weight
            for node_id, cost in self._anchors.get(identifier, ()):
                yield ("road", node_id), cost

    def _sources(self, origin: Location) -> List[Tuple[_Node, float]]:
        if isinstance(origin, OutdoorLocation):
            self.network.node_position(origin.node_id)  # validate
            return [(("road", origin.node_id), 0.0)]
        host = self.space.require_host_partition(origin)
        sources = []
        for door_id in self.space.topology.leaveable_doors(host.partition_id):
            leg = self.space.dist_v(origin, door_id, host)
            if not math.isinf(leg):
                sources.append((("door", door_id), leg))
        return sources

    def _terminals(self, destination: Location) -> Dict[_Node, float]:
        if isinstance(destination, OutdoorLocation):
            self.network.node_position(destination.node_id)
            return {("road", destination.node_id): 0.0}
        host = self.space.require_host_partition(destination)
        terminals: Dict[_Node, float] = {}
        for door_id in self.space.topology.enterable_doors(host.partition_id):
            leg = self.space.dist_v(destination, door_id, host)
            if not math.isinf(leg):
                terminals[("door", door_id)] = leg
        return terminals

    def _search(
        self, origin: Location, destination: Location
    ) -> Tuple[float, Optional[List[_Node]]]:
        """Union-graph Dijkstra; returns the best total distance and the
        hop sequence of union-graph nodes (``None`` when the direct
        intra-partition walk wins or nothing is reachable)."""
        best_direct = math.inf
        if isinstance(origin, Point) and isinstance(destination, Point):
            host_a = self.space.require_host_partition(origin)
            host_b = self.space.require_host_partition(destination)
            if host_a.partition_id == host_b.partition_id:
                best_direct = host_a.intra_distance(origin, destination)

        sources = self._sources(origin)
        terminals = self._terminals(destination)
        if not sources or not terminals:
            return best_direct, None

        dist: Dict[_Node, float] = {}
        prev: Dict[_Node, Optional[_Node]] = {}
        heap: List[Tuple[float, _Node]] = []
        for node, leg in sources:
            if leg < dist.get(node, math.inf):
                dist[node] = leg
                prev[node] = None
                heapq.heappush(heap, (leg, node))
        settled = set()
        pending = set(terminals)
        best = best_direct
        best_terminal: Optional[_Node] = None
        while heap:
            d, current = heapq.heappop(heap)
            if current in settled:
                continue
            settled.add(current)
            if current in pending:
                pending.discard(current)
                candidate = d + terminals[current]
                if candidate < best:
                    best = candidate
                    best_terminal = current
                if not pending:
                    break
            if d >= best:
                break
            for neighbor, weight in self._expand(current):
                if neighbor in settled:
                    continue
                candidate = d + weight
                if candidate < dist.get(neighbor, math.inf):
                    dist[neighbor] = candidate
                    prev[neighbor] = current
                    heapq.heappush(heap, (candidate, neighbor))

        if best_terminal is None:
            return best, None
        hops: List[_Node] = []
        cursor: Optional[_Node] = best_terminal
        while cursor is not None:
            hops.append(cursor)
            cursor = prev[cursor]
        hops.reverse()
        return best, hops

    def distance(self, origin: Location, destination: Location) -> float:
        """Minimum walking distance over the integrated graph.

        Indoor/indoor pairs in the same partition also consider the direct
        intra-partition walk; every other combination routes through doors
        and/or roads as the union Dijkstra finds cheapest.
        """
        return self._search(origin, destination)[0]

    def route(
        self, origin: Location, destination: Location
    ) -> Tuple[float, List[Tuple[str, int]]]:
        """The best integrated route as ``(distance, hops)``.

        Each hop is ``("door", door_id)`` or ``("road", node_id)`` in
        travel order; an empty hop list with a finite distance means the
        direct intra-partition walk won.
        """
        distance, hops = self._search(origin, destination)
        return distance, list(hops) if hops else []

    def is_reachable(self, origin: Location, destination: Location) -> bool:
        """Whether any integrated route exists."""
        return not math.isinf(self.distance(origin, destination))
