"""Tests for the checksummed snapshot container (repro.persist.snapshot)."""

import hashlib
import struct

import numpy as np
import pytest

from repro.exceptions import SnapshotCorruptError
from repro.persist import load_snapshot, read_manifest, save_snapshot
from repro.persist.snapshot import (
    MAGIC,
    SECTIONS,
    SNAPSHOT_FORMAT_VERSION,
    snapshot_bytes,
)
from repro.queries import QueryEngine
from repro.runtime import flip_snapshot_byte

_HEAD = struct.Struct(">II")


def _reseal(data: bytes) -> bytes:
    """Recompute the trailing whole-file digest after a deliberate edit.

    The digest is verified first on load, so to exercise the *inner*
    checks (section CRCs, version gate, structural cross-checks) a test
    must damage the body and then re-seal the container.
    """
    body = data[:-32]
    return body + hashlib.sha256(body).digest()


def _section_offsets(data: bytes):
    """Map section name -> (absolute start, length) inside the container."""
    head_len = len(MAGIC) + _HEAD.size
    _, manifest_len = _HEAD.unpack_from(data, len(MAGIC))
    manifest = read_manifest_bytes(data, head_len, manifest_len)
    offset = head_len + manifest_len
    spans = {}
    for entry in manifest["sections"]:
        spans[entry["name"]] = (offset, entry["length"])
        offset += entry["length"]
    return spans


def read_manifest_bytes(data, head_len, manifest_len):
    import json

    return json.loads(data[head_len : head_len + manifest_len].decode("utf-8"))


def _assert_equivalent(original, restored):
    """Bit-identical indexes and identical query answers."""
    assert np.array_equal(
        original.distance_index.md2d, restored.distance_index.md2d
    )
    assert np.array_equal(
        original.distance_index.midx, restored.distance_index.midx
    )
    assert original.distance_index.door_ids == restored.distance_index.door_ids
    assert list(original.dpt) == list(restored.dpt)
    assert original.space.topology_epoch == restored.space.topology_epoch
    assert original.built_epoch == restored.built_epoch
    assert restored.is_fresh

    want = QueryEngine(original)
    got = QueryEngine(restored)
    probe = next(iter(original.objects)).position
    assert want.range_query(probe, 8.0) == got.range_query(probe, 8.0)
    assert want.knn(probe, k=3) == got.knn(probe, k=3)


class TestRoundTrip:
    def test_figure1_bit_identical(self, figure1_framework, tmp_path):
        path = save_snapshot(figure1_framework, tmp_path / "fig1.snap")
        restored, manifest = load_snapshot(path)
        _assert_equivalent(figure1_framework, restored)
        assert manifest["doors"] == figure1_framework.distance_index.size
        assert manifest["objects"] == len(figure1_framework.objects)

    def test_multi_floor_building_bit_identical(
        self, building_framework, tmp_path
    ):
        path = save_snapshot(building_framework, tmp_path / "bldg.snap")
        restored, _ = load_snapshot(path)
        _assert_equivalent(building_framework, restored)
        floors = {p.floor for p in restored.space.partitions()}
        assert floors == {0, 1, 2}

    def test_snapshot_bytes_deterministic_modulo_timestamp(
        self, figure1_framework
    ):
        # Only created_at (wall clock) may differ between two serialisations
        # of the same framework; every payload byte is identical.
        first = snapshot_bytes(figure1_framework)
        second = snapshot_bytes(figure1_framework)
        first_spans = _section_offsets(first)
        second_spans = _section_offsets(second)
        assert first_spans.keys() == second_spans.keys()
        for name, (start, length) in first_spans.items():
            start2, length2 = second_spans[name]
            assert length == length2
            assert (
                first[start : start + length]
                == second[start2 : start2 + length2]
            )

    def test_one_way_door_infinity_survives(self, figure1_framework, tmp_path):
        # Figure 1's one-way doors d12/d15 put +inf dist1 values in the DPT;
        # the JSON codec must round-trip them exactly (not as null or a
        # parse error).
        values = [
            value
            for record in figure1_framework.dpt
            for value in (record.dist1, record.dist2)
        ]
        assert any(np.isinf(v) for v in values)
        path = save_snapshot(figure1_framework, tmp_path / "fig1.snap")
        restored, _ = load_snapshot(path)
        assert list(figure1_framework.dpt) == list(restored.dpt)

    def test_wal_seq_recorded(self, figure1_framework, tmp_path):
        path = save_snapshot(figure1_framework, tmp_path / "s.snap", wal_seq=7)
        assert read_manifest(path)["wal_seq"] == 7

    def test_atomic_save_leaves_no_temp_files(
        self, figure1_framework, tmp_path
    ):
        save_snapshot(figure1_framework, tmp_path / "s.snap")
        assert [p.name for p in tmp_path.iterdir()] == ["s.snap"]


class TestCorruptionDetection:
    @pytest.mark.parametrize("seed", range(8))
    def test_any_byte_flip_is_caught(self, figure1_framework, tmp_path, seed):
        path = save_snapshot(figure1_framework, tmp_path / "s.snap")
        flip_snapshot_byte(path, seed=seed)
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(path)

    def test_flip_undo_restores_loadability(self, figure1_framework, tmp_path):
        path = save_snapshot(figure1_framework, tmp_path / "s.snap")
        handle = flip_snapshot_byte(path, count=3, seed=5)
        with pytest.raises(SnapshotCorruptError):
            read_manifest(path)
        handle.undo()
        read_manifest(path)

    @pytest.mark.parametrize("section", SECTIONS)
    def test_each_section_crc_names_the_section(
        self, figure1_framework, tmp_path, section
    ):
        # Damage one payload byte, then re-seal the file so the whole-file
        # digest passes: the per-section checksums are the last line of
        # defence and must name the damaged section.
        path = tmp_path / "s.snap"
        data = bytearray(snapshot_bytes(figure1_framework))
        start, length = _section_offsets(bytes(data))[section]
        data[start + length // 2] ^= 0xFF
        path.write_bytes(_reseal(bytes(data)))
        with pytest.raises(SnapshotCorruptError) as excinfo:
            load_snapshot(path)
        assert excinfo.value.section == section

    def test_unsupported_version_rejected(self, figure1_framework, tmp_path):
        path = tmp_path / "s.snap"
        data = bytearray(snapshot_bytes(figure1_framework))
        struct.pack_into(">I", data, len(MAGIC), SNAPSHOT_FORMAT_VERSION + 1)
        path.write_bytes(_reseal(bytes(data)))
        with pytest.raises(SnapshotCorruptError, match="unsupported"):
            load_snapshot(path)

    def test_truncated_file_rejected(self, figure1_framework, tmp_path):
        path = tmp_path / "s.snap"
        data = snapshot_bytes(figure1_framework)
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(path)

    def test_not_a_snapshot_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_bytes(b"{}" * 40)
        with pytest.raises(SnapshotCorruptError, match="magic"):
            read_manifest(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.snap"
        path.write_bytes(b"")
        with pytest.raises(SnapshotCorruptError, match="too short"):
            read_manifest(path)
