"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info PLAN.json`` — model statistics plus the floor-plan lint report;
* ``audit PLAN.json [--exits ID ...]`` — door-significance analysis
  (betweenness, single points of failure) and evacuation safety;
* ``doctor PLAN.json [--objects OBJ.json] [--snapshot SNAP]`` — one
  exit-code-bearing health report: floor-plan lint plus §IV index
  integrity (M_d2d symmetry, non-negativity, finiteness; DPT
  completeness); with ``--snapshot`` the checks run on a persisted
  snapshot (checksums + invariants) instead of a freshly built index;
* ``persist save PLAN.json DIR`` / ``persist load DIR`` /
  ``persist verify DIR|SNAP`` — crash-safe snapshot management: save a
  new checksummed generation, run the recovery ladder (WAL replay,
  quarantine, optional rebuild fallback), or verify checksums +
  integrity without serving;
* ``distance PLAN.json X1 Y1 X2 Y2 [--floor1 N] [--floor2 N]`` — minimum
  indoor walking distance and turn-by-turn directions between two points;
* ``render PLAN.json -o OUT.svg [--floor N]`` — draw a floor to SVG;
* ``dot PLAN.json`` — print the accessibility graph as Graphviz DOT;
* ``export-figure1 OUT.json`` — write the paper's running-example floor
  plan to a JSON file (a starting point for experiments);
* ``bench ...`` — alias for ``python -m repro.bench ...``;
* ``serve-bench [--json OUT.json] [--seed N]`` — closed-loop serving
  benchmark: naive sequential :class:`~repro.queries.engine.QueryEngine`
  loop vs. the batched + cached :class:`~repro.serve.QueryService`
  (scale via ``REPRO_BENCH_SCALE``, like ``bench``);
* ``shard-bench [--json OUT.json] [--seed N]`` — three-way serving
  benchmark adding the multi-process
  :class:`~repro.shard.ShardedQueryService` tier to the comparison
  (scale via ``REPRO_BENCH_SCALE``); exit 0 iff every tier's answers
  match the sequential engine bit-for-bit;
* ``labels-bench [--json OUT.json] [--seed N] [--artifact]`` — distance
  backends head to head: the 2-hop labeling of :mod:`repro.labels` vs
  the dense M_d2d/M_idx pair (build time, resident bytes, bitwise
  agreement on sampled pairs; scale via ``REPRO_BENCH_SCALE``, plus a
  ``campus`` scale where the dense matrices are analytic-only);
  ``--artifact`` measures the committed two-scale ``BENCH_labels.json``;
* ``overload-bench [--json OUT.json] [--seed N]`` — open-loop flash
  crowd: an unprotected :class:`~repro.serve.QueryService` driven past
  its collapse point, then the adaptive limiter + shed policy offered
  2x that load (scale via ``REPRO_BENCH_SCALE``); exit 0 iff the
  protected run holds its p99 inside the SLO at >= 0.8x the unprotected
  peak goodput with zero exact-answer mismatches;
* ``reconfig-bench [--json OUT.json] [--seed N]`` — live topology
  reconfiguration: an epoch-fenced rolling update of the sharded tier
  vs a stop-the-world restart, under a continuous query pump
  (availability, p50/p99, per-epoch differential mismatches, epoch-mix
  violations; scale via ``REPRO_BENCH_SCALE``); exit 0 iff the rolling
  run had zero mismatches, zero epoch mixes, and zero unavailable
  attempts;
* ``bench --gate [--tolerance T]`` — regression-gate the committed
  ``BENCH_serve.json`` / ``BENCH_shard.json`` / ``BENCH_labels.json`` /
  ``BENCH_overload.json`` / ``BENCH_reconfig.json`` artifacts against a
  fresh run (exit non-zero on regression; see :mod:`repro.bench.gate`);
* ``chaos run [--seed N] [--duration-ops M] [--report OUT.json]
  [--shards N] [--workload mixed|flash-crowd] [--hedging]
  [--reconfig]`` — a
  deterministic fault-injection campaign (see :mod:`repro.chaos` and
  ``docs/chaos.md``): exit 0 iff the verdict is PASS; ``--shards N``
  runs it against the multi-process sharded tier with the shard fault
  plan (kill/hang/snapshot-rot); ``--workload flash-crowd`` swaps in
  the zipfian rush-hour op stream with casualties timed into the spike,
  ``--hedging`` arms the overload-control stack (hedged
  scatter-gather, retry budget, limiter) on the sharded tier, and
  ``--reconfig`` swaps in the live-reconfiguration plan (epoch-fenced
  rolling topology mutations with the reconfig crash points armed);
* ``chaos replay --report OUT.json`` — re-run a saved campaign's config
  and verify the incident digest reproduces byte-for-byte (single
  process campaigns only: shard scheduling is real concurrency and is
  not digest-stable, so shard reports are refused);
* ``doctor ... [--campaign REPORT.json]`` — additionally surface the
  verdict of the last chaos campaign in the health report.

Floor plans use the JSON format of :mod:`repro.io`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.distance.point_to_point import pt2pt_path
from repro.geometry import Point
from repro.io import load_space, save_space
from repro.model.validation import validate_space


def _cmd_info(args: argparse.Namespace) -> int:
    space = load_space(args.plan)
    floors = sorted({f for p in space.partitions() for f in p.floors})
    print(f"plan:        {args.plan}")
    print(f"partitions:  {space.num_partitions}")
    print(f"doors:       {space.num_doors}")
    one_way = sum(
        1 for d in space.door_ids if space.topology.is_unidirectional(d)
    )
    print(f"one-way:     {one_way}")
    print(f"floors:      {floors}")
    connected = space.accessibility.is_strongly_connected()
    print(f"strongly connected: {'yes' if connected else 'no'}")
    issues = validate_space(space)
    if issues:
        print(f"lint: {len(issues)} issue(s)")
        for issue in issues:
            print(f"  {issue}")
        return 1
    print("lint: clean")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis import critical_doors, door_betweenness
    from repro.routing import evacuation_report

    space = load_space(args.plan)
    print("door traffic (betweenness, descending):")
    for door_id, score in sorted(
        door_betweenness(space).items(), key=lambda kv: (-kv[1], kv[0])
    ):
        print(f"  {space.door(door_id).label:<8} {score:6.1%}")
    critical = critical_doors(space)
    if critical:
        print("single points of failure:")
        for door_id in critical:
            print(f"  {space.door(door_id).label}")
    else:
        print("single points of failure: none")
    if args.exits:
        report = evacuation_report(space, args.exits)
        if report.is_safe:
            print(f"evacuation via {list(args.exits)}: all partitions safe")
        else:
            print(
                f"evacuation via {list(args.exits)}: "
                f"TRAPPED partitions {list(report.trapped)}"
            )
            return 1
    return 0


def _verify_snapshot_file(path: str) -> int:
    """Checksum + integrity verification of one snapshot file; 0 = healthy."""
    from repro.exceptions import SnapshotCorruptError
    from repro.model.validation import Severity
    from repro.persist import load_snapshot
    from repro.runtime import check_index_integrity

    print(f"snapshot: {path}")
    try:
        framework, manifest = load_snapshot(path)
    except SnapshotCorruptError as exc:
        print(f"  checksum/structure: CORRUPT ({exc.section}): {exc}")
        return 1
    print(
        f"  checksum/structure: ok (format v{manifest['format_version']}, "
        f"epoch {manifest['topology_epoch']}, {manifest['doors']} doors, "
        f"{manifest['objects']} objects)"
    )
    issues = check_index_integrity(framework)
    errors = [i for i in issues if i.severity is Severity.ERROR]
    if issues:
        print("  index integrity:")
        for issue in issues:
            print(f"    {issue}")
    else:
        print("  index integrity: clean")
    return 1 if errors else 0


def _doctor_campaign(path: str) -> int:
    """Surface the last chaos campaign's verdict; 0 = PASS."""
    from repro.chaos import CampaignReport

    try:
        report = CampaignReport.load(path)
    except (OSError, KeyError, ValueError) as exc:
        print(f"chaos campaign: unreadable report {path}: {exc}")
        return 1
    counts = report.counts()
    print(
        f"chaos campaign: {report.verdict} "
        f"({report.ops_executed} ops, digest {report.digest[:12]}...)"
    )
    for name, count in sorted(counts.items()):
        if count:
            print(f"  {name}: {count}")
    for name, count in sorted(report.overload.get("counters", {}).items()):
        if count:
            print(f"  {name}: {count}")
    reconfig = report.reconfig
    if reconfig:
        print(
            f"  reconfig: epoch {reconfig.get('committed_epoch', 0)} "
            f"(fence {reconfig.get('fence_epoch', 0)})"
        )
        for key in (
            "rounds", "prepares", "prepare_failures", "commits",
            "commit_failures", "aborts", "resumes", "planned_restarts",
            "fenced_replies", "retried_replies", "replans",
        ):
            value = reconfig.get(key, 0)
            if value:
                print(f"  reconfig.{key}: {value}")
        lagging = {
            shard: skew
            for shard, skew in reconfig.get("epoch_skew", {}).items()
            if skew
        }
        if lagging:
            print(f"  reconfig epoch skew (laggards): {lagging}")
    return 0 if report.passed else 1


def _project_root() -> "Path":
    """Nearest ancestor of the cwd holding a pyproject.toml, else cwd."""
    from pathlib import Path

    current = Path.cwd()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return current


def _doctor_lint() -> int:
    """Fold the static-analysis report into doctor; 0 = no regressions."""
    from repro.analysis.lint import LintConfig, run_lint

    report = run_lint(LintConfig(root=_project_root()))
    print(
        f"static analysis: {report.checked_modules} modules, "
        f"{len(report.new)} new finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed} suppressed"
    )
    for finding in report.new[:10]:
        print(f"  {finding.path}:{finding.line} {finding.rule} "
              f"{finding.message}")
    if len(report.new) > 10:
        print(f"  ... and {len(report.new) - 10} more")
    for relpath, error in sorted(report.unparsable.items()):
        print(f"  {relpath}: unparsable ({error})")
    return report.exit_code()


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.index import IndexFramework
    from repro.model.validation import Severity
    from repro.runtime import check_index_integrity

    lint_status = _doctor_lint() if args.lint else 0
    campaign_status = 0
    if args.campaign is not None:
        campaign_status = _doctor_campaign(args.campaign)
    snapshot_status = 0
    if args.snapshot is not None:
        snapshot_status = _verify_snapshot_file(args.snapshot)
    status = snapshot_status + campaign_status + lint_status
    if args.plan is None:
        if args.snapshot is None and args.campaign is None and not args.lint:
            print(
                "doctor: a PLAN.json, --snapshot, --campaign, or --lint "
                "is required"
            )
            return 2
        if status == 0:
            print("doctor: healthy")
        elif snapshot_status:
            print("doctor: snapshot corrupt")
        elif campaign_status:
            print("doctor: last campaign FAILED")
        else:
            print("doctor: static analysis regressions")
        return 1 if status else 0

    space = load_space(args.plan)
    plan_issues = validate_space(space)
    print("floor plan lint:")
    if plan_issues:
        for issue in plan_issues:
            print(f"  {issue}")
    else:
        print("  clean")

    objects = None
    if args.objects:
        from repro.io import load_objects

        objects = load_objects(args.objects)
    framework = IndexFramework.build(space, objects, args.cell_size)
    index_issues = check_index_integrity(framework)
    print("index integrity:")
    if index_issues:
        for issue in index_issues:
            print(f"  {issue}")
    else:
        print("  clean")
    report = framework.memory_report()
    print(
        f"indexes: {report['doors']} doors, "
        f"{report['matrix_bytes']} matrix bytes, "
        f"{report['dpt_bytes']} DPT bytes, "
        f"{report['objects']} objects"
    )

    errors = [
        issue
        for issue in plan_issues + index_issues
        if issue.severity is Severity.ERROR
    ]
    if errors or status:
        print(f"doctor: {len(errors) + status} error(s)")
        return 1
    print("doctor: healthy")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.lint import (
        Baseline,
        LintConfig,
        all_checkers,
        run_lint,
    )

    if args.list_rules:
        for cls in all_checkers():
            print(f"{cls.rule_id}  {cls.summary}")
        return 0

    root = Path(args.root) if args.root else _project_root()
    config = LintConfig(
        root=root,
        paths=[Path(p) for p in args.paths],
        select=set(args.select) if args.select else None,
        baseline_path=Path(args.baseline) if args.baseline else None,
        jobs=args.jobs,
    )
    report = run_lint(config)

    if args.write_baseline:
        baseline = Baseline.from_findings(report.findings)
        path = config.resolved_baseline()
        baseline.save(path)
        print(f"wrote baseline ({len(baseline)} entries) to {path}")
        return 0

    for relpath, error in sorted(report.unparsable.items()):
        print(f"{relpath}: unparsable: {error}")
    for finding in report.new:
        print(finding.render())
    if args.show_baselined:
        for finding in report.baselined:
            print(f"(baselined) {finding.render()}")
    if report.expired:
        print(
            f"baseline: {len(report.expired)} stale entries no longer "
            "match any finding — rerun with --write-baseline to prune"
        )
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    witness_failed = False
    if args.lock_graph or args.witness:
        from repro.analysis.lint.callgraph import build_graph, render_dot
        from repro.analysis.lint.engine import build_project
        from repro.analysis.witness import WitnessTrace, crosscheck

        graph = build_graph(build_project(config))
        observed = None
        if args.witness:
            try:
                trace = WitnessTrace.load(args.witness)
            except (OSError, ValueError, KeyError) as exc:
                print(f"witness: unreadable trace {args.witness}: {exc}")
                return 2
            result = crosscheck(trace, graph)
            observed = result.confirmed
            for message in result.errors:
                print(f"witness: ERROR: {message}")
            for message in result.warnings:
                print(f"witness: warning: {message}")
            print(
                f"witness: {len(trace.edges)} observed edges, "
                f"{len(result.confirmed)} confirmed static, "
                f"{len(result.errors)} errors, "
                f"{len(result.warnings)} warnings"
            )
            witness_failed = not result.ok
        if args.lock_graph:
            Path(args.lock_graph).write_text(
                render_dot(graph, observed), encoding="utf-8"
            )
            print(f"wrote lock graph to {args.lock_graph}")

    exit_code = report.exit_code(strict=args.strict) or (
        1 if witness_failed else 0
    )
    print(
        f"lint: {report.checked_modules} modules, "
        f"{len(report.rules)} rules, {len(report.new)} new, "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed} suppressed"
        + (" — FAIL" if exit_code else " — ok")
    )
    return exit_code


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.viz import to_dot

    print(to_dot(load_space(args.plan)), end="")
    return 0


def _cmd_distance(args: argparse.Namespace) -> int:
    from repro.routing import directions

    space = load_space(args.plan)
    source = Point(args.x1, args.y1, args.floor1)
    target = Point(args.x2, args.y2, args.floor2)
    path = pt2pt_path(space, source, target)
    if not path.is_reachable:
        print("unreachable")
        return 1
    print(f"distance: {path.distance:.2f} m")
    for step in directions(space, path):
        print(f"  {step}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.viz import render_svg, save_svg

    space = load_space(args.plan)
    svg = render_svg(space, floor=args.floor, width=args.width)
    save_svg(svg, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_export_figure1(args: argparse.Namespace) -> int:
    from repro.model.figure1 import build_figure1

    save_space(build_figure1(), args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_persist_save(args: argparse.Namespace) -> int:
    from repro.index import IndexFramework
    from repro.persist import SnapshotStore, read_manifest

    space = load_space(args.plan)
    objects = None
    if args.objects:
        from repro.io import load_objects

        objects = load_objects(args.objects)
    framework = IndexFramework.build(space, objects, args.cell_size)
    store = SnapshotStore(args.directory)
    path = store.save(framework, wal_seq=store.wal().last_seq)
    manifest = read_manifest(path)
    print(
        f"wrote {path} (generation {store.latest()}, "
        f"{manifest['doors']} doors, {manifest['objects']} objects, "
        f"epoch {manifest['topology_epoch']})"
    )
    return 0


def _cmd_persist_load(args: argparse.Namespace) -> int:
    from repro.exceptions import RecoveryError
    from repro.index import IndexFramework
    from repro.persist import RecoveryManager, SnapshotStore

    store = SnapshotStore(args.directory)
    rebuild = None
    if args.plan:
        plan_path = args.plan

        def rebuild() -> "IndexFramework":
            return IndexFramework.build(load_space(plan_path))

    manager = RecoveryManager(store, rebuild=rebuild)
    try:
        report = manager.recover()
    except RecoveryError as exc:
        print(f"recovery failed: {exc}")
        return 1
    for note in report.notes:
        print(f"  {note}")
    memory = report.framework.memory_report()
    print(
        f"recovered via {report.source.value}"
        + (f" (generation {report.generation})" if report.generation else "")
        + f": {memory['doors']} doors, {memory['objects']} objects, "
        f"epoch {report.framework.space.topology_epoch}"
    )
    if report.quarantined:
        print(f"quarantined: {[p.name for p in report.quarantined]}")
        return 1 if args.strict else 0
    return 0


def _cmd_persist_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.persist import SnapshotStore

    target = Path(args.target)
    if target.is_dir():
        store = SnapshotStore(target)
        generations = store.generations()
        if not generations:
            print(f"no snapshot generations in {target}")
            return 1
        status = 0
        for generation in generations:
            status |= _verify_snapshot_file(str(store.path_for(generation)))
        return status
    return _verify_snapshot_file(str(target))


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(args.bench_args)


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.serve import (
        current_serve_scale,
        measure_serve,
        render_serve_summary,
    )

    scale = current_serve_scale()
    print(
        f"# scale: {scale.name} (set REPRO_BENCH_SCALE=paper for full runs)"
    )
    result = measure_serve(scale, seed=args.seed)
    print(render_serve_summary(result))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote {args.json}")
    return 0 if result["mismatches"] == 0 else 1


def _cmd_shard_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.shard import (
        current_shard_scale,
        measure_shard,
        render_shard_summary,
    )

    scale = current_shard_scale()
    print(
        f"# scale: {scale.name} (set REPRO_BENCH_SCALE=paper for full runs)"
    )
    result = measure_shard(scale, seed=args.seed)
    print(render_shard_summary(result))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote {args.json}")
    failed = result["mismatches"] != 0 or result["sharded"]["degraded"] != 0
    return 1 if failed else 0


def _cmd_labels_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.labels import (
        current_labels_scale,
        measure_labels,
        measure_labels_artifact,
        render_labels_summary,
    )

    if args.artifact:
        result = measure_labels_artifact(seed=args.seed)
        print(render_labels_summary(result["campus"]))
        print(render_labels_summary(result["quick"]))
    else:
        scale = current_labels_scale()
        print(
            f"# scale: {scale.name} "
            "(set REPRO_BENCH_SCALE=paper|campus for larger runs)"
        )
        result = measure_labels(scale, seed=args.seed)
        print(render_labels_summary(result))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote {args.json}")
    return 0 if result["mismatches"] == 0 else 1


def _cmd_overload_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.overload import (
        current_overload_scale,
        measure_overload,
        render_overload_summary,
    )

    scale = current_overload_scale()
    print(
        f"# scale: {scale.name} (set REPRO_BENCH_SCALE=paper for full runs)"
    )
    result = measure_overload(scale, seed=args.seed)
    print(render_overload_summary(result))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote {args.json}")
    protected = result["protected"]
    failed = (
        result["mismatches"] != 0
        or protected["p99_ms"] > result["slo_ms"]
        or protected["goodput_ratio"] < 0.8
    )
    return 1 if failed else 0


def _cmd_reconfig_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.reconfig import (
        current_reconfig_scale,
        measure_reconfig,
        render_reconfig_summary,
    )

    scale = current_reconfig_scale()
    print(
        f"# scale: {scale.name} (set REPRO_BENCH_SCALE=paper for more rounds)"
    )
    result = measure_reconfig(scale, seed=args.seed)
    print(render_reconfig_summary(result))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote {args.json}")
    rolling = result["rolling"]
    failed = (
        rolling["mismatches"] != 0
        or rolling["epoch_mix_violations"] != 0
        or rolling["unavailable"] != 0
    )
    return 1 if failed else 0


def _render_campaign_summary(report) -> None:
    counts = report.counts()
    print(
        f"campaign: {report.verdict} — {report.ops_executed} ops, "
        f"{len(report.incidents)} incidents, digest {report.digest[:16]}..."
    )
    for name, count in sorted(counts.items()):
        print(f"  {name}: {count}")
    for quality, stats in sorted(report.latency_ms.items()):
        print(
            f"  latency {quality}: p50={stats['p50']}ms "
            f"p90={stats['p90']}ms p99={stats['p99']}ms "
            f"(n={int(stats['count'])})"
        )
    for name, count in sorted(report.overload.get("counters", {}).items()):
        if count:
            print(f"  {name}: {count}")
    reconfig = report.reconfig
    if reconfig:
        print(
            f"  reconfig: epoch {reconfig.get('committed_epoch', 0)} "
            f"(fence {reconfig.get('fence_epoch', 0)}), "
            f"{reconfig.get('rounds', 0)} rounds, "
            f"{reconfig.get('prepares', 0)} prepares, "
            f"{reconfig.get('commits', 0)} commits, "
            f"{reconfig.get('resumes', 0)} resumes, "
            f"{reconfig.get('fenced_replies', 0)} fenced replies"
        )
        lagging = {
            shard: skew
            for shard, skew in reconfig.get("epoch_skew", {}).items()
            if skew
        }
        if lagging:
            print(f"  reconfig epoch skew: {lagging}")


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    import json

    from repro.chaos import (
        CampaignConfig,
        CampaignRunner,
        FaultPlan,
        shard_reconfig_plan,
    )

    plan = None
    if args.plan:
        try:
            with open(args.plan, encoding="utf-8") as handle:
                plan = FaultPlan.from_json_dict(json.load(handle))
        except (OSError, KeyError, ValueError) as exc:
            print(f"chaos run: unreadable plan {args.plan}: {exc}")
            return 2
    if args.reconfig:
        if args.shards <= 0:
            print("chaos run: --reconfig requires --shards N (N >= 2)")
            return 2
        if plan is not None:
            print("chaos run: --reconfig and --plan are mutually exclusive")
            return 2
        plan = shard_reconfig_plan(args.duration_ops, shards=args.shards)
    config = CampaignConfig(
        seed=args.seed,
        duration_ops=args.duration_ops,
        object_count=args.objects,
        plan=plan,
        differential=not args.no_differential,
        metamorphic=not args.no_metamorphic,
        epoch_oracle=not args.no_epoch_oracle,
        integrity_gate=not args.no_integrity_gate,
        breaker=not args.no_breaker,
        store_dir=args.store_dir,
        shards=args.shards,
        backend=args.backend,
        workload=args.workload.replace("-", "_"),
        hedging=args.hedging,
    )
    if args.witness:
        from repro.analysis.lint.callgraph import build_graph
        from repro.analysis.lint.engine import LintConfig, build_project
        from repro.analysis.witness import static_sites, witness_session

        root = _project_root()
        graph = build_graph(build_project(LintConfig(root=root)))
        with witness_session(root, static_sites(graph)) as witness:
            report = CampaignRunner(config).run()
        witness.trace().save(args.witness)
        print(f"wrote witness trace to {args.witness}")
    else:
        report = CampaignRunner(config).run()
    _render_campaign_summary(report)
    if args.report:
        report.save(args.report)
        print(f"wrote {args.report}")
    if args.bench_json:
        payload = {
            "campaign": {
                "seed": config.seed,
                "duration_ops": config.duration_ops,
                "verdict": report.verdict,
                "digest": report.digest,
            },
            "latency_ms_by_quality": report.latency_ms,
        }
        with open(args.bench_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.bench_json}")
    return 0 if report.passed else 1


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    from repro.chaos import CampaignConfig, CampaignReport, CampaignRunner

    saved = CampaignReport.load(args.report)
    if int(saved.config.get("shards", 0)) > 0:
        print(
            "chaos replay: report is from a sharded campaign "
            f"(shards={saved.config['shards']}); shard scheduling is real "
            "concurrency, so its incident digest is not replay-stable. "
            "Re-run it with 'chaos run --shards N' instead."
        )
        return 2
    config = CampaignConfig.from_dict(saved.config)
    replayed = CampaignRunner(config).run()
    _render_campaign_summary(replayed)
    if replayed.digest == saved.digest:
        print(f"replay: digest reproduced ({saved.digest[:16]}...)")
        return 0 if replayed.passed else 1
    print(
        "replay: DIGEST MISMATCH — saved "
        f"{saved.digest[:16]}... vs replayed {replayed.digest[:16]}..."
    )
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Indoor distance-aware query processing toolkit "
        "(Lu/Cao/Jensen, ICDE 2012 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="plan statistics + lint report")
    info.add_argument("plan", help="floor plan JSON file")
    info.set_defaults(handler=_cmd_info)

    audit = commands.add_parser(
        "audit", help="door significance + evacuation analysis"
    )
    audit.add_argument("plan")
    audit.add_argument(
        "--exits", type=int, nargs="*", default=[],
        help="exit partition ids for the evacuation check",
    )
    audit.set_defaults(handler=_cmd_audit)

    doctor = commands.add_parser(
        "doctor", help="plan lint + index integrity health report"
    )
    doctor.add_argument("plan", nargs="?", default=None)
    doctor.add_argument(
        "--objects", default=None, help="optional JSON object set to load"
    )
    doctor.add_argument(
        "--cell-size", type=float, default=2.0,
        help="grid cell edge for the object buckets (metres)",
    )
    doctor.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="verify a persisted snapshot (checksums + index integrity) "
        "instead of, or in addition to, a plan",
    )
    doctor.add_argument(
        "--campaign", default=None, metavar="REPORT.json",
        help="surface the verdict of a saved chaos-campaign report "
        "(see 'chaos run --report')",
    )
    doctor.add_argument(
        "--lint", action="store_true",
        help="fold the repro static-analysis report (REP001–REP005) "
        "into the health check",
    )
    doctor.set_defaults(handler=_cmd_doctor)

    lint = commands.add_parser(
        "lint",
        help="AST static analysis enforcing the project's concurrency, "
        "determinism, and deadline contracts (REP001–REP005)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: <root>/src)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="also fail on new warnings and stale baseline entries",
    )
    lint.add_argument(
        "--json", default=None, metavar="OUT",
        help="write the full findings report as JSON",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: <root>/.repro-lint-baseline.json)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline and exit",
    )
    lint.add_argument(
        "--select", nargs="*", default=None, metavar="RULE",
        help="run only these rule ids (e.g. REP001 REP004)",
    )
    lint.add_argument(
        "--jobs", type=int, default=0,
        help="worker threads for parse/check (0 = auto)",
    )
    lint.add_argument(
        "--root", default=None,
        help="project root (default: nearest ancestor with pyproject.toml)",
    )
    lint.add_argument(
        "--show-baselined", action="store_true",
        help="also print findings already accepted by the baseline",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    lint.add_argument(
        "--lock-graph", default=None, metavar="OUT.dot",
        help="write the interprocedural lock-acquisition graph as "
        "Graphviz DOT (cycle edges red; witness-confirmed edges bold)",
    )
    lint.add_argument(
        "--witness", default=None, metavar="TRACE.json",
        help="cross-check a LockWitness trace ('chaos run --witness') "
        "against the static graph: observed edges the graph lacks are "
        "call-graph holes and fail the run",
    )
    lint.set_defaults(handler=_cmd_lint)

    dot = commands.add_parser("dot", help="accessibility graph as Graphviz DOT")
    dot.add_argument("plan")
    dot.set_defaults(handler=_cmd_dot)

    distance = commands.add_parser(
        "distance", help="walking distance and directions between two points"
    )
    distance.add_argument("plan")
    distance.add_argument("x1", type=float)
    distance.add_argument("y1", type=float)
    distance.add_argument("x2", type=float)
    distance.add_argument("y2", type=float)
    distance.add_argument("--floor1", type=int, default=0)
    distance.add_argument("--floor2", type=int, default=0)
    distance.set_defaults(handler=_cmd_distance)

    render = commands.add_parser("render", help="draw a floor to SVG")
    render.add_argument("plan")
    render.add_argument("-o", "--output", required=True)
    render.add_argument("--floor", type=int, default=0)
    render.add_argument("--width", type=int, default=900)
    render.set_defaults(handler=_cmd_render)

    export = commands.add_parser(
        "export-figure1", help="write the paper's Figure-1 plan to JSON"
    )
    export.add_argument("output")
    export.set_defaults(handler=_cmd_export_figure1)

    persist = commands.add_parser(
        "persist", help="crash-safe snapshot save / load / verify"
    )
    persist_commands = persist.add_subparsers(
        dest="persist_command", required=True
    )

    persist_save = persist_commands.add_parser(
        "save", help="build the indexes for a plan and write a new generation"
    )
    persist_save.add_argument("plan", help="floor plan JSON file")
    persist_save.add_argument("directory", help="snapshot store directory")
    persist_save.add_argument(
        "--objects", default=None, help="optional JSON object set to load"
    )
    persist_save.add_argument(
        "--cell-size", type=float, default=2.0,
        help="grid cell edge for the object buckets (metres)",
    )
    persist_save.set_defaults(handler=_cmd_persist_save)

    persist_load = persist_commands.add_parser(
        "load", help="run the recovery ladder over a snapshot store"
    )
    persist_load.add_argument("directory", help="snapshot store directory")
    persist_load.add_argument(
        "--plan", default=None,
        help="floor plan JSON enabling the fresh-rebuild fallback rung",
    )
    persist_load.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when recovery had to quarantine anything",
    )
    persist_load.set_defaults(handler=_cmd_persist_load)

    persist_verify = persist_commands.add_parser(
        "verify",
        help="checksum + integrity verification of a snapshot file or store",
    )
    persist_verify.add_argument(
        "target", help="a .snap file or a snapshot store directory"
    )
    persist_verify.set_defaults(handler=_cmd_persist_verify)

    bench = commands.add_parser("bench", help="run figure benchmarks")
    bench.add_argument("bench_args", nargs=argparse.REMAINDER)
    bench.set_defaults(handler=_cmd_bench)

    serve_bench = commands.add_parser(
        "serve-bench",
        help="serving throughput: QueryService vs sequential QueryEngine",
    )
    serve_bench.add_argument(
        "--json", default=None, help="write the full result dict to this file"
    )
    serve_bench.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    serve_bench.set_defaults(handler=_cmd_serve_bench)

    shard_bench = commands.add_parser(
        "shard-bench",
        help="serving throughput: sharded processes vs thread pool vs "
        "sequential engine",
    )
    shard_bench.add_argument(
        "--json", default=None, help="write the full result dict to this file"
    )
    shard_bench.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    shard_bench.set_defaults(handler=_cmd_shard_bench)

    labels_bench = commands.add_parser(
        "labels-bench",
        help="distance backends: 2-hop labeling vs dense matrix "
        "(build time, resident bytes, bitwise agreement)",
    )
    labels_bench.add_argument(
        "--json", default=None, help="write the full result dict to this file"
    )
    labels_bench.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    labels_bench.add_argument(
        "--artifact", action="store_true",
        help="measure the committed two-scale BENCH_labels.json artifact "
        "(campus evidence + the quick section the gate replays)",
    )
    labels_bench.set_defaults(handler=_cmd_labels_bench)

    overload_bench = commands.add_parser(
        "overload-bench",
        help="flash-crowd overload: adaptive limiter + shedding vs an "
        "unprotected service driven past collapse",
    )
    overload_bench.add_argument(
        "--json", default=None, help="write the full result dict to this file"
    )
    overload_bench.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    overload_bench.set_defaults(handler=_cmd_overload_bench)

    reconfig_bench = commands.add_parser(
        "reconfig-bench",
        help="live topology reconfiguration: epoch-fenced rolling update "
        "vs stop-the-world restart (availability, p99, exactness)",
    )
    reconfig_bench.add_argument(
        "--json", default=None, help="write the full result dict to this file"
    )
    reconfig_bench.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    reconfig_bench.set_defaults(handler=_cmd_reconfig_bench)

    chaos = commands.add_parser(
        "chaos", help="deterministic fault-injection campaigns"
    )
    chaos_commands = chaos.add_subparsers(dest="chaos_command", required=True)

    chaos_run = chaos_commands.add_parser(
        "run", help="run a seeded campaign against the Figure-1 stack"
    )
    chaos_run.add_argument("--seed", type=int, default=0)
    chaos_run.add_argument(
        "--duration-ops", type=int, default=200,
        help="workload length (the standard plan scales with it)",
    )
    chaos_run.add_argument(
        "--objects", type=int, default=12, help="indoor object population"
    )
    chaos_run.add_argument(
        "--plan", default=None, metavar="PLAN.json",
        help="custom fault schedule (FaultPlan JSON; default: the "
        "standard plan scaled to --duration-ops)",
    )
    chaos_run.add_argument(
        "--report", default=None, metavar="OUT.json",
        help="write the full campaign report (replayable)",
    )
    chaos_run.add_argument(
        "--bench-json", default=None, metavar="OUT.json",
        help="write per-quality-level latency percentiles",
    )
    chaos_run.add_argument(
        "--witness", default=None, metavar="TRACE.json",
        help="run with LockWitness instrumentation (observed "
        "lock-acquisition orders) and write the trace for "
        "'lint --witness'",
    )
    chaos_run.add_argument(
        "--store-dir", default=None,
        help="snapshot store directory (default: a fresh tempdir)",
    )
    chaos_run.add_argument("--no-differential", action="store_true")
    chaos_run.add_argument("--no-metamorphic", action="store_true")
    chaos_run.add_argument("--no-epoch-oracle", action="store_true")
    chaos_run.add_argument(
        "--no-integrity-gate", action="store_true",
        help="disable the pre-answer integrity checks (demonstrates the "
        "silent-wrong-answer failure mode; expect a FAIL verdict)",
    )
    chaos_run.add_argument("--no-breaker", action="store_true")
    chaos_run.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the campaign against an N-worker sharded tier with the "
        "shard fault plan (kill/hang/snapshot-rot); 0 = single-process",
    )
    chaos_run.add_argument(
        "--workload", default="mixed", choices=("mixed", "flash-crowd"),
        help="op-stream shape; flash-crowd is the zipfian rush-hour "
        "spike (with --shards, the default plan times its casualties "
        "into the spike window)",
    )
    chaos_run.add_argument(
        "--reconfig", action="store_true",
        help="swap in the live-reconfiguration fault plan: topology "
        "mutations rolled through the fleet mid-campaign, with the "
        "reconfig crash points (torn commit, kill-after-prepare) armed "
        "(requires --shards)",
    )
    chaos_run.add_argument(
        "--hedging", action="store_true",
        help="arm the overload-control stack on the sharded tier: "
        "hedged scatter-gather probes, a retry budget, and an adaptive "
        "concurrency limiter (requires --shards)",
    )
    chaos_run.add_argument(
        "--backend", default="matrix", choices=("matrix", "labels"),
        help="distance backend of the served stack; the differential "
        "oracle always judges against the dense matrix, so "
        "--backend labels proves the label index bit-identical under "
        "faults",
    )
    chaos_run.set_defaults(handler=_cmd_chaos_run)

    chaos_replay = chaos_commands.add_parser(
        "replay",
        help="re-run a saved report's config; verify the digest reproduces",
    )
    chaos_replay.add_argument(
        "--report", required=True, metavar="REPORT.json"
    )
    chaos_replay.set_defaults(handler=_cmd_chaos_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # argparse.REMAINDER refuses to start with an option-like token
    # (bpo-17050), which would break ``repro bench --gate``: forward the
    # bench subcommand's tail verbatim instead of parsing it here.
    if argv and argv[0] == "bench":
        from repro.bench.__main__ import main as bench_main

        return bench_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
