"""Deterministic byte codec for :class:`LabeledDistanceIndex`.

The snapshot layer (:mod:`repro.persist.snapshot`) stores each section as
opaque checksummed bytes; this module produces those bytes for the labels
backend.  The encoding is a sorted JSON manifest of array descriptors
(name, dtype, shape) followed by the raw C-order array payloads — *not*
``np.savez``, whose zip container embeds wall-clock timestamps and would
break the byte-for-byte snapshot determinism the persistence tests
enforce.  Decoding rebuilds the index exactly: every query answer after a
reload is bit-identical to the saved instance.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import SerializationError
from repro.labels.builder import HubLabeling
from repro.labels.hierarchy import VertexHierarchy
from repro.labels.index import LabeledDistanceIndex, LabelPatches

_CODEC_VERSION = 1


def _collect_arrays(index: LabeledDistanceIndex) -> Dict[str, np.ndarray]:
    lab = index.labeling
    edges = index.base_edges
    arrays: Dict[str, np.ndarray] = {
        "base_door_ids": np.asarray(index.hierarchy.door_ids, dtype=np.int64),
        "out_indptr": lab.out_indptr,
        "out_hubs": lab.out_hubs,
        "out_dists": lab.out_dists,
        "in_indptr": lab.in_indptr,
        "in_hubs": lab.in_hubs,
        "in_dists": lab.in_dists,
        "corr_src": lab.corr_src,
        "corr_dst": lab.corr_dst,
        "corr_val": lab.corr_val,
        "levels": index.hierarchy.levels,
        "order": index.hierarchy.order,
        "edge_src": np.asarray([e[0] for e in edges], dtype=np.int64),
        "edge_dst": np.asarray([e[1] for e in edges], dtype=np.int64),
        "edge_w": np.asarray([e[2] for e in edges], dtype=np.float64),
    }
    patches = index.patches
    if patches is not None:
        arrays["patch_door_ids"] = np.asarray(patches.door_ids, dtype=np.int64)
        arrays["patch_ids"] = np.asarray(patches.patch_ids, dtype=np.int64)
        arrays["patch_fwd"] = patches.fwd
        arrays["patch_bwd"] = patches.bwd
    return arrays


def labels_to_bytes(index: LabeledDistanceIndex) -> bytes:
    """Encode ``index`` deterministically (identical input → identical
    bytes, byte-for-byte)."""
    arrays = _collect_arrays(index)
    descriptors: List[Tuple[str, str, List[int]]] = []
    payload = bytearray()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        descriptors.append((name, array.dtype.str, list(array.shape)))
        payload.extend(array.tobytes())
    header = json.dumps(
        {"version": _CODEC_VERSION, "arrays": descriptors},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return struct.pack(">Q", len(header)) + header + bytes(payload)


def labels_from_bytes(data: bytes) -> LabeledDistanceIndex:
    """Decode bytes produced by :func:`labels_to_bytes`."""
    if len(data) < 8:
        raise SerializationError("labels section truncated before header")
    (header_len,) = struct.unpack(">Q", data[:8])
    if len(data) < 8 + header_len:
        raise SerializationError("labels section truncated inside header")
    try:
        header = json.loads(data[8 : 8 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"labels header is not valid JSON: {exc}")
    if header.get("version") != _CODEC_VERSION:
        raise SerializationError(
            f"unsupported labels codec version {header.get('version')!r}"
        )
    arrays: Dict[str, np.ndarray] = {}
    offset = 8 + header_len
    for name, dtype_str, shape in header["arrays"]:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(data):
            raise SerializationError(
                f"labels section truncated inside array {name!r}"
            )
        arrays[name] = np.frombuffer(
            data[offset : offset + nbytes], dtype=dtype
        ).reshape(shape).copy()
        offset += nbytes
    if offset != len(data):
        raise SerializationError("labels section has trailing bytes")

    required = {
        "base_door_ids",
        "out_indptr",
        "out_hubs",
        "out_dists",
        "in_indptr",
        "in_hubs",
        "in_dists",
        "corr_src",
        "corr_dst",
        "corr_val",
        "levels",
        "order",
        "edge_src",
        "edge_dst",
        "edge_w",
    }
    missing = required - set(arrays)
    if missing:
        raise SerializationError(
            f"labels section is missing arrays: {', '.join(sorted(missing))}"
        )

    door_ids = tuple(int(v) for v in arrays["base_door_ids"])
    labeling = HubLabeling(
        out_indptr=arrays["out_indptr"],
        out_hubs=arrays["out_hubs"],
        out_dists=arrays["out_dists"],
        in_indptr=arrays["in_indptr"],
        in_hubs=arrays["in_hubs"],
        in_dists=arrays["in_dists"],
        corr_src=arrays["corr_src"],
        corr_dst=arrays["corr_dst"],
        corr_val=arrays["corr_val"],
        stats={
            "entries": float(len(arrays["out_hubs"]) + len(arrays["in_hubs"])),
            "corrections": float(len(arrays["corr_src"])),
        },
    )
    hierarchy = VertexHierarchy(
        door_ids=door_ids, levels=arrays["levels"], order=arrays["order"]
    )
    edges = list(
        zip(
            (int(v) for v in arrays["edge_src"]),
            (int(v) for v in arrays["edge_dst"]),
            (float(v) for v in arrays["edge_w"]),
        )
    )
    patches = None
    if "patch_door_ids" in arrays:
        patches = LabelPatches(
            door_ids=tuple(int(v) for v in arrays["patch_door_ids"]),
            patch_ids=tuple(int(v) for v in arrays["patch_ids"]),
            fwd=arrays["patch_fwd"],
            bwd=arrays["patch_bwd"],
        )
    return LabeledDistanceIndex(door_ids, labeling, hierarchy, edges, patches)
