"""Figure 7: Algorithms 3 and 4 on the (simulated) Android phone.

The paper runs the Figure-6 sweep on a 1 GHz Samsung Nexus S and finds that
Algorithm 4 runs roughly twice as fast as Algorithm 3 there.  Hardware
substitution (DESIGN.md): we model the phone as a constant interpreter
slowdown on measured desktop times and verify the relative ordering —
Algorithm 4 must never lose to Algorithm 3 by more than measurement noise.
"""

import time

import pytest

from repro.bench.harness import PHONE_SLOWDOWN, get_building
from repro.distance import pt2pt_distance_memoized, pt2pt_distance_refined
from repro.synthetic import random_position_pairs

PAIRS_PER_POINT = 4


def _run_pairs(space, fn, pairs):
    for source, target in pairs:
        fn(space, source, target)


@pytest.mark.parametrize("floors", [10, 20, 30, 40])
@pytest.mark.parametrize("algorithm", ["algorithm3", "algorithm4"])
def test_fig7_mobile_distance_algorithm(benchmark, floors, algorithm):
    building = get_building(floors)
    pairs = random_position_pairs(building, PAIRS_PER_POINT, seed=1000 + floors)
    fn = (
        pt2pt_distance_refined
        if algorithm == "algorithm3"
        else pt2pt_distance_memoized
    )
    benchmark.extra_info["floors"] = floors
    benchmark.extra_info["phone_slowdown_model"] = PHONE_SLOWDOWN
    benchmark.pedantic(
        _run_pairs, args=(building.space, fn, pairs), rounds=1, iterations=1
    )


def test_fig7_trend_algorithm4_not_slower(benchmark):
    """Paper trend: Algorithm 4 wins on constrained devices.  On desktop
    CPython the gap is smaller than the paper's phone 2x, so assert only the
    robust direction with a generous noise margin."""
    building = get_building(40)
    pairs = random_position_pairs(building, 6, seed=1040)

    start = time.perf_counter()
    _run_pairs(building.space, pt2pt_distance_refined, pairs)
    refined_time = time.perf_counter() - start

    start = time.perf_counter()
    _run_pairs(building.space, pt2pt_distance_memoized, pairs)
    memoized_time = time.perf_counter() - start

    benchmark.extra_info["alg3_over_alg4"] = refined_time / memoized_time
    assert memoized_time <= refined_time * 1.5, (
        f"Algorithm 4 ({memoized_time:.3f}s) should not be meaningfully "
        f"slower than Algorithm 3 ({refined_time:.3f}s)"
    )
    benchmark.pedantic(
        _run_pairs,
        args=(building.space, pt2pt_distance_memoized, pairs),
        rounds=1,
        iterations=1,
    )
