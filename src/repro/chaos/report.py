"""The campaign's verdict artifact: incidents, classification, digest.

A :class:`CampaignReport` is the JSON file a campaign leaves behind — CI
uploads it, ``repro doctor`` summarises it, and ``repro chaos replay``
re-runs its embedded configuration and compares incident digests.

Incident taxonomy (:class:`IncidentClass`):

* ``DEGRADED_CORRECTLY`` — the service served below the exact-indexed
  rung (shed, breaker fallback) and the answer honoured that rung's
  guarantee.
* ``RECOVERED`` — a failure was *detected* (error response, quarantined
  snapshot, torn WAL, injected crash) and the service came back to
  exact, verified service afterwards.
* ``SILENT_WRONG_ANSWER`` — an oracle caught an answer that violated its
  claimed guarantee.  Any one of these fails the campaign.
* ``UNRECOVERED`` — a detected failure the service never healed from
  (the end-of-campaign probe still failed).  Also fails the campaign.

The ``digest`` is a SHA-256 over the canonical JSON of the incident
sequence *only* — timings and latency percentiles are recorded alongside
but excluded, so the digest is reproducible byte-for-byte from the seed.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

PathLike = Union[str, Path]


class IncidentClass(enum.Enum):
    """How one incident resolved (see module docstring)."""

    DEGRADED_CORRECTLY = "degraded_correctly"
    RECOVERED = "recovered"
    SILENT_WRONG_ANSWER = "silent_wrong_answer"
    UNRECOVERED = "unrecovered"


#: Classes whose presence fails the whole campaign.
FAILING_CLASSES = (
    IncidentClass.SILENT_WRONG_ANSWER,
    IncidentClass.UNRECOVERED,
)


@dataclass
class Incident:
    """One observed event of a campaign.

    Attributes:
        op_index: the workload operation during/before which it happened.
        kind: deterministic event tag (``degraded`` / ``request_failed`` /
            ``injected_crash`` / ``quarantined`` / ``wal_torn_tail`` /
            ``oracle_violation`` / ``final_probe_failed`` ...).
        classification: the :class:`IncidentClass` it resolved to.
        quality: ladder rung name for served-answer incidents ("" else).
        detail: deterministic human-readable description (digested — must
            never contain timings, pids, or absolute paths).
    """

    op_index: int
    kind: str
    classification: IncidentClass
    quality: str = ""
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, canonical representation (what the digest covers)."""
        return {
            "op_index": self.op_index,
            "kind": self.kind,
            "classification": self.classification.value,
            "quality": self.quality,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Incident":
        """Inverse of :meth:`to_dict`."""
        return cls(
            op_index=int(raw["op_index"]),
            kind=raw["kind"],
            classification=IncidentClass(raw["classification"]),
            quality=raw.get("quality", ""),
            detail=raw.get("detail", ""),
        )


def incident_digest(incidents: List[Incident]) -> str:
    """SHA-256 over the canonical JSON of the incident sequence."""
    payload = json.dumps(
        [incident.to_dict() for incident in incidents],
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass
class CampaignReport:
    """Everything one campaign run produced.

    Attributes:
        config: the campaign configuration (seed, duration, plan, oracle
            toggles) — sufficient to replay the run.
        incidents: every incident, in op order.
        digest: SHA-256 of the canonical incident sequence; identical
            across replays of the same seed + config.
        ops_executed: workload operations actually served.
        latency_ms: per-quality-rung latency percentiles (informational;
            never digested).
        breaker: final breaker snapshot (informational).
        overload: final overload-control snapshot — shed / hedged /
            budget counters plus limiter and budget state — for
            campaigns run with hedging enabled (informational; never
            digested, because hedge wins depend on real scheduling).
        reconfig: final reconfiguration snapshot — committed / fence
            epoch, prepare / commit / abort / resume counters, fenced
            and retried reply counts — for sharded campaigns that ran
            topology mutations (informational; never digested, because
            retry and restart counts depend on real scheduling).
    """

    config: Dict[str, Any]
    incidents: List[Incident] = field(default_factory=list)
    digest: str = ""
    ops_executed: int = 0
    latency_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    breaker: Dict[str, Any] = field(default_factory=dict)
    overload: Dict[str, Any] = field(default_factory=dict)
    reconfig: Dict[str, Any] = field(default_factory=dict)

    def finalize(self) -> "CampaignReport":
        """Seal the digest over the current incident sequence."""
        self.digest = incident_digest(self.incidents)
        return self

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    @property
    def verdict(self) -> str:
        """``"PASS"`` unless any incident silently lied or never healed."""
        return "FAIL" if any(
            incident.classification in FAILING_CLASSES
            for incident in self.incidents
        ) else "PASS"

    @property
    def passed(self) -> bool:
        """True when the campaign met its correctness bar."""
        return self.verdict == "PASS"

    def counts(self) -> Dict[str, int]:
        """Incident tally per classification (zero-filled)."""
        tally = {cls.value: 0 for cls in IncidentClass}
        for incident in self.incidents:
            tally[incident.classification.value] += 1
        return tally

    # ------------------------------------------------------------------
    # (De)serialisation
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """The full report as one JSON-safe dict."""
        return {
            "format": 1,
            "config": self.config,
            "verdict": self.verdict,
            "digest": self.digest,
            "ops_executed": self.ops_executed,
            "counts": self.counts(),
            "incidents": [i.to_dict() for i in self.incidents],
            "latency_ms": self.latency_ms,
            "breaker": self.breaker,
            "overload": self.overload,
            "reconfig": self.reconfig,
        }

    def save(self, path: PathLike) -> Path:
        """Write the report as pretty-printed JSON; returns the path."""
        target = Path(path)
        target.write_text(
            json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: PathLike) -> "CampaignReport":
        """Read a report previously written by :meth:`save`."""
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            config=raw["config"],
            incidents=[Incident.from_dict(i) for i in raw["incidents"]],
            digest=raw.get("digest", ""),
            ops_executed=int(raw.get("ops_executed", 0)),
            latency_ms=raw.get("latency_ms", {}),
            breaker=raw.get("breaker", {}),
            overload=raw.get("overload", {}),
            reconfig=raw.get("reconfig", {}),
        )
