"""Query workload generation for the benchmark harness (paper §VI).

Distance experiments use random position pairs ("for each algorithm
invocation, we generate at random two indoor positions"); query experiments
use random query positions ("we randomly pick a floor and generate a random
query position on that particular floor").

Beyond the paper, :func:`query_workload` generates mixed serving workloads
(range / kNN / pt2pt, as plain :class:`WorkloadOp` descriptors) over any
:class:`~repro.model.builder.IndoorSpace` — the deterministic op stream the
chaos campaigns of :mod:`repro.chaos` replay by seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry import Point
from repro.model.builder import IndoorSpace
from repro.model.entities import PartitionKind
from repro.synthetic.building import SyntheticBuilding
from repro.synthetic.objects import random_point_in_partition


def random_position(
    building: SyntheticBuilding,
    rng: random.Random,
    floor: Optional[int] = None,
) -> Point:
    """One random indoor position: random floor, then a position uniform
    over the floor's walkable area (rooms + hallway).

    Area-uniform sampling matters: the hallway is roughly a third of each
    floor, so multi-door source/destination partitions occur with realistic
    frequency — which is what separates Algorithm 2 from Algorithms 3/4 in
    the Figure-6 experiment.
    """
    if floor is None:
        floor = rng.randrange(building.floors)
    candidates = building.rooms_on_floor(floor) + [building.hallway_on_floor(floor)]
    partitions = [building.space.partition(pid) for pid in candidates]
    weights = [p.polygon.area for p in partitions]
    (partition,) = rng.choices(partitions, weights=weights, k=1)
    return random_point_in_partition(partition, rng)


def random_positions(
    building: SyntheticBuilding, count: int, seed: int = 0
) -> List[Point]:
    """``count`` random query positions (deterministic per seed)."""
    rng = random.Random(seed)
    return [random_position(building, rng) for _ in range(count)]


def random_position_pairs(
    building: SyntheticBuilding, count: int, seed: int = 0
) -> List[Tuple[Point, Point]]:
    """``count`` random (source, destination) pairs for the distance
    algorithm experiments (Figures 6-7)."""
    rng = random.Random(seed)
    return [
        (random_position(building, rng), random_position(building, rng))
        for _ in range(count)
    ]


def random_indoor_position(space: IndoorSpace, rng: random.Random) -> Point:
    """One area-uniform random position over a space's indoor partitions.

    The generic-:class:`IndoorSpace` sibling of :func:`random_position`
    (which needs a :class:`SyntheticBuilding`'s floor layout): outdoor
    partitions are excluded, everything else is weighted by walkable area.
    """
    partitions = [
        p for p in space.partitions() if p.kind is not PartitionKind.OUTDOOR
    ]
    weights = [p.polygon.area for p in partitions]
    (partition,) = rng.choices(partitions, weights=weights, k=1)
    return random_point_in_partition(partition, rng)


@dataclass(frozen=True)
class WorkloadOp:
    """One operation of a mixed serving workload.

    A plain descriptor — no engine types — so workloads can be generated
    once up front and replayed against any serving stack (fresh, faulted,
    pristine-oracle).

    Attributes:
        index: position of the op in its workload (0-based).
        kind: ``"range"``, ``"knn"``, or ``"pt2pt"``.
        position: query position (range / kNN) or source (pt2pt).
        radius: range radius in metres (``range`` only).
        k: neighbour count (``knn`` only).
        target: destination (``pt2pt`` only).
        pivot: a third position carried along for metamorphic
            triangle-inequality checks (``pt2pt`` only).
    """

    index: int
    kind: str
    position: Point
    radius: Optional[float] = None
    k: Optional[int] = None
    target: Optional[Point] = None
    pivot: Optional[Point] = None

    def to_request(self):
        """The op as a serving-layer :class:`~repro.serve.QueryRequest`."""
        from repro.serve.requests import QueryRequest

        if self.kind == "range":
            return QueryRequest.range_query(self.position, self.radius)
        if self.kind == "knn":
            return QueryRequest.knn(self.position, self.k)
        return QueryRequest.pt2pt(self.position, self.target)


def query_workload(
    space: IndoorSpace,
    count: int,
    seed: int = 0,
    mix: Sequence[float] = (0.4, 0.3, 0.3),
) -> List[WorkloadOp]:
    """``count`` mixed ops (range, kNN, pt2pt) — deterministic per seed.

    Args:
        space: the indoor space to sample positions from.
        count: how many operations.
        seed: RNG seed; every position, radius, k, and kind draw derives
            from it, so the same seed always yields the same workload.
        mix: relative weights of (range, knn, pt2pt).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    ops: List[WorkloadOp] = []
    for index in range(count):
        (kind,) = rng.choices(("range", "knn", "pt2pt"), weights=mix, k=1)
        position = random_indoor_position(space, rng)
        if kind == "range":
            ops.append(
                WorkloadOp(
                    index, kind, position,
                    radius=round(rng.uniform(2.0, 15.0), 3),
                )
            )
        elif kind == "knn":
            ops.append(WorkloadOp(index, kind, position, k=rng.randint(1, 8)))
        else:
            ops.append(
                WorkloadOp(
                    index, kind, position,
                    target=random_indoor_position(space, rng),
                    pivot=random_indoor_position(space, rng),
                )
            )
    return ops
