"""AST-based project linter enforcing repro's cross-cutting contracts.

``repro lint`` runs eight project-specific rules over the tree:

=======  ==========================================================
REP001   writes to ``self._*`` state of lock-owning classes must
         hold the lock (``repro.serve``, ``repro.persist``)
REP002   no wall-clock or unseeded randomness in replay-critical
         modules (``repro.chaos``, ``repro.persist``,
         ``repro.synthetic``, ``repro.runtime.faults``)
REP003   functions accepting ``deadline``/``budget`` must forward
         it to every deadline-aware callee (import-aware callee
         resolution via the interprocedural call graph)
REP004   broad ``except`` handlers must re-raise, classify, or
         leave an observable trace
REP005   ``__all__`` coherent, public defs exported, versions agree
REP006   the global lock-acquisition-order graph must be acyclic
         (interprocedural; cycles reported with witness paths)
REP007   no blocking primitive — pipe sends/recvs, joins, sleeps,
         queue ops, subprocess/future waits — reachable while a
         lock is held
REP008   shard-reply merges must flow through the epoch fence and
         every ``QueryResponse`` must stamp ``reply_epochs``
=======  ==========================================================

REP006–REP008 share one interprocedural substrate
(:mod:`repro.analysis.lint.callgraph`): a project-wide call graph with
per-function lock summaries iterated to a fixed point.  The static
lock-order graph is cross-checkable against *observed* acquisition
orders recorded by :mod:`repro.analysis.witness` (``repro chaos run
--witness`` → ``repro lint --witness``).

See ``docs/analysis.md`` for the rule catalogue, the
``# repro: noqa REP00x`` suppression syntax, the committed-baseline
workflow, and a walkthrough of adding a new checker.
"""

from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.engine import (
    DEFAULT_BASELINE_NAME,
    LintConfig,
    LintReport,
    build_project,
    discover_files,
    run_lint,
)
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import (
    Checker,
    all_checkers,
    get_checker,
    register,
)
from repro.analysis.lint.suppressions import SuppressionTable

__all__ = [
    "Baseline",
    "Checker",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "Severity",
    "SuppressionTable",
    "all_checkers",
    "build_project",
    "discover_files",
    "get_checker",
    "register",
    "run_lint",
]
