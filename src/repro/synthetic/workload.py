"""Query workload generation for the benchmark harness (paper §VI).

Distance experiments use random position pairs ("for each algorithm
invocation, we generate at random two indoor positions"); query experiments
use random query positions ("we randomly pick a floor and generate a random
query position on that particular floor").
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.geometry import Point
from repro.synthetic.building import SyntheticBuilding
from repro.synthetic.objects import random_point_in_partition


def random_position(
    building: SyntheticBuilding,
    rng: random.Random,
    floor: Optional[int] = None,
) -> Point:
    """One random indoor position: random floor, then a position uniform
    over the floor's walkable area (rooms + hallway).

    Area-uniform sampling matters: the hallway is roughly a third of each
    floor, so multi-door source/destination partitions occur with realistic
    frequency — which is what separates Algorithm 2 from Algorithms 3/4 in
    the Figure-6 experiment.
    """
    if floor is None:
        floor = rng.randrange(building.floors)
    candidates = building.rooms_on_floor(floor) + [building.hallway_on_floor(floor)]
    partitions = [building.space.partition(pid) for pid in candidates]
    weights = [p.polygon.area for p in partitions]
    (partition,) = rng.choices(partitions, weights=weights, k=1)
    return random_point_in_partition(partition, rng)


def random_positions(
    building: SyntheticBuilding, count: int, seed: int = 0
) -> List[Point]:
    """``count`` random query positions (deterministic per seed)."""
    rng = random.Random(seed)
    return [random_position(building, rng) for _ in range(count)]


def random_position_pairs(
    building: SyntheticBuilding, count: int, seed: int = 0
) -> List[Tuple[Point, Point]]:
    """``count`` random (source, destination) pairs for the distance
    algorithm experiments (Figures 6-7)."""
    rng = random.Random(seed)
    return [
        (random_position(building, rng), random_position(building, rng))
        for _ in range(count)
    ]
