"""ShardSpec and the materialize restart ladder."""

import pickle

import pytest

from repro.persist.snapshot import save_snapshot
from repro.runtime.faults import flip_snapshot_byte
from repro.shard import FloorPlacement, ShardSpec, SharedIndexArena
from repro.shard.spec import (
    materialize,
    owned_store,
    shard_framework,
    shard_specs,
)


@pytest.fixture(scope="module")
def placement(shard_framework_fixture):
    return FloorPlacement.for_space(shard_framework_fixture.space, 3)


@pytest.fixture(scope="module")
def specs(shard_framework_fixture, placement):
    return shard_specs(
        shard_framework_fixture, placement, cache_capacity=16
    )


class TestSpecs:
    def test_one_spec_per_shard_with_plumbed_settings(
        self, shard_framework_fixture, placement, specs
    ):
        assert [s.shard_id for s in specs] == list(placement.shard_ids)
        for spec in specs:
            assert spec.cache_capacity == 16
            assert spec.topology_epoch == (
                shard_framework_fixture.space.topology_epoch
            )
            assert spec.built_epoch == shard_framework_fixture.built_epoch
            assert spec.partition_ids == placement.partitions_of(spec.shard_id)

    def test_owned_stores_partition_the_population(
        self, shard_framework_fixture, placement
    ):
        slices = [
            sorted(
                obj.object_id
                for obj in owned_store(
                    shard_framework_fixture, placement, shard
                )
            )
            for shard in placement.shard_ids
        ]
        merged = sorted(oid for ids in slices for oid in ids)
        assert merged == sorted(
            obj.object_id for obj in shard_framework_fixture.objects
        )

    def test_specs_are_picklable(self, specs):
        clone = pickle.loads(pickle.dumps(specs[0]))
        assert clone == specs[0]


class TestMaterializeLadder:
    def test_rebuild_rung_restores_owned_objects_and_epochs(
        self, shard_framework_fixture, specs
    ):
        spec = specs[0]
        framework, source, arena = materialize(spec)
        assert source == "rebuild"  # no arena, no snapshot in the spec
        assert arena is None
        assert framework.space.topology_epoch == spec.topology_epoch
        assert framework.built_epoch == spec.built_epoch
        assert sorted(obj.object_id for obj in framework.objects) == [
            int(row["id"]) for row in sorted(
                spec.object_rows, key=lambda r: int(r["id"])
            )
        ]

    def test_arena_rung_wins_when_available(
        self, shard_framework_fixture, placement
    ):
        arena = SharedIndexArena.create(
            shard_framework_fixture.distance_index
        )
        try:
            spec = shard_specs(
                shard_framework_fixture, placement, arena=arena
            )[1]
            framework, source, attached = materialize(spec)
            assert source == "arena"
            attached.close()
        finally:
            arena.unlink()

    def test_corrupt_snapshot_is_quarantined_then_rebuilt(
        self, shard_framework_fixture, placement, tmp_path
    ):
        shard_id = 2
        narrowed = shard_framework(
            shard_framework_fixture, placement, shard_id
        )
        path = tmp_path / f"shard-{shard_id}.snap"
        save_snapshot(narrowed, path)
        flip_snapshot_byte(str(path), count=4, seed=7)
        spec = shard_specs(
            shard_framework_fixture, placement, snapshot_dir=tmp_path
        )[shard_id]
        framework, source, _ = materialize(spec)
        assert source == "rebuild"
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert framework.space.topology_epoch == spec.topology_epoch

    def test_healthy_snapshot_rung(
        self, shard_framework_fixture, placement, tmp_path
    ):
        shard_id = 0
        narrowed = shard_framework(
            shard_framework_fixture, placement, shard_id
        )
        save_snapshot(narrowed, tmp_path / f"shard-{shard_id}.snap")
        spec = shard_specs(
            shard_framework_fixture, placement, snapshot_dir=tmp_path
        )[shard_id]
        framework, source, _ = materialize(spec)
        assert source == "snapshot"
        assert sorted(obj.object_id for obj in framework.objects) == sorted(
            obj.object_id for obj in narrowed.objects
        )
