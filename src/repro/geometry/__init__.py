"""Geometric substrate: points, segments, polygons, and visibility graphs.

This subpackage provides everything the indoor-space model needs to measure
intra-partition distances: Euclidean primitives, polygon containment tests,
and visibility-graph shortest paths for partitions that contain obstacles
(paper §III-C1 and §V-A, Figure 5).
"""

from repro.geometry.primitives import EPSILON, Point, Segment
from repro.geometry.polygon import BoundingBox, Polygon, rectangle
from repro.geometry.visibility import VisibilityGraph, obstructed_distance

__all__ = [
    "EPSILON",
    "Point",
    "Segment",
    "BoundingBox",
    "Polygon",
    "rectangle",
    "VisibilityGraph",
    "obstructed_distance",
]
