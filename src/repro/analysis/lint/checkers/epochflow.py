"""REP008 — shard replies must flow through the epoch fence.

PR 9's live-reconfiguration invariant: no answer may merge replies
computed against two different topology epochs.  The router enforces it
by stamping every :class:`~repro.shard.supervisor.ShardAnswer` with the
worker's committed epoch and running all gathered replies through
``_apply_fence`` (drop-or-retry anything below the fence) before any
values are merged, then recording the surviving epochs on the
``QueryResponse.reply_epochs`` field the chaos EpochOracle audits.

The rule is a dataflow walk over each function in ``repro.shard``:

* **Sources** taint a name: calls whose resolved callee returns a
  *container* of ``ShardAnswer`` (``_scatter``'s
  ``Dict[int, ShardAnswer]``), and parameters annotated with such a
  container (a merge helper receives replies from somewhere).
* **Fences** clear taint: passing a tainted name to a function whose
  body compares ``<expr>.epoch`` or whose name mentions ``fence``.
  A function that *is* such a fence is exempt entirely — it is the
  comparison site itself.
* **Sinks** fire when still tainted: a ``return`` mentioning a tainted
  name, or a ``QueryResponse(...)`` construction fed a tainted name —
  either merges replies nobody fenced.

Separately, any ``QueryResponse(...)`` constructed in ``repro.shard``
must stamp ``reply_epochs=``; a response without the stamp is invisible
to the EpochOracle, which is how an epoch-mix bug would go silent.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.lint.callgraph import (
    FunctionInfo,
    ProjectGraph,
    build_graph,
)
from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import Checker, register

_SCOPE_PREFIX = "repro.shard"

_CONTAINER_MARKS = ("Dict[", "List[", "Tuple[", "Iterable[", "Sequence[",
                    "Mapping[", "dict[", "list[", "tuple[")


def _is_reply_container(annotation: str) -> bool:
    """Does an annotation describe a *plurality* of ShardAnswers?"""
    if "ShardAnswer" not in annotation:
        return False
    return any(mark in annotation for mark in _CONTAINER_MARKS)


def _names_in(expr: ast.expr) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _call_dotted(func: ast.expr) -> str:
    parts: List[str] = []
    cursor = func
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
    return ".".join(reversed(parts))


@register
class EpochFlowChecker(Checker):
    rule_id = "REP008"
    summary = "shard-reply merges must pass the epoch fence and stamp epochs"

    def check(
        self, module: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        if not module.module_name.startswith(_SCOPE_PREFIX):
            return []
        graph = build_graph(project)
        findings: List[Finding] = []

        for key in sorted(graph.functions):
            info = graph.functions[key]
            if info.relpath != module.relpath:
                continue
            node = self._function_node(module, info)
            if node is None:
                continue
            findings.extend(self._check_function(module, graph, info, node))
            findings.extend(self._check_responses(module, node))
        return findings

    # ------------------------------------------------------------------

    def _function_node(
        self, module: ModuleContext, info: FunctionInfo
    ) -> Optional[ast.FunctionDef]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == info.name
                and node.lineno == info.lineno
            ):
                return node
        return None

    def _is_fence_function(self, info: FunctionInfo) -> bool:
        return info.epoch_compare or "fence" in info.name.lower()

    def _callees_at(
        self, info: FunctionInfo, call: ast.Call
    ) -> Tuple[str, ...]:
        for event in info.calls:
            if event.line == call.lineno and event.col == call.col_offset:
                return event.callees
        return ()

    def _is_source_call(
        self, graph: ProjectGraph, info: FunctionInfo, call: ast.Call
    ) -> bool:
        for callee in self._callees_at(info, call):
            target = graph.functions.get(callee)
            if target is not None and _is_reply_container(target.returns):
                return True
        return False

    def _is_fence_call(
        self, graph: ProjectGraph, info: FunctionInfo, call: ast.Call
    ) -> bool:
        dotted = _call_dotted(call.func)
        if "fence" in dotted.lower():
            return True
        for callee in self._callees_at(info, call):
            target = graph.functions.get(callee)
            if target is not None and self._is_fence_function(target):
                return True
        return False

    # ------------------------------------------------------------------

    def _check_function(
        self,
        module: ModuleContext,
        graph: ProjectGraph,
        info: FunctionInfo,
        node: ast.FunctionDef,
    ) -> Iterable[Finding]:
        if self._is_fence_function(info):
            return []

        tainted: Set[str] = set()
        source_sites: Dict[str, Tuple[int, int, str]] = {}

        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            annotation = info.param_annotations.get(arg.arg, "")
            if _is_reply_container(annotation):
                tainted.add(arg.arg)
                source_sites[arg.arg] = (
                    node.lineno,
                    node.col_offset,
                    f"parameter '{arg.arg}'",
                )

        body_calls: List[ast.Call] = []
        returns: List[ast.Return] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                body_calls.append(sub)
            elif isinstance(sub, ast.Return) and sub.value is not None:
                returns.append(sub)

        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            has_source = any(
                isinstance(inner, ast.Call)
                and self._is_source_call(graph, info, inner)
                for inner in ast.walk(sub.value)
            )
            if not has_source:
                continue
            label = ""
            for inner in ast.walk(sub.value):
                if isinstance(inner, ast.Call) and self._is_source_call(
                    graph, info, inner
                ):
                    label = _call_dotted(inner.func) or "<call>"
                    break
            for target in sub.targets:
                elements = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if isinstance(element, ast.Name):
                        tainted.add(element.id)
                        source_sites.setdefault(
                            element.id,
                            (sub.lineno, sub.col_offset, f"{label}()"),
                        )

        if not tainted:
            return []

        fenced = any(
            self._is_fence_call(graph, info, call)
            and any(
                _names_in(arg) & tainted
                for arg in list(call.args)
                + [kw.value for kw in call.keywords]
            )
            for call in body_calls
        )
        if fenced:
            return []

        findings: List[Finding] = []
        flagged: Set[str] = set()

        def flag(names: Set[str], how: str) -> None:
            for name in sorted(names & tainted):
                if name in flagged:
                    continue
                flagged.add(name)
                line, col, origin = source_sites[name]
                findings.append(
                    self.finding(
                        module,
                        line,
                        col,
                        f"{info.name}() merges shard replies "
                        f"('{name}' from {origin}) {how} without passing "
                        "them through an epoch fence",
                        hint=(
                            "run the gathered replies through "
                            "_apply_fence (or compare reply .epoch "
                            "values and drop sub-fence answers) before "
                            "merging"
                        ),
                    )
                )

        for ret in returns:
            flag(_names_in(ret.value), "into a return value")
        for call in body_calls:
            if _call_dotted(call.func).split(".")[-1] != "QueryResponse":
                continue
            used: Set[str] = set()
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                used |= _names_in(arg)
            flag(used, "into a QueryResponse")
        return findings

    # ------------------------------------------------------------------

    def _check_responses(
        self, module: ModuleContext, node: ast.FunctionDef
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            if _call_dotted(sub.func).split(".")[-1] != "QueryResponse":
                continue
            has_stamp = any(
                kw.arg == "reply_epochs" or kw.arg is None  # **kwargs
                for kw in sub.keywords
            )
            if not has_stamp:
                findings.append(
                    self.finding(
                        module,
                        sub.lineno,
                        sub.col_offset,
                        f"{node.name}() constructs a QueryResponse without "
                        "stamping reply_epochs — the EpochOracle cannot "
                        "audit an unstamped response",
                        hint=(
                            "pass reply_epochs=<distinct merged epochs> "
                            "(the fourth result of _apply_fence)"
                        ),
                    )
                )
        return findings
