"""The versioned, checksummed snapshot format for an :class:`IndexFramework`.

A snapshot captures the five §IV structures — the indoor space model (from
which G_dist and the R-tree are reconstructed), the distance backend
(M_d2d for the matrix backend, with M_idx re-derived by the same stable
argsort that built it, so it is bit-identical; or the 2-hop label arrays
for the labels backend, via the :mod:`repro.labels.serialize` codec), the
Door-to-Partition Table, and the grid-indexed object buckets (objects are
stored with their host partition id, so no point location runs on load).
The manifest's ``backend`` key names which layout the file carries;
format-1 files predate it and always hold a matrix.

Container layout (all integers big-endian)::

    MAGIC (8 bytes, b"RPROSNAP")
    format version (u32)
    manifest length (u32)
    manifest (UTF-8 JSON)
    section payloads, concatenated in manifest order
    whole-file digest (32 bytes, SHA-256 of everything above)

The manifest records the topology epoch, the builder parameters, and per
section its name, codec, length, CRC32, and SHA-256 — so a verifier can
name exactly which component rotted.  Writes are crash-safe: the payload
goes to a ``.tmp.<pid>`` sibling first and is published with
:func:`os.replace`, so a reader never observes a half-written snapshot and
a writer killed before the rename leaves the previous file untouched.

Every load verifies the trailing digest and each section CRC before a
single byte is deserialised; any mismatch raises
:class:`~repro.exceptions.SnapshotCorruptError` naming the damaged section.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.distance.matrix import DoorDistanceMatrix
from repro.exceptions import SnapshotCorruptError
from repro.index.distance_matrix import DistanceIndexMatrix
from repro.index.dpt import DoorPartitionTable, DptRecord
from repro.index.framework import IndexFramework
from repro.index.objects import IndoorObject, ObjectStore
from repro.index.rtree import PartitionRTree
from repro.io.json_io import space_from_dict, space_to_dict
from repro.geometry import Point
from repro.runtime import crashpoints

PathLike = Union[str, Path]

#: First 8 bytes of every snapshot file.
MAGIC = b"RPROSNAP"

#: Bumped on any incompatible change to the container or a section codec.
#: Version 2 adds the manifest ``backend`` key and, for labels-backed
#: frameworks, replaces the ``md2d`` section with a ``labels`` section
#: (:mod:`repro.labels.serialize` codec).  Version 1 files still load.
SNAPSHOT_FORMAT_VERSION = 2

#: Every container version this reader understands.
SUPPORTED_FORMAT_VERSIONS = (1, 2)

#: Section names for a matrix-backed snapshot, in on-disk order.
SECTIONS = ("space", "md2d", "door_ids", "dpt", "objects")

#: Section layout per distance backend.
SECTIONS_BY_BACKEND = {
    "matrix": SECTIONS,
    "labels": ("space", "labels", "door_ids", "dpt", "objects"),
}

#: Codec recorded in the manifest for each section name.
_SECTION_CODECS = {
    "md2d": "npy",
    "door_ids": "npy",
    "labels": "labels",
}

_HEAD = struct.Struct(">II")  # format version, manifest length


# ----------------------------------------------------------------------
# Section codecs
# ----------------------------------------------------------------------
def _json_bytes(value: object) -> bytes:
    # Non-strict JSON: DPT dist1 is legitimately `inf` for one-way doors,
    # and Python's repr-based float encoding round-trips bit-identically.
    return json.dumps(value, sort_keys=True).encode("utf-8")


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def _npy_load(payload: bytes, section: str) -> np.ndarray:
    try:
        return np.load(io.BytesIO(payload), allow_pickle=False)
    except ValueError as exc:
        raise SnapshotCorruptError(
            f"section {section!r} is not a valid npy payload: {exc}",
            section=section,
        ) from exc


def _dpt_to_rows(dpt: DoorPartitionTable) -> List[list]:
    return [
        [r.door_id, r.partition1, r.dist1, r.partition2, r.dist2]
        for r in dpt
    ]


def _dpt_from_rows(rows: List[list]) -> DoorPartitionTable:
    records: Dict[int, DptRecord] = {}
    for door_id, partition1, dist1, partition2, dist2 in rows:
        records[int(door_id)] = DptRecord(
            int(door_id),
            None if partition1 is None else int(partition1),
            math.inf if partition1 is None else float(dist1),
            int(partition2),
            float(dist2),
        )
    return DoorPartitionTable(records)


def _objects_to_rows(store: ObjectStore) -> List[dict]:
    rows = []
    for obj in store:
        rows.append(
            {
                "id": obj.object_id,
                "position": [obj.position.x, obj.position.y, obj.position.floor],
                "payload": obj.payload,
                "partition": store.host_partition_id(obj.object_id),
            }
        )
    rows.sort(key=lambda row: row["id"])
    return rows


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def snapshot_bytes(framework: IndexFramework, wal_seq: int = 0) -> bytes:
    """Serialise a framework to the snapshot wire format (no file I/O)."""
    space = framework.space
    backend = str(getattr(framework.distance_index, "kind", "matrix"))
    section_order = SECTIONS_BY_BACKEND.get(backend)
    if section_order is None:
        raise ValueError(f"unknown distance backend {backend!r}")
    payloads: Dict[str, bytes] = {
        "space": _json_bytes(space_to_dict(space)),
        "door_ids": _npy_bytes(
            np.asarray(framework.distance_index.door_ids, dtype=np.int64)
        ),
        "dpt": _json_bytes(_dpt_to_rows(framework.dpt)),
        "objects": _json_bytes(_objects_to_rows(framework.objects)),
    }
    if backend == "labels":
        from repro.labels.serialize import labels_to_bytes

        payloads["labels"] = labels_to_bytes(framework.distance_index)
    else:
        payloads["md2d"] = _npy_bytes(framework.distance_index.md2d)
    sections = []
    for name in section_order:
        payload = payloads[name]
        sections.append(
            {
                "name": name,
                "codec": _SECTION_CODECS.get(name, "json"),
                "length": len(payload),
                "crc32": zlib.crc32(payload),
                "sha256": hashlib.sha256(payload).hexdigest(),
            }
        )
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "backend": backend,
        # Operator-facing provenance stamp only: verify/load never read
        # it and it is excluded from integrity and replay digests.
        "created_at": time.time(),  # repro: noqa REP002
        "topology_epoch": space.topology_epoch,
        "built_epoch": framework.built_epoch,
        "cell_size": framework.objects.cell_size,
        "wal_seq": wal_seq,
        "doors": framework.distance_index.size,
        "partitions": space.num_partitions,
        "objects": len(framework.objects),
        "sections": sections,
    }
    manifest_bytes = _json_bytes(manifest)
    body = io.BytesIO()
    body.write(MAGIC)
    body.write(_HEAD.pack(SNAPSHOT_FORMAT_VERSION, len(manifest_bytes)))
    body.write(manifest_bytes)
    for name in section_order:
        body.write(payloads[name])
    digest = hashlib.sha256(body.getvalue()).digest()
    body.write(digest)
    return body.getvalue()


def save_snapshot(
    framework: IndexFramework, path: PathLike, wal_seq: int = 0
) -> Path:
    """Atomically write a snapshot of ``framework`` to ``path``.

    The bytes land in a ``.tmp.<pid>`` sibling first and are published with
    ``os.replace``; a crash at any earlier point leaves ``path`` unchanged.

    Args:
        framework: the index structures to persist.
        path: destination file.
        wal_seq: sequence number of the last WAL record already reflected in
            this snapshot (recorded in the manifest so recovery replays only
            newer mutations).
    """
    path = Path(path)
    data = snapshot_bytes(framework, wal_seq=wal_seq)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    # Chaos crash point: die with the temp file complete but unpublished —
    # recovery must sweep the orphan and keep serving the previous
    # generation (see repro.runtime.crashpoints).
    crashpoints.fire("snapshot.save.before_publish")
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# Verify / load
# ----------------------------------------------------------------------
def _split_container(data: bytes, source: str) -> Tuple[dict, Dict[str, bytes]]:
    """Verify the container and return (manifest, section payloads)."""
    head_len = len(MAGIC) + _HEAD.size
    if len(data) < head_len + hashlib.sha256().digest_size:
        raise SnapshotCorruptError(
            f"{source}: file too short to be a snapshot ({len(data)} bytes)"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise SnapshotCorruptError(f"{source}: bad magic; not a snapshot file")
    body, trailer = data[:-32], data[-32:]
    if hashlib.sha256(body).digest() != trailer:
        raise SnapshotCorruptError(
            f"{source}: whole-file digest mismatch; the snapshot is damaged "
            "or was truncated"
        )
    version, manifest_len = _HEAD.unpack_from(data, len(MAGIC))
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise SnapshotCorruptError(
            f"{source}: unsupported snapshot format version {version}"
        )
    manifest_end = head_len + manifest_len
    if manifest_end > len(body):
        raise SnapshotCorruptError(f"{source}: manifest overruns the file")
    try:
        manifest = json.loads(body[head_len:manifest_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptError(
            f"{source}: manifest is not valid JSON: {exc}", section="manifest"
        ) from exc

    payloads: Dict[str, bytes] = {}
    offset = manifest_end
    for entry in manifest.get("sections", []):
        name, length = entry["name"], int(entry["length"])
        payload = body[offset : offset + length]
        if len(payload) != length:
            raise SnapshotCorruptError(
                f"{source}: section {name!r} truncated", section=name
            )
        if zlib.crc32(payload) != entry["crc32"]:
            raise SnapshotCorruptError(
                f"{source}: CRC32 mismatch in section {name!r}", section=name
            )
        if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
            raise SnapshotCorruptError(
                f"{source}: SHA-256 mismatch in section {name!r}", section=name
            )
        payloads[name] = payload
        offset += length
    if offset != len(body):
        raise SnapshotCorruptError(
            f"{source}: {len(body) - offset} trailing bytes after the last "
            "section"
        )
    backend = str(manifest.get("backend", "matrix"))
    expected = SECTIONS_BY_BACKEND.get(backend)
    if expected is None:
        raise SnapshotCorruptError(
            f"{source}: manifest names unknown backend {backend!r}",
            section="manifest",
        )
    missing = [name for name in expected if name not in payloads]
    if missing:
        raise SnapshotCorruptError(
            f"{source}: sections missing from manifest: {missing}",
            section=missing[0],
        )
    return manifest, payloads


def read_manifest(path: PathLike) -> dict:
    """Verify a snapshot file's checksums and return its manifest.

    Raises :class:`SnapshotCorruptError` on any damage; does not
    deserialise the structures (use :func:`load_snapshot` for that).
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotCorruptError(f"cannot read snapshot {path}: {exc}") from exc
    manifest, _ = _split_container(data, str(path))
    return manifest


def load_snapshot(path: PathLike) -> Tuple[IndexFramework, dict]:
    """Load a snapshot back into a working :class:`IndexFramework`.

    Every checksum is verified before deserialisation; structural
    cross-checks (square matrix, door-id agreement) run after.  Returns the
    framework and the manifest it was loaded from.

    Raises:
        SnapshotCorruptError: on any checksum, structural, or decode failure.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotCorruptError(f"cannot read snapshot {path}: {exc}") from exc
    manifest, payloads = _split_container(data, str(path))

    try:
        space = space_from_dict(json.loads(payloads["space"].decode("utf-8")))
    except Exception as exc:
        raise SnapshotCorruptError(
            f"{path}: space section does not deserialise: {exc}",
            section="space",
        ) from exc
    space.restore_topology_epoch(int(manifest["topology_epoch"]))

    backend = str(manifest.get("backend", "matrix"))
    door_ids = tuple(int(d) for d in _npy_load(payloads["door_ids"], "door_ids"))
    if backend == "labels":
        from repro.exceptions import SerializationError
        from repro.labels.serialize import labels_from_bytes

        try:
            distance_index = labels_from_bytes(payloads["labels"])
        except SerializationError as exc:
            raise SnapshotCorruptError(
                f"{path}: labels section does not decode: {exc}",
                section="labels",
            ) from exc
        if tuple(distance_index.door_ids) != door_ids:
            raise SnapshotCorruptError(
                f"{path}: labels door ids disagree with the door_ids section",
                section="labels",
            )
        if set(door_ids) != set(space.door_ids):
            raise SnapshotCorruptError(
                f"{path}: labels door ids disagree with the space model",
                section="door_ids",
            )
    else:
        matrix = _npy_load(payloads["md2d"], "md2d")
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise SnapshotCorruptError(
                f"{path}: M_d2d is not square: {matrix.shape}", section="md2d"
            )
        if matrix.shape[0] != len(door_ids):
            raise SnapshotCorruptError(
                f"{path}: door id count {len(door_ids)} does not match matrix "
                f"size {matrix.shape[0]}",
                section="door_ids",
            )
        if set(door_ids) != set(space.door_ids):
            raise SnapshotCorruptError(
                f"{path}: M_d2d door ids disagree with the space model",
                section="door_ids",
            )
        distance_index = DistanceIndexMatrix(DoorDistanceMatrix(matrix, door_ids))

    try:
        dpt = _dpt_from_rows(json.loads(payloads["dpt"].decode("utf-8")))
    except SnapshotCorruptError:
        raise
    except Exception as exc:
        raise SnapshotCorruptError(
            f"{path}: DPT section does not deserialise: {exc}", section="dpt"
        ) from exc

    rtree = PartitionRTree(space).install()
    store = ObjectStore(space, float(manifest["cell_size"]))
    try:
        for row in json.loads(payloads["objects"].decode("utf-8")):
            x, y, floor = row["position"]
            store.add(
                IndoorObject(
                    int(row["id"]),
                    Point(float(x), float(y), int(floor)),
                    row.get("payload", ""),
                ),
                partition_id=int(row["partition"]),
            )
    except SnapshotCorruptError:
        raise
    except Exception as exc:
        raise SnapshotCorruptError(
            f"{path}: objects section does not deserialise: {exc}",
            section="objects",
        ) from exc

    framework = IndexFramework(space, distance_index, dpt, rtree, store)
    framework.built_epoch = int(manifest["built_epoch"])
    return framework, manifest
