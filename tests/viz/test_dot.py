"""Tests for the Graphviz DOT export."""

import re

import pytest

from repro.model.figure1 import build_figure1
from repro.viz import to_dot


@pytest.fixture(scope="module")
def dot():
    return to_dot(build_figure1())


class TestToDot:
    def test_is_a_digraph(self, dot):
        assert dot.startswith("digraph indoor {")
        assert dot.rstrip().endswith("}")

    def test_one_node_per_partition(self, dot):
        space = build_figure1()
        nodes = re.findall(r"^\s*p(\d+) \[", dot, re.MULTILINE)
        assert sorted(int(n) for n in nodes) == sorted(space.partition_ids)

    def test_one_edge_per_door(self, dot):
        space = build_figure1()
        edges = re.findall(r"->", dot)
        assert len(edges) == space.num_doors

    def test_one_way_doors_are_marked(self, dot):
        one_way_edges = [
            line for line in dot.splitlines() if "color=orangered" in line
        ]
        assert len(one_way_edges) == 2  # d12 and d15
        assert not any("dir=both" in line for line in one_way_edges)

    def test_bidirectional_doors_use_dir_both(self, dot):
        both = [line for line in dot.splitlines() if "dir=both" in line]
        assert len(both) == 9

    def test_labels_are_quoted(self, dot):
        assert 'label="d15"' in dot
        assert 'label="room 13"' in dot

    def test_shapes_follow_kinds(self, dot):
        assert "shape=doubleoctagon" in dot  # outdoor
        assert "shape=parallelogram" in dot  # staircase
        assert "shape=ellipse" in dot  # hallway
        assert "shape=box" in dot  # rooms

    def test_custom_graph_name(self):
        assert to_dot(build_figure1(), name="campus").startswith(
            "digraph campus {"
        )
