"""Property-based round-trip tests for persistence on random plans."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.distance import pt2pt_distance_refined
from repro.io import space_from_dict, space_to_dict
from tests.strategies import plan_with_points

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestRoundTripProperties:
    @RELAXED
    @given(plan_with_points(count=2, one_way_probability=0.4))
    def test_distances_survive_serialisation(self, data):
        plan, (a, b) = data
        restored = space_from_dict(space_to_dict(plan.space))
        original = pt2pt_distance_refined(plan.space, a, b)
        after = pt2pt_distance_refined(restored, a, b)
        if original == float("inf"):
            assert after == float("inf")
        else:
            assert after == pytest.approx(original)

    @RELAXED
    @given(plan_with_points(count=0, one_way_probability=0.4))
    def test_topology_survives_serialisation(self, data):
        plan, _ = data
        space = plan.space
        restored = space_from_dict(space_to_dict(space))
        assert restored.partition_ids == space.partition_ids
        assert restored.door_ids == space.door_ids
        for door_id in space.door_ids:
            assert restored.topology.d2p(door_id) == space.topology.d2p(door_id)

    @RELAXED
    @given(plan_with_points(count=0))
    def test_double_round_trip_is_stable(self, data):
        plan, _ = data
        once = space_to_dict(space_from_dict(space_to_dict(plan.space)))
        assert once == space_to_dict(plan.space)
