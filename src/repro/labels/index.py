""":class:`LabeledDistanceIndex` — the 2-hop-label distance backend.

Answers the same :class:`repro.index.backend.DistanceBackend` surface as
the dense :class:`repro.index.DistanceIndexMatrix`, bit-identically (see
:mod:`repro.labels.builder` for the canonical-correction mechanism), while
storing O(total label entries) instead of O(N²) floats.

A query ``d(u, v)`` is::

    min over hubs h in L_out(u) ∩ L_in(v) of d(u,h) + d(h,v)
    → overridden by the sparse canonical-correction table
    → min'ed against the incremental-repair patch hubs, if any

Nearest-first scans (``doors_by_distance``) materialise one full distance
row per source door — an O(label entries touching u) vectorised join —
and keep recently used rows in a small locked LRU so repeated scans from
the same doors (the common query pattern: algorithms expand from the few
doors of the host partition) stay cheap.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import UnknownEntityError
from repro.labels.builder import (
    HubLabeling,
    build_labeling,
    invert_by_hub,
    materialize_row,
)
from repro.labels.hierarchy import VertexHierarchy, build_hierarchy

#: Distance rows kept resident per index (each row is N floats plus its
#: stable argsort order, so the cache is bounded at ``2 × 16N × this``).
ROW_CACHE_LIMIT = 64


@dataclass(frozen=True)
class LabelPatches:
    """Incremental-repair overlay: canonical rows through the patch hubs.

    ``door_ids`` is the **current** full ascending door set (a superset of
    the label-covered base set when doors were added).  ``fwd[k]`` holds
    d(patch_k, ·) and ``bwd[k]`` holds d(·, patch_k), both computed on the
    current graph over current indices.
    """

    door_ids: Tuple[int, ...]
    patch_ids: Tuple[int, ...]
    fwd: np.ndarray
    bwd: np.ndarray

    def memory_bytes(self) -> int:
        """Bytes of the dense patch rows."""
        return int(self.fwd.nbytes + self.bwd.nbytes)


class LabeledDistanceIndex:
    """2-hop labels + hierarchy + corrections + repair patches.

    Construct with :meth:`build` (from a distance-aware graph) or directly
    from previously serialized parts (:mod:`repro.labels.serialize`).
    """

    #: Backend name for :class:`repro.index.backend.DistanceBackend`.
    kind = "labels"

    def __init__(
        self,
        door_ids: Sequence[int],
        labeling: HubLabeling,
        hierarchy: VertexHierarchy,
        edges: Sequence[Tuple[int, int, float]],
        patches: Optional[LabelPatches] = None,
    ) -> None:
        self._base_door_ids: Tuple[int, ...] = tuple(door_ids)
        self._labeling = labeling
        self._hierarchy = hierarchy
        #: Door graph at label-build time, by door id — the baseline
        #: incremental repair diffs topology mutations against.
        self._base_edges: Tuple[Tuple[int, int, float], ...] = tuple(
            (int(a), int(b), float(w)) for a, b, w in edges
        )
        self._patches = patches

        self._door_ids: Tuple[int, ...] = (
            patches.door_ids if patches is not None else self._base_door_ids
        )
        self._index_of: Dict[int, int] = {
            door_id: i for i, door_id in enumerate(self._door_ids)
        }
        base_n = len(self._base_door_ids)
        #: base matrix index -> current matrix index (identity when
        #: unpatched; door ids ascending in both, so this is a searchsorted).
        if patches is None:
            self._base_pos = np.arange(base_n, dtype=np.int64)
        else:
            current = np.asarray(self._door_ids, dtype=np.int64)
            self._base_pos = np.searchsorted(
                current, np.asarray(self._base_door_ids, dtype=np.int64)
            ).astype(np.int64)
        #: current matrix index -> base index, -1 for doors newer than the
        #: labeling.
        self._current_to_base = np.full(len(self._door_ids), -1, dtype=np.int64)
        self._current_to_base[self._base_pos] = np.arange(
            base_n, dtype=np.int64
        )

        self._inv_in = invert_by_hub(
            base_n, labeling.in_indptr, labeling.in_hubs, labeling.in_dists
        )
        #: (src, dst) base-index pair -> canonical distance override.
        self._corrections: Dict[Tuple[int, int], float] = {
            (int(s), int(d)): float(v)
            for s, d, v in zip(
                labeling.corr_src, labeling.corr_dst, labeling.corr_val
            )
        }
        #: src base-index -> (dst base indices, canonical values), for row
        #: materialisation.
        self._corr_by_src: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        if len(labeling.corr_src):
            order = np.argsort(labeling.corr_src, kind="stable")
            srcs = labeling.corr_src[order]
            dsts = labeling.corr_dst[order]
            vals = labeling.corr_val[order]
            boundaries = np.flatnonzero(np.diff(srcs)) + 1
            for chunk_d, chunk_v, src in zip(
                np.split(dsts, boundaries),
                np.split(vals, boundaries),
                srcs[np.concatenate(([0], boundaries))],
            ):
                self._corr_by_src[int(src)] = (chunk_d, chunk_v)

        self._lock = threading.Lock()
        self._row_cache: "OrderedDict[int, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph) -> "LabeledDistanceIndex":
        """Build labels for a :class:`DistanceAwareGraph` (same edge
        extraction as the dense matrix builder)."""
        from repro.distance.matrix import _door_graph_edges

        door_ids = graph.space.topology.door_ids
        edges = _door_graph_edges(graph)
        labeling, hierarchy = build_labeling(door_ids, edges)
        return cls(door_ids, labeling, hierarchy, edges)

    def with_patches(self, patches: Optional[LabelPatches]) -> "LabeledDistanceIndex":
        """A sibling index sharing this one's labels but carrying a
        different repair overlay (used by :mod:`repro.labels.repair`)."""
        return LabeledDistanceIndex(
            self._base_door_ids,
            self._labeling,
            self._hierarchy,
            self._base_edges,
            patches=patches,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def door_ids(self) -> Tuple[int, ...]:
        """Ascending door ids (including repair-added doors)."""
        return self._door_ids

    @property
    def size(self) -> int:
        """Number of doors N."""
        return len(self._door_ids)

    @property
    def labeling(self) -> HubLabeling:
        return self._labeling

    @property
    def hierarchy(self) -> VertexHierarchy:
        return self._hierarchy

    @property
    def base_edges(self) -> Tuple[Tuple[int, int, float], ...]:
        return self._base_edges

    @property
    def patches(self) -> Optional[LabelPatches]:
        return self._patches

    @property
    def patch_count(self) -> int:
        return 0 if self._patches is None else len(self._patches.patch_ids)

    # ------------------------------------------------------------------
    # DistanceBackend surface
    # ------------------------------------------------------------------
    def distance(self, from_door: int, to_door: int) -> float:
        """Minimum walking distance by door id (bit-identical to M_d2d)."""
        try:
            i = self._index_of[from_door]
            j = self._index_of[to_door]
        except KeyError as exc:
            raise UnknownEntityError("door", exc.args[0]) from None
        if i == j:
            return 0.0
        best = math.inf
        bi = int(self._current_to_base[i])
        bj = int(self._current_to_base[j])
        if bi >= 0 and bj >= 0:
            correction = self._corrections.get((bi, bj))
            best = (
                correction
                if correction is not None
                else self._pair_query(bi, bj)
            )
        if self._patches is not None:
            patch = float(
                np.min(self._patches.bwd[:, i] + self._patches.fwd[:, j])
            )
            best = min(best, patch)
        return float(best)

    def _pair_query(self, bi: int, bj: int) -> float:
        """Raw 2-hop intersection d(base_i, base_j), pre-correction."""
        lab = self._labeling
        hubs_u = lab.out_hubs[lab.out_indptr[bi] : lab.out_indptr[bi + 1]]
        hubs_v = lab.in_hubs[lab.in_indptr[bj] : lab.in_indptr[bj + 1]]
        common, iu, iv = np.intersect1d(
            hubs_u, hubs_v, assume_unique=True, return_indices=True
        )
        if not len(common):
            return math.inf
        d_u = lab.out_dists[lab.out_indptr[bi] : lab.out_indptr[bi + 1]][iu]
        d_v = lab.in_dists[lab.in_indptr[bj] : lab.in_indptr[bj + 1]][iv]
        return float(np.min(d_u + d_v))

    def doors_by_distance(
        self, from_door: int, max_distance: Optional[float] = None
    ) -> Iterator[Tuple[int, float]]:
        """Yield ``(door_id, distance)`` nearest-first — same ordering as
        the dense M_idx scan (stable argsort of an identical row)."""
        row, order = self._row(self._resolve(from_door))
        ids = self._door_ids
        for j in order:
            dist = float(row[j])
            if math.isinf(dist):
                break
            if max_distance is not None and dist > max_distance:
                break
            yield ids[j], dist

    def doors_unsorted(self, from_door: int) -> Iterator[Tuple[int, float]]:
        """Yield reachable ``(door_id, distance)`` in door-id order."""
        row, _ = self._row(self._resolve(from_door))
        for j, door_id in enumerate(self._door_ids):
            dist = float(row[j])
            if math.isinf(dist):
                continue
            yield door_id, dist

    def nearest_doors(
        self, from_door: int, k: int
    ) -> Tuple[Tuple[int, float], ...]:
        """The k nearest doors, nearest first."""
        result = []
        for door_id, dist in self.doors_by_distance(from_door):
            result.append((door_id, dist))
            if len(result) == k:
                break
        return tuple(result)

    def min_distance_between(
        self, from_doors: Sequence[int], to_doors: Sequence[int]
    ) -> float:
        """Set-to-set lower bound (equals the dense submatrix minimum)."""
        try:
            rows = [self._index_of[d] for d in from_doors]
            cols = [self._index_of[d] for d in to_doors]
        except KeyError as exc:
            raise UnknownEntityError("door", exc.args[0]) from None
        if not rows or not cols:
            return math.inf
        col_idx = np.asarray(cols, dtype=np.int64)
        best = math.inf
        for i in rows:
            row, _ = self._row(i)
            best = min(best, float(row[col_idx].min()))
        return best

    # ------------------------------------------------------------------
    # Row materialisation + cache
    # ------------------------------------------------------------------
    def _resolve(self, door_id: int) -> int:
        try:
            return self._index_of[door_id]
        except KeyError:
            raise UnknownEntityError("door", door_id) from None

    def _row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """The full (distances, stable scan order) pair for current index
        ``i``, through the LRU."""
        with self._lock:
            cached = self._row_cache.get(i)
            if cached is not None:
                self._row_cache.move_to_end(i)
                return cached
        # Materialise outside the lock: rows are deterministic, so a racing
        # duplicate computation is wasted work, never wrong data.
        row = self._materialize(i)
        order = np.argsort(row, kind="stable")
        entry = (row, order)
        with self._lock:
            self._row_cache[i] = entry
            self._row_cache.move_to_end(i)
            while len(self._row_cache) > ROW_CACHE_LIMIT:
                self._row_cache.popitem(last=False)
        return entry

    def _materialize(self, i: int) -> np.ndarray:
        n = len(self._door_ids)
        row = np.full(n, np.inf)
        bi = int(self._current_to_base[i])
        if bi >= 0:
            lab = self._labeling
            base_row = materialize_row(
                bi,
                len(self._base_door_ids),
                lab.out_indptr,
                lab.out_hubs,
                lab.out_dists,
                *self._inv_in,
            )
            corr = self._corr_by_src.get(bi)
            if corr is not None:
                base_row[corr[0]] = corr[1]
            row[self._base_pos] = base_row
        row[i] = 0.0
        if self._patches is not None:
            d_to_patch = self._patches.bwd[:, i]
            for k in range(len(self._patches.patch_ids)):
                row = np.minimum(row, d_to_patch[k] + self._patches.fwd[k])
        return row

    def drop_row_cache(self) -> None:
        """Discard every cached distance row.

        Fault injection mutates the label arrays in place; cached rows
        materialised before the mutation would otherwise keep serving the
        pre-fault (or pre-undo) values.
        """
        with self._lock:
            self._row_cache.clear()

    # ------------------------------------------------------------------
    # Accounting + integrity
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Resident bytes: labels + corrections + hierarchy + base edges +
        patches + the current row cache."""
        report = self.memory_report()
        return int(sum(v for k, v in report.items() if k.endswith("_bytes")))

    def memory_report(self) -> dict:
        """Per-component byte accounting."""
        lab = self._labeling
        label_bytes = int(
            lab.out_indptr.nbytes
            + lab.out_hubs.nbytes
            + lab.out_dists.nbytes
            + lab.in_indptr.nbytes
            + lab.in_hubs.nbytes
            + lab.in_dists.nbytes
            + sum(a.nbytes for a in self._inv_in)
        )
        correction_bytes = int(
            lab.corr_src.nbytes + lab.corr_dst.nbytes + lab.corr_val.nbytes
        )
        hierarchy_bytes = int(
            self._hierarchy.levels.nbytes + self._hierarchy.order.nbytes
        )
        edge_bytes = 24 * len(self._base_edges)
        patch_bytes = (
            0 if self._patches is None else self._patches.memory_bytes()
        )
        with self._lock:
            cache_bytes = int(
                sum(
                    row.nbytes + order.nbytes
                    for row, order in self._row_cache.values()
                )
            )
        return {
            "labels_bytes": label_bytes,
            "corrections_bytes": correction_bytes,
            "hierarchy_bytes": hierarchy_bytes,
            "edges_bytes": edge_bytes,
            "patches_bytes": patch_bytes,
            "row_cache_bytes": cache_bytes,
            "label_entries": self._labeling.entry_count,
            "corrections": int(len(lab.corr_src)),
            "patch_hubs": self.patch_count,
        }

    def self_check(self) -> List[str]:
        """Structural invariants, as human-readable issue strings.

        Complements :func:`repro.runtime.check_index_integrity`'s dense
        checks: label CSR well-formedness, finite non-negative distances,
        zero self-distance on a deterministic door sample, door-id order.
        """
        issues: List[str] = []
        lab = self._labeling
        n = len(self._base_door_ids)
        for name, indptr, hubs, dists in (
            ("out", lab.out_indptr, lab.out_hubs, lab.out_dists),
            ("in", lab.in_indptr, lab.in_hubs, lab.in_dists),
        ):
            if len(indptr) != n + 1 or (np.diff(indptr) < 0).any():
                issues.append(f"L_{name} indptr is not monotone over {n} doors")
                continue
            if int(indptr[-1]) != len(hubs) or len(hubs) != len(dists):
                issues.append(f"L_{name} array lengths disagree with indptr")
                continue
            if np.isnan(dists).any():
                issues.append(f"L_{name} contains NaN distances")
            if (dists < 0).any():
                issues.append(f"L_{name} contains negative distances")
            if len(hubs) and (
                (hubs < 0).any() or (hubs >= n).any()
            ):
                issues.append(f"L_{name} references out-of-range hubs")
        if np.isnan(lab.corr_val).any():
            issues.append("correction table contains NaN")
        if len(lab.corr_val) and (lab.corr_val < 0).any():
            issues.append("correction table contains negative distances")
        if self._patches is not None:
            if np.isnan(self._patches.fwd).any() or np.isnan(
                self._patches.bwd
            ).any():
                issues.append("patch rows contain NaN")
        ids = np.asarray(self._door_ids, dtype=np.int64)
        if len(ids) > 1 and (np.diff(ids) <= 0).any():
            issues.append("door ids are not strictly ascending")
        if not issues:
            for door_id in self._door_ids[: min(64, len(self._door_ids))]:
                if self.distance(door_id, door_id) != 0.0:
                    issues.append(
                        f"self-distance of door {door_id} is nonzero"
                    )
                    break
        return issues
