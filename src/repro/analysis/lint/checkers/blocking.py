"""REP007 — no blocking primitives while a lock is held.

A held lock turns any blocking call into a system-wide stall: a pipe
``send`` to a wedged worker, a ``Thread.join``, a ``time.sleep``, a
blocking ``queue.get``/``put``, a ``shared_memory`` attach, a
``future.result`` wait, or spawning a worker process all park the
holding thread for unbounded time, and every other thread then queues
behind the lock.  The sharded tier's send-combining path and the
reconfig prepare/commit rounds are exactly where that bites — a slow
worker must degrade *that worker*, not freeze the supervisor.

The rule is interprocedural: a function's *blocking summary* (which
blocking kinds it can reach through any resolved call chain) comes from
:mod:`repro.analysis.lint.callgraph`.  A finding fires at the precise
site inside the lock-holding function — either a blocking primitive
directly under a syntactic ``with <lock>:``, or a call (under a lock)
to a callee whose summary says a blocking primitive is reachable — so
an inline ``# repro: noqa REP007`` lands exactly where the decision to
block-under-lock is made, with the justification next to it.

Exemption built into the classifier: ``cv.wait()`` while ``cv`` itself
is the held lock *releases* the lock and is never flagged; ``Event.wait``
under some *other* lock still is.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.lint.callgraph import (
    build_graph,
    lock_label,
    witness_chain,
)
from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import Checker, register

_SCOPE_PREFIXES = (
    "repro.serve",
    "repro.persist",
    "repro.shard",
    "repro.labels",
    "repro.overload",
    "repro.runtime",
)

_KIND_TEXT = {
    "sleep": "time.sleep",
    "pipe-send": "a pipe send",
    "pipe-recv": "a pipe recv",
    "join": "a thread/process join",
    "wait": "an event/condition wait",
    "queue": "a blocking queue get/put",
    "shm-attach": "a shared_memory attach",
    "subprocess": "a subprocess wait",
    "future-wait": "a future.result wait",
    "process-spawn": "a worker-process spawn",
}


@register
class BlockingUnderLockChecker(Checker):
    rule_id = "REP007"
    summary = "no blocking primitive may be reached while a lock is held"

    def check(
        self, module: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        if not module.module_name.startswith(_SCOPE_PREFIXES):
            return []
        graph = build_graph(project)
        findings: List[Finding] = []

        for key in sorted(graph.functions):
            info = graph.functions[key]
            if info.relpath != module.relpath:
                continue

            for block in info.blocks:
                if not block.held:
                    continue
                held = ", ".join(lock_label(lock) for lock in block.held)
                kind_text = _KIND_TEXT.get(block.kind, block.kind)
                findings.append(
                    self.finding(
                        module,
                        block.line,
                        block.col,
                        f"{info.name}() performs {kind_text} "
                        f"({block.text}) while holding {held}",
                        hint=(
                            "move the blocking call outside the lock, or "
                            "collect work under the lock and perform it "
                            "after release"
                        ),
                    )
                )

            for call in info.calls:
                if not call.held:
                    continue
                held = ", ".join(lock_label(lock) for lock in call.held)
                reported: set = set()
                for callee in call.callees:
                    for kind, (path, line) in sorted(
                        graph.block_paths.get(callee, {}).items()
                    ):
                        if kind in reported:
                            continue
                        reported.add(kind)
                        kind_text = _KIND_TEXT.get(kind, kind)
                        chain = witness_chain((key,) + path)
                        findings.append(
                            self.finding(
                                module,
                                call.line,
                                call.col,
                                f"{info.name}() calls {call.text}() while "
                                f"holding {held}, and that reaches "
                                f"{kind_text} (chain: {chain}, primitive "
                                f"at line {line} of the final callee)",
                                hint=(
                                    "hoist the call out of the locked "
                                    "region, or split the callee so its "
                                    "blocking half runs lock-free"
                                ),
                            )
                        )
        return findings
