"""Shared fixtures for query-processing tests."""

import random

import pytest

from repro.geometry import Point
from repro.index import IndexFramework, IndoorObject
from repro.model.figure1 import build_figure1


def random_point_in(space, rng, partition_ids=None):
    """A uniformly random point inside a random partition of the space."""
    if partition_ids is None:
        partition_ids = list(space.partition_ids)
    while True:
        partition = space.partition(rng.choice(partition_ids))
        box = partition.polygon.bounding_box
        point = Point(
            rng.uniform(box.min_x, box.max_x),
            rng.uniform(box.min_y, box.max_y),
            partition.floor,
        )
        if partition.contains(point):
            host = space.get_host_partition(point)
            if host is not None and host.partition_id == partition.partition_id:
                return point


@pytest.fixture(scope="module")
def populated_figure1():
    """Figure-1 space + 60 randomly placed objects, fully indexed."""
    space = build_figure1()
    rng = random.Random(2024)
    indoor_ids = [p for p in space.partition_ids if p != 0]
    objects = [
        IndoorObject(i, random_point_in(space, rng, indoor_ids))
        for i in range(60)
    ]
    return IndexFramework.build(space, objects)
