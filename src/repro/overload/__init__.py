"""Adaptive overload control for the serving tiers.

Three cooperating mechanisms keep the service answering — degraded but
never wrong — when offered load exceeds capacity:

* :class:`AdaptiveConcurrencyLimiter` — an AIMD admission limit that
  tracks measured p99 against a latency SLO, replacing the fixed queue
  bound and shedding down the QualityLevel ladder when breached.
* :class:`RetryBudget` — a per-service token bucket (successes refill
  ~10%) that gates rebuild retries, router re-scatters, and hedges so
  retry storms cannot amplify an outage.
* :class:`HedgePolicy` — p95-derived delays for re-issuing straggling
  shard probes, first answer wins, merges bit-identical.

See ``docs/serving.md`` ("Overload control") for how the pieces thread
through :class:`~repro.serve.service.QueryService` and
:class:`~repro.shard.service.ShardedQueryService`.
"""

from repro.overload.budget import RetryBudget, run_with_budget
from repro.overload.hedge import HedgePolicy
from repro.overload.introspect import OVERLOAD_COUNTERS, overload_snapshot
from repro.overload.limiter import AdaptiveConcurrencyLimiter

__all__ = [
    "AdaptiveConcurrencyLimiter",
    "HedgePolicy",
    "OVERLOAD_COUNTERS",
    "RetryBudget",
    "overload_snapshot",
    "run_with_budget",
]
