"""serve-bench plumbing: workload determinism, exactness, JSON output."""

import json

from repro.bench.serve import (
    SERVE_PAPER,
    SERVE_QUICK,
    ServeScale,
    build_serve_workload,
    current_serve_scale,
    measure_serve,
    render_serve_summary,
)
from repro.cli import main as repro_main
from repro.synthetic import BuildingConfig, generate_building

TINY = ServeScale(
    name="tiny",
    floors=2,
    objects=60,
    distinct_positions=6,
    total_requests=36,
    workers=2,
    max_batch=8,
    knn_k=3,
    range_radius=10.0,
)


class TestScaleSelection:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_serve_scale() is SERVE_QUICK

    def test_paper_scale_selected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert current_serve_scale() is SERVE_PAPER


class TestWorkload:
    def test_deterministic_per_seed(self):
        building = generate_building(BuildingConfig(floors=TINY.floors))
        a = build_serve_workload(building, TINY, seed=3)
        b = build_serve_workload(building, TINY, seed=3)
        assert [r.cache_key() for r in a] == [r.cache_key() for r in b]

    def test_length_and_repetition(self):
        building = generate_building(BuildingConfig(floors=TINY.floors))
        requests = build_serve_workload(building, TINY, seed=0)
        assert len(requests) == TINY.total_requests
        # Zipf-ish: strictly fewer distinct keys than requests.
        assert len({r.cache_key() for r in requests}) < len(requests)


class TestMeasure:
    def test_exactness_and_result_shape(self):
        result = measure_serve(TINY, seed=1)
        assert result["mismatches"] == 0
        assert result["requests"] == TINY.total_requests
        assert result["naive"]["qps"] > 0
        assert result["service"]["qps"] > 0
        assert 0.0 <= result["cache"]["hit_rate"] <= 1.0
        assert "serve.latency_ms" in result["latency"]
        summary = render_serve_summary(result)
        assert "speedup" in summary and "mismatches: 0" in summary

    def test_cli_writes_json(self, tmp_path, monkeypatch, capsys):
        import repro.bench.serve as serve_bench

        monkeypatch.setattr(serve_bench, "current_serve_scale", lambda: TINY)
        target = tmp_path / "bench.json"
        assert repro_main(["serve-bench", "--json", str(target), "--seed", "2"]) == 0
        payload = json.loads(target.read_text())
        assert payload["mismatches"] == 0
        assert payload["scale"] == "tiny"
        out = capsys.readouterr().out
        assert "serve-bench" in out
