"""REP004 — exception hygiene.

The failure taxonomy built in PRs 1–3 (``DeadlineExceededError``,
``CorruptIndexError``, ``SnapshotCorruptError``, ...) only pays off if
broad handlers never swallow those signals silently.  A bare ``except:``
or ``except Exception:`` / ``except BaseException:`` handler must do at
least one of:

* re-raise (``raise`` anywhere in the handler body),
* bind the exception (``as exc``) and actually *use* it — store it,
  classify it, log it, wrap it,
* call something observably (logger methods, metrics ``increment`` /
  ``observe`` / ``record_failure``, ``classify_exception``, ...).

Handlers that do none of the above turn corruption and deadline
overruns into silent no-ops; each one found in the tree was a real
latent bug or needs an explicit suppression explaining why swallowing
is correct there.

Narrow handlers (``except ReproError:``, ``except OSError:``) are out
of scope — catching a specific type is already a classification
decision.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import Checker, register

_BROAD_TYPES = {"Exception", "BaseException"}

#: Call names (function or method) that make a swallow observable.
_OBSERVABILITY_CALLS = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
    "print",
    "increment",
    "observe",
    "record",
    "record_failure",
    "record_heal_failure",
    "set_exception",
    "classify",
    "classify_exception",
    "add_note",
    "append",  # accumulating errors for later reporting
}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD_TYPES
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD_TYPES
    if isinstance(node, ast.Tuple):
        return any(
            _is_broad(ast.ExceptHandler(type=element, name=None, body=[]))
            for element in node.elts
        )
    return False


def _handler_is_hygienic(handler: ast.ExceptHandler) -> bool:
    bound = handler.name
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if bound and isinstance(node, ast.Name) and node.id == bound:
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _OBSERVABILITY_CALLS:
                return True
    return False


@register
class ExceptionHygieneChecker(Checker):
    rule_id = "REP004"
    summary = "broad except handlers must re-raise, classify, or observe"

    def check(
        self, module: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        if not module.module_name.startswith("repro."):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _handler_is_hygienic(node):
                continue
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
            )
            findings.append(
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{caught} swallows the exception without re-raise, "
                    "classification, or any observable side effect",
                    hint=(
                        "narrow the exception type, re-raise, bind it "
                        "('as exc') and record it, or emit a metric/log "
                        "so the swallow is visible"
                    ),
                )
            )
        return findings
