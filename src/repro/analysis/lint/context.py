"""Parse-once contexts the checkers share.

A :class:`ModuleContext` is one parsed source file: its AST, raw lines,
dotted module name, and suppression table.  A :class:`ProjectContext` is
the whole collection plus project-level metadata (root directory,
``pyproject.toml`` path) — the substrate for cross-file rules like
REP003's deadline-signature table and REP005's version coherence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.lint.suppressions import SuppressionTable


@dataclass
class ModuleContext:
    """One parsed Python source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str]
    module_name: str
    suppressions: SuppressionTable

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleContext":
        """Read and parse ``path``; raises ``SyntaxError`` on broken code."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        relpath = _relative_to(path, root)
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            module_name=_module_name(relpath),
            suppressions=SuppressionTable.from_source(source),
        )

    def line_text(self, line: int) -> str:
        """The stripped text of 1-based ``line`` ("" when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"


@dataclass
class ProjectContext:
    """Every parsed module plus project-level metadata."""

    root: Path
    modules: List[ModuleContext] = field(default_factory=list)
    unparsable: Dict[str, str] = field(default_factory=dict)

    @property
    def pyproject_path(self) -> Path:
        return self.root / "pyproject.toml"

    def module(self, relpath: str) -> Optional[ModuleContext]:
        """The parsed module at root-relative ``relpath``, if any."""
        for context in self.modules:
            if context.relpath == relpath:
                return context
        return None


def _relative_to(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _module_name(relpath: str) -> str:
    """``src/repro/serve/cache.py`` -> ``repro.serve.cache``."""
    parts = list(Path(relpath).parts)
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf == "__init__.py":
        parts = parts[:-1]
    elif leaf.endswith(".py"):
        parts[-1] = leaf[: -len(".py")]
    return ".".join(parts)
