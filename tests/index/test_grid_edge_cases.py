"""Grid index edge cases: ties, co-located objects, cell boundaries."""

import pytest

from repro.geometry import Point, rectangle
from repro.index import PartitionGrid
from repro.model import Partition


@pytest.fixture
def grid():
    return PartitionGrid(Partition(1, rectangle(0, 0, 20, 10)), cell_size=2.0)


class TestTies:
    def test_colocated_objects_both_found(self, grid):
        grid.insert(1, Point(5, 5))
        grid.insert(2, Point(5, 5))
        results = dict(grid.range_search(Point(5, 5), 0.0))
        assert results == {1: 0.0, 2: 0.0}

    def test_nn_with_exact_ties_returns_k(self, grid):
        # Four objects at identical distance from the anchor.
        for object_id, position in enumerate(
            [Point(5, 7), Point(5, 3), Point(3, 5), Point(7, 5)], start=1
        ):
            grid.insert(object_id, position)
        results = grid.nn_search(Point(5, 5), k=2)
        assert len(results) == 2
        assert all(d == pytest.approx(2.0) for _, d in results)

    def test_equidistant_objects_in_range(self, grid):
        grid.insert(1, Point(5, 7))
        grid.insert(2, Point(5, 3))
        results = dict(grid.range_search(Point(5, 5), 2.0))
        assert set(results) == {1, 2}


class TestCellBoundaries:
    def test_object_on_cell_corner(self, grid):
        # (2, 2) lies exactly on a grid line intersection.
        grid.insert(1, Point(2, 2))
        assert grid.range_search(Point(2, 2), 0.0) == [(1, 0.0)]
        assert grid.nn_search(Point(2.5, 2.5), k=1)[0][0] == 1

    def test_object_on_partition_edge(self, grid):
        grid.insert(1, Point(20, 10))  # far corner of the partition
        results = grid.range_search(Point(19, 9), 2.0)
        assert [oid for oid, _ in results] == [1]

    def test_anchor_outside_bucket_partition(self, grid):
        # Query algorithms anchor searches at door midpoints, which lie on
        # the partition boundary; an anchor marginally outside the bbox must
        # still work via the cell min-distance pruning.
        grid.insert(1, Point(1, 1))
        results = grid.range_search(Point(0, 0), 2.0)
        assert [oid for oid, _ in results] == [1]

    def test_move_between_cells_preserves_search(self, grid):
        grid.insert(1, Point(1, 1))
        grid.remove(1)
        grid.insert(1, Point(19, 9))
        assert grid.range_search(Point(1, 1), 3.0) == []
        assert [oid for oid, _ in grid.range_search(Point(19, 9), 1.0)] == [1]


class TestSmallCellSizes:
    def test_many_objects_one_tiny_cell_grid(self):
        room = Partition(1, rectangle(0, 0, 4, 4))
        grid = PartitionGrid(room, cell_size=0.1)
        for i in range(50):
            grid.insert(i, Point(0.05 + (i % 10) * 0.4, 0.05 + (i // 10) * 0.4))
        assert len(grid) == 50
        everything = grid.range_search(Point(2, 2), 10.0)
        assert len(everything) == 50

    def test_cell_size_larger_than_partition(self):
        room = Partition(1, rectangle(0, 0, 4, 4))
        grid = PartitionGrid(room, cell_size=100.0)
        grid.insert(1, Point(1, 1))
        grid.insert(2, Point(3, 3))
        assert grid.occupied_cells == 1
        assert len(grid.nn_search(Point(0, 0), k=5)) == 2
