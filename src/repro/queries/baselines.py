"""Brute-force query oracles.

These evaluate the exact position-to-position distance (Algorithm 3) from
the query position to *every* object — no indexes, no pruning.  They are the
ground truth the engine's results are verified against in tests, and the
"how bad would it be with no infrastructure at all" datapoint in examples.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.distance.point_to_point import pt2pt_distance_refined
from repro.exceptions import QueryError
from repro.geometry import Point
from repro.index.objects import ObjectStore
from repro.model.builder import IndoorSpace


def brute_force_range(
    space: IndoorSpace, store: ObjectStore, position: Point, radius: float
) -> List[int]:
    """Exact range query by evaluating pt2pt distance per object."""
    if radius < 0:
        raise QueryError(f"range radius must be non-negative, got {radius}")
    results = []
    for obj in store:
        distance = pt2pt_distance_refined(space, position, obj.position)
        if distance <= radius + 1e-9:
            results.append(obj.object_id)
    return sorted(results)


def brute_force_knn(
    space: IndoorSpace, store: ObjectStore, position: Point, k: int
) -> List[Tuple[int, float]]:
    """Exact kNN by evaluating pt2pt distance per object."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    scored = []
    for obj in store:
        distance = pt2pt_distance_refined(space, position, obj.position)
        if not math.isinf(distance):
            scored.append((distance, obj.object_id))
    scored.sort()
    return [(oid, dist) for dist, oid in scored[:k]]
