"""Flash-crowd workload generator tests (rush-hour ramps, zipfian
hotspots, tracking bursts)."""

from collections import Counter

import pytest

from repro.synthetic import (
    BuildingConfig,
    FlashCrowdConfig,
    flash_crowd_ops,
    flash_crowd_workload,
    generate_building,
)


@pytest.fixture(scope="module")
def building():
    return generate_building(BuildingConfig(floors=2, rooms_per_floor=6))


@pytest.fixture(scope="module")
def workload(building):
    config = FlashCrowdConfig(count=600)
    return flash_crowd_workload(building.space, config, seed=11)


class TestRateMultiplier:
    def test_trapezoid_shape(self):
        config = FlashCrowdConfig(count=100, peak_multiplier=5.0)
        assert config.rate_multiplier(0.0) == 1.0
        assert config.rate_multiplier(0.2) == 1.0
        assert config.rate_multiplier(0.35) == pytest.approx(3.0)  # mid-ramp
        assert config.rate_multiplier(0.5) == 5.0  # plateau
        assert config.rate_multiplier(0.65) == pytest.approx(3.0)
        assert config.rate_multiplier(0.9) == 1.0
        assert config.rate_multiplier(1.0) == 1.0

    def test_unit_multiplier_is_flat(self):
        config = FlashCrowdConfig(count=10, peak_multiplier=1.0)
        assert all(
            config.rate_multiplier(f / 10.0) == 1.0 for f in range(11)
        )


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FlashCrowdConfig(count=-1)
        with pytest.raises(ValueError):
            FlashCrowdConfig(count=10, hotspots=0)
        with pytest.raises(ValueError):
            FlashCrowdConfig(count=10, hotspot_weight=1.5)
        with pytest.raises(ValueError):
            FlashCrowdConfig(count=10, peak_multiplier=0.5)
        with pytest.raises(ValueError):
            FlashCrowdConfig(count=10, ramp_start=0.5, peak_start=0.4)
        with pytest.raises(ValueError):
            FlashCrowdConfig(count=10, base_interval_ms=0.0)
        with pytest.raises(ValueError):
            FlashCrowdConfig(count=10, tracking_burst_len=0)


class TestWorkloadShape:
    def test_count_indexes_and_monotone_clock(self, workload):
        assert len(workload) == 600
        assert [t.op.index for t in workload] == list(range(600))
        times = [t.offered_at_ms for t in workload]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_seed_determinism(self, building):
        config = FlashCrowdConfig(count=120)
        a = flash_crowd_workload(building.space, config, seed=3)
        b = flash_crowd_workload(building.space, config, seed=3)
        assert a == b
        c = flash_crowd_workload(building.space, config, seed=4)
        assert a != c

    def test_positions_are_indoor(self, building, workload):
        space = building.space
        for timed in workload[:100]:
            host = space.get_host_partition(timed.op.position)
            assert host is not None

    def test_peak_window_arrives_faster_than_the_base(self, workload):
        times = [t.offered_at_ms for t in workload]
        gaps = [b - a for a, b in zip(times, times[1:])]
        base = gaps[: int(0.25 * len(gaps))]
        peak = gaps[int(0.45 * len(gaps)) : int(0.55 * len(gaps))]
        base_mean = sum(base) / len(base)
        peak_mean = sum(peak) / len(peak)
        # Peak-of-trapezoid gaps shrink by ~peak_multiplier (5.0); allow
        # generous slack for exponential sampling noise.
        assert peak_mean < base_mean / 2.0

    def test_hotspots_dominate_positions(self, workload):
        counts = Counter(
            (t.op.position.x, t.op.position.y, t.op.position.floor)
            for t in workload
        )
        # ~80% of draws come from a 6-position zipfian pool, so the top
        # positions repeat heavily while background traffic is unique.
        top = counts.most_common(6)
        assert sum(n for _, n in top) > 0.5 * len(workload)
        assert top[0][1] > top[5][1]

    def test_tracking_bursts_chain_pt2pt_subjects(self, workload):
        # A burst is a run of consecutive pt2pt ops where each op's
        # source is the previous op's destination (the moving subject).
        chained = sum(
            1
            for a, b in zip(workload, workload[1:])
            if a.op.kind == "pt2pt"
            and b.op.kind == "pt2pt"
            and b.op.position == a.op.target
        )
        assert chained >= 10  # burst_prob 0.08 * 600 ops * (len-1) links

    def test_ops_are_well_formed(self, workload):
        for timed in workload:
            op = timed.op
            if op.kind == "range":
                assert 2.0 <= op.radius <= 15.0
            elif op.kind == "knn":
                assert 1 <= op.k <= 8
            else:
                assert op.target is not None and op.pivot is not None

    def test_flash_crowd_ops_strips_timestamps(self, building):
        ops = flash_crowd_ops(building.space, 50, seed=9)
        timed = flash_crowd_workload(
            building.space, FlashCrowdConfig(count=50), seed=9
        )
        assert ops == [t.op for t in timed]
