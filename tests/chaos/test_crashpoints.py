"""Crash points: arming, firing, skip counts, and the persist hooks."""

import pytest

from repro.exceptions import InjectedCrashError
from repro.index import IndexFramework
from repro.model.figure1 import build_figure1
from repro.persist import SnapshotStore, WalRecorder
from repro.runtime import crashpoints


@pytest.fixture(autouse=True)
def _clean_registry():
    crashpoints.disarm_all()
    yield
    crashpoints.disarm_all()


class TestRegistry:
    def test_fire_is_inert_when_unarmed(self):
        crashpoints.fire("anything")  # no raise

    def test_armed_point_fires_once(self):
        crashpoints.arm("p")
        assert crashpoints.is_armed("p")
        with pytest.raises(InjectedCrashError) as exc_info:
            crashpoints.fire("p")
        assert exc_info.value.point == "p"
        assert not crashpoints.is_armed("p")
        crashpoints.fire("p")  # disarmed by firing

    def test_skip_counts_down_before_firing(self):
        crashpoints.arm("p", skip=2)
        crashpoints.fire("p")
        crashpoints.fire("p")
        with pytest.raises(InjectedCrashError):
            crashpoints.fire("p")

    def test_negative_skip_rejected(self):
        with pytest.raises(ValueError):
            crashpoints.arm("p", skip=-1)

    def test_disarm_and_listing(self):
        crashpoints.arm("b")
        crashpoints.arm("a")
        assert crashpoints.armed_points() == ["a", "b"]
        crashpoints.disarm("a")
        assert crashpoints.armed_points() == ["b"]
        crashpoints.disarm_all()
        assert crashpoints.armed_points() == []


class TestPersistHooks:
    def test_snapshot_crash_leaves_no_new_generation(self, tmp_path):
        store = SnapshotStore(tmp_path)
        framework = IndexFramework.build(build_figure1())
        store.save(framework)
        crashpoints.arm("snapshot.save.before_publish")
        with pytest.raises(InjectedCrashError):
            store.save(framework)
        # The crash struck before the atomic publish: generation 1 intact,
        # no generation 2, only an orphan temp file at worst.
        assert store.generations() == [1]

    def test_torn_wal_append_leaves_valid_prefix(self, tmp_path):
        space = build_figure1()
        store = SnapshotStore(tmp_path)
        wal = store.wal()
        recorder = WalRecorder(space, wal)
        recorder.remove_door(24)
        crashpoints.arm("wal.append.torn")
        epoch_before = space.topology_epoch
        with pytest.raises(InjectedCrashError):
            recorder.remove_door(22)
        # The space was NOT mutated (write-ahead: append precedes apply)...
        assert space.topology_epoch == epoch_before
        # ...and a fresh reader sees one valid record plus a torn tail.
        fresh = store.wal()
        replay_space = build_figure1()
        report = fresh.replay(replay_space)
        assert report.applied == 1
        assert report.dropped_tail

    def test_repair_torn_tail_truncates_exactly(self, tmp_path):
        space = build_figure1()
        store = SnapshotStore(tmp_path)
        recorder = WalRecorder(space, store.wal())
        recorder.remove_door(24)
        crashpoints.arm("wal.append.torn")
        with pytest.raises(InjectedCrashError):
            recorder.remove_door(22)
        wal = store.wal()
        assert wal.repair_torn_tail()
        report = store.wal().replay(build_figure1())
        assert report.applied == 1
        assert not report.dropped_tail
        # Nothing left to repair on a clean log.
        assert not store.wal().repair_torn_tail()
