"""ShardedQueryService end-to-end: bit-identical answers while healthy,
explicit degradation under partial failure, and supervised restart that
rejoins the original topology epoch."""

import time

import pytest

from repro.queries import QueryEngine
from repro.runtime.ladder import QualityLevel, euclidean_lower_bound
from repro.serve.requests import QueryRequest
from repro.serve.service import ServiceState

from tests.shard.conftest import make_service


def _requests(positions):
    out = []
    for index, position in enumerate(positions):
        out.append(QueryRequest.range_query(position, 8.0))
        out.append(QueryRequest.knn(position, k=5))
        out.append(
            QueryRequest.pt2pt(position, positions[(index + 1) % len(positions)])
        )
    return out


def _engine_answer(engine, request):
    from repro.serve.requests import QueryKind

    if request.kind is QueryKind.RANGE:
        return engine.range_query(request.position, request.radius)
    if request.kind is QueryKind.KNN:
        return engine.knn(request.position, k=request.k)
    return engine.distance(request.position, request.target)


class TestHealthyFleet:
    def test_lifecycle_and_readiness(self, sharded_service):
        assert sharded_service.state is ServiceState.READY
        payload = sharded_service.readiness()
        assert payload["ready"] is True
        assert payload["shards"] == 3
        details = payload["supervision"]["shards"]
        assert sorted(details) == ["0", "1", "2"]
        for detail in details.values():
            assert detail["state"] == "ready"
            assert detail["topology_epoch"] == (
                sharded_service.framework.space.topology_epoch
            )

    def test_answers_bit_identical_to_engine(
        self, sharded_service, shard_framework_fixture, shard_positions
    ):
        # Cross-shard range, kNN (including its (distance, id) tie-break),
        # and pt2pt must all reproduce the sequential engine exactly.
        engine = QueryEngine(shard_framework_fixture)
        requests = _requests(shard_positions)
        responses = sharded_service.serve(requests)
        for request, response in zip(requests, responses):
            assert response.quality is QualityLevel.EXACT_INDEXED
            assert response.missing_shards == ()
            assert response.value == _engine_answer(engine, request)

    def test_distance_aware_pruning_fires_without_changing_answers(
        self, sharded_service, shard_positions
    ):
        # The bit-identity test above already pinned the answers; here we
        # check the router actually skipped provably irrelevant shards.
        for position in shard_positions:
            sharded_service.execute(QueryRequest.range_query(position, 1.0))
        snapshot = sharded_service.metrics_snapshot()
        assert snapshot["counters"].get("serve.shards_pruned", 0) > 0

    def test_rejects_requests_before_start_and_after_shutdown(
        self, shard_framework_fixture
    ):
        from repro.exceptions import ServiceUnavailableError

        service = make_service(shard_framework_fixture)
        request = QueryRequest.knn(
            shard_framework_fixture.objects.get(0).position, k=1
        )
        with pytest.raises(ServiceUnavailableError):
            service.execute(request)
        service.start(wait=True)
        try:
            assert service.execute(request).value
        finally:
            service.shutdown()
        with pytest.raises(ServiceUnavailableError):
            service.execute(request)


class TestPartialFailure:
    @pytest.fixture
    def fresh_service(self, shard_framework_fixture):
        service = make_service(
            shard_framework_fixture,
            cache_capacity=0,  # every query must hit the fleet
            shard_timeout_s=0.25,
            restart_backoff=0.3,  # hold the corpse down long enough to observe
        )
        service.start(wait=True)
        yield service
        service.shutdown()

    def test_killed_shard_degrades_instead_of_failing(
        self, fresh_service, shard_framework_fixture, shard_positions
    ):
        victim = 1
        owned = {
            oid
            for oid, _ in fresh_service.router._objects[victim]
        }
        assert owned, "the victim shard must own objects for this test"
        fresh_service.kill_shard(victim)
        # Race the restart: within the backoff window the scatter must
        # degrade, never raise and never silently drop the victim's slice.
        degraded = None
        deadline = time.monotonic() + 5.0
        while degraded is None and time.monotonic() < deadline:
            response = fresh_service.execute(
                QueryRequest.range_query(shard_positions[0], 50.0)
            )
            if response.missing_shards:
                degraded = response
        assert degraded is not None, "never observed a degraded window"
        assert degraded.quality is QualityLevel.EUCLIDEAN
        assert victim in degraded.missing_shards
        # Euclidean gap fill is a superset of the victim's true slice:
        # every owned object within the radius (lower bound <= true walk).
        filled = set(degraded.value) & owned
        for oid, position in fresh_service.router._objects[victim]:
            if (
                euclidean_lower_bound(shard_positions[0], position)
                <= 50.0
            ):
                assert oid in filled

    def test_restart_rejoins_the_original_epoch_and_heals(
        self, fresh_service, shard_framework_fixture, shard_positions
    ):
        victim = 2
        epoch = shard_framework_fixture.space.topology_epoch
        fresh_service.kill_shard(victim)
        # kill is asynchronous: wait until the monitor buried the corpse
        # AND its replacement reported ready again.
        deadline = time.monotonic() + 15.0
        detail = {}
        while time.monotonic() < deadline:
            detail = fresh_service.readiness()["supervision"]["shards"][
                str(victim)
            ]
            if detail["restarts"] >= 1 and detail["state"] == "ready":
                break
            time.sleep(0.05)
        assert detail.get("state") == "ready"
        assert detail.get("restarts", 0) >= 1
        assert detail.get("topology_epoch") == epoch
        # After the heal (+ breaker reset) answers are exact again.
        fresh_service.reset_breakers()
        engine = QueryEngine(shard_framework_fixture)
        request = QueryRequest.knn(shard_positions[1], k=7)
        response = fresh_service.execute(request)
        assert response.quality is QualityLevel.EXACT_INDEXED
        assert response.value == _engine_answer(engine, request)
        assert response.served_epoch == epoch

    def test_pt2pt_hedges_to_a_surviving_shard(
        self, fresh_service, shard_framework_fixture, shard_positions
    ):
        # pt2pt needs any one healthy shard: kill one and the answer must
        # still come back exact from a survivor.
        engine = QueryEngine(shard_framework_fixture)
        request = QueryRequest.pt2pt(shard_positions[0], shard_positions[3])
        fresh_service.kill_shard(0)
        response = fresh_service.execute(request)
        assert response.quality is QualityLevel.EXACT_INDEXED
        assert response.value == pytest.approx(
            _engine_answer(engine, request)
        )
