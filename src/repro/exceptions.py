"""Exception hierarchy for the :mod:`repro` indoor query-processing library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish model-construction problems from query-time problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A floor plan or indoor-space model is malformed or inconsistent."""


class TopologyError(ModelError):
    """A topology mapping (D2P / P2D) is violated or queried inconsistently.

    Examples: registering a door that connects more than two partitions, or
    asking for the partitions of a door that was never registered.
    """


class GeometryError(ReproError):
    """A geometric primitive is degenerate or an operation is undefined.

    Examples: a polygon with fewer than three vertices, or a visibility
    query between points that lie in no common partition.
    """


class UnknownEntityError(ModelError):
    """An entity identifier (door, partition, object) is not in the model."""

    def __init__(self, kind: str, identifier: object) -> None:
        self.kind = kind
        self.identifier = identifier
        super().__init__(f"unknown {kind}: {identifier!r}")


class UnreachableError(ReproError):
    """No indoor path exists between the requested source and destination."""


class QueryError(ReproError):
    """A query is malformed (e.g. negative range, k < 1, position outdoors)."""


class IndexError_(ReproError):
    """An index structure is missing, stale, or inconsistent with the model.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class SerializationError(ReproError):
    """A building, matrix, or object set could not be (de)serialized."""
