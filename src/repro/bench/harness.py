"""Measurement harness for the paper's §VI experiments (Figures 6-9).

Every ``measure_*`` function returns a list of row dicts (one per x-axis
point of the corresponding figure) so the CLI, the pytest benchmarks, and
EXPERIMENTS.md generation all share one code path.

Workloads are seeded and deterministic.  Scale is selected through the
``REPRO_BENCH_SCALE`` environment variable:

* ``quick`` (default) — the paper's parameter ranges with reduced repetition
  counts; minutes on a laptop.
* ``paper`` — the paper's repetition counts (50 distance runs, 100 queries,
  10 000 objects per floor); substantially slower in CPython than in the
  authors' Java setup.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.distance import (
    pt2pt_distance_basic,
    pt2pt_distance_memoized,
    pt2pt_distance_refined,
)
from repro.index.framework import IndexFramework
from repro.index.objects import ObjectStore
from repro.queries import knn_query, range_query
from repro.synthetic import (
    BuildingConfig,
    SyntheticBuilding,
    build_object_store,
    generate_building,
    random_position_pairs,
    random_positions,
)

#: Simulated slowdown of the paper's 1 GHz Samsung Nexus S relative to its
#: 2.66 GHz Core2 desktop, used by the Figure-7 constrained-device model.
PHONE_SLOWDOWN = 6.0


@dataclass(frozen=True)
class BenchScale:
    """Repetition counts and sweep ranges for one benchmark scale."""

    name: str
    fig6_floors: Tuple[int, ...]
    fig6_pairs: int
    fig7_pairs: int
    query_count: int
    object_counts: Tuple[int, ...]
    query_floors: Tuple[int, ...]
    objects_per_floor: int
    fig8_radii: Tuple[float, ...]
    fig9_ks: Tuple[int, ...]


QUICK = BenchScale(
    name="quick",
    fig6_floors=(10, 20, 30, 40),
    fig6_pairs=8,
    fig7_pairs=5,
    query_count=20,
    object_counts=(1_000, 5_000, 10_000, 20_000, 50_000),
    query_floors=(10, 20, 30, 40),
    objects_per_floor=1_500,
    fig8_radii=(10.0, 20.0, 30.0, 40.0, 50.0),
    fig9_ks=(1, 50, 100, 150, 200),
)

PAPER = BenchScale(
    name="paper",
    fig6_floors=(10, 20, 30, 40),
    fig6_pairs=50,
    fig7_pairs=10,
    query_count=100,
    object_counts=(1_000, 5_000, 10_000, 20_000, 30_000, 40_000, 50_000),
    query_floors=(10, 20, 30, 40),
    objects_per_floor=10_000,
    fig8_radii=(10.0, 20.0, 30.0, 40.0, 50.0),
    fig9_ks=(1, 50, 100, 150, 200),
)


def current_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
    if name == "paper":
        return PAPER
    return QUICK


# ----------------------------------------------------------------------
# Cached experiment substrates (buildings are deterministic per floor count)
# ----------------------------------------------------------------------
_buildings: Dict[int, SyntheticBuilding] = {}
_frameworks: Dict[int, IndexFramework] = {}


def get_building(floors: int) -> SyntheticBuilding:
    """The synthetic building with the paper's per-floor layout, cached."""
    if floors not in _buildings:
        building = generate_building(BuildingConfig(floors=floors))
        building.space.distance_graph.precompute()
        _buildings[floors] = building
    return _buildings[floors]


def get_framework(floors: int) -> IndexFramework:
    """The fully built index framework for a building, cached (objects are
    swapped per experiment through :meth:`IndexFramework.with_objects`)."""
    if floors not in _frameworks:
        _frameworks[floors] = IndexFramework.build(get_building(floors).space)
    return _frameworks[floors]


def _time_per_call_ms(calls: Sequence[Callable[[], object]]) -> float:
    """Mean wall-clock milliseconds over a sequence of thunks."""
    start = time.perf_counter()
    for call in calls:
        call()
    return (time.perf_counter() - start) * 1000.0 / max(1, len(calls))


# ----------------------------------------------------------------------
# Figures 6 and 7: distance computation algorithms
# ----------------------------------------------------------------------
def measure_fig6(
    scale: Optional[BenchScale] = None,
    include_basic: bool = True,
) -> List[dict]:
    """Figure 6: Algorithms 2/3/4 runtime vs. number of floors (desktop)."""
    scale = scale or current_scale()
    rows = []
    for floors in scale.fig6_floors:
        building = get_building(floors)
        pairs = random_position_pairs(building, scale.fig6_pairs, seed=floors)
        row = {"floors": floors}
        algorithms = [
            ("algorithm3_ms", pt2pt_distance_refined),
            ("algorithm4_ms", pt2pt_distance_memoized),
        ]
        if include_basic:
            algorithms.insert(0, ("algorithm2_ms", pt2pt_distance_basic))
        for key, fn in algorithms:
            row[key] = _time_per_call_ms(
                [
                    (lambda f=fn, s=s, t=t: f(building.space, s, t))
                    for s, t in pairs
                ]
            )
        rows.append(row)
    return rows


def measure_fig7(scale: Optional[BenchScale] = None) -> List[dict]:
    """Figure 7: Algorithms 3/4 on the simulated constrained device.

    The paper runs the same sweep on a 1 GHz Android phone; we model the
    phone as a deterministic ``PHONE_SLOWDOWN`` interpreter-overhead
    multiplier on the measured desktop times (see DESIGN.md substitutions)
    and additionally report the raw measured ratio between the algorithms.
    """
    scale = scale or current_scale()
    rows = []
    for floors in scale.fig6_floors:
        building = get_building(floors)
        pairs = random_position_pairs(
            building, scale.fig7_pairs, seed=1000 + floors
        )
        alg3 = _time_per_call_ms(
            [
                (lambda s=s, t=t: pt2pt_distance_refined(building.space, s, t))
                for s, t in pairs
            ]
        )
        alg4 = _time_per_call_ms(
            [
                (lambda s=s, t=t: pt2pt_distance_memoized(building.space, s, t))
                for s, t in pairs
            ]
        )
        rows.append(
            {
                "floors": floors,
                "algorithm3_ms": alg3 * PHONE_SLOWDOWN,
                "algorithm4_ms": alg4 * PHONE_SLOWDOWN,
                "alg4_speedup": alg3 / alg4 if alg4 > 0 else float("nan"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figures 8 and 9: query processing
# ----------------------------------------------------------------------
_stores: Dict[Tuple[int, int], ObjectStore] = {}


def get_store(floors: int, object_count: int) -> ObjectStore:
    """A populated object store for a cached building, cached per size."""
    key = (floors, object_count)
    if key not in _stores:
        _stores[key] = build_object_store(
            get_building(floors), object_count, seed=object_count
        )
    return _stores[key]


def _query_framework(floors: int, object_count: int) -> IndexFramework:
    return get_framework(floors).with_objects(get_store(floors, object_count))


def _measure_queries(
    framework: IndexFramework,
    floors: int,
    query_count: int,
    runner: Callable,
    seed: int,
) -> float:
    positions = random_positions(get_building(floors), query_count, seed=seed)
    return _time_per_call_ms(
        [(lambda q=q: runner(framework, q)) for q in positions]
    )


def measure_fig8a(scale: Optional[BenchScale] = None) -> List[dict]:
    """Figure 8(a): range query vs. object count, with/without M_idx.
    30 floors, r = 30 m."""
    scale = scale or current_scale()
    floors = 30
    rows = []
    for count in scale.object_counts:
        framework = _query_framework(floors, count)
        rows.append(
            {
                "objects": count,
                "with_index_ms": _measure_queries(
                    framework,
                    floors,
                    scale.query_count,
                    lambda fw, q: range_query(fw, q, 30.0, use_index=True),
                    seed=81,
                ),
                "without_index_ms": _measure_queries(
                    framework,
                    floors,
                    scale.query_count,
                    lambda fw, q: range_query(fw, q, 30.0, use_index=False),
                    seed=81,
                ),
            }
        )
    return rows


def measure_fig8b(scale: Optional[BenchScale] = None) -> List[dict]:
    """Figure 8(b): range query vs. floor count, with/without M_idx.
    Fixed per-floor object density, r = 20 m."""
    scale = scale or current_scale()
    rows = []
    for floors in scale.query_floors:
        framework = _query_framework(floors, floors * scale.objects_per_floor)
        rows.append(
            {
                "floors": floors,
                "objects": floors * scale.objects_per_floor,
                "with_index_ms": _measure_queries(
                    framework,
                    floors,
                    scale.query_count,
                    lambda fw, q: range_query(fw, q, 20.0, use_index=True),
                    seed=82,
                ),
                "without_index_ms": _measure_queries(
                    framework,
                    floors,
                    scale.query_count,
                    lambda fw, q: range_query(fw, q, 20.0, use_index=False),
                    seed=82,
                ),
            }
        )
    return rows


def measure_fig8c(scale: Optional[BenchScale] = None) -> List[dict]:
    """Figure 8(c): range query vs. object count for r in 10..50 m (with
    M_idx).  30 floors."""
    scale = scale or current_scale()
    floors = 30
    rows = []
    for count in scale.object_counts:
        framework = _query_framework(floors, count)
        row = {"objects": count}
        for radius in scale.fig8_radii:
            row[f"r{int(radius)}m_ms"] = _measure_queries(
                framework,
                floors,
                scale.query_count,
                lambda fw, q, r=radius: range_query(fw, q, r, use_index=True),
                seed=83,
            )
        rows.append(row)
    return rows


def measure_fig9a(scale: Optional[BenchScale] = None) -> List[dict]:
    """Figure 9(a): kNN query vs. object count, with/without M_idx.
    30 floors, k = 100."""
    scale = scale or current_scale()
    floors = 30
    rows = []
    for count in scale.object_counts:
        framework = _query_framework(floors, count)
        rows.append(
            {
                "objects": count,
                "with_index_ms": _measure_queries(
                    framework,
                    floors,
                    scale.query_count,
                    lambda fw, q: knn_query(fw, q, 100, use_index=True),
                    seed=91,
                ),
                "without_index_ms": _measure_queries(
                    framework,
                    floors,
                    scale.query_count,
                    lambda fw, q: knn_query(fw, q, 100, use_index=False),
                    seed=91,
                ),
            }
        )
    return rows


def measure_fig9b(scale: Optional[BenchScale] = None) -> List[dict]:
    """Figure 9(b): kNN query vs. floor count, with/without M_idx.
    Fixed per-floor object density, k = 100."""
    scale = scale or current_scale()
    rows = []
    for floors in scale.query_floors:
        framework = _query_framework(floors, floors * scale.objects_per_floor)
        rows.append(
            {
                "floors": floors,
                "objects": floors * scale.objects_per_floor,
                "with_index_ms": _measure_queries(
                    framework,
                    floors,
                    scale.query_count,
                    lambda fw, q: knn_query(fw, q, 100, use_index=True),
                    seed=92,
                ),
                "without_index_ms": _measure_queries(
                    framework,
                    floors,
                    scale.query_count,
                    lambda fw, q: knn_query(fw, q, 100, use_index=False),
                    seed=92,
                ),
            }
        )
    return rows


def measure_fig9c(scale: Optional[BenchScale] = None) -> List[dict]:
    """Figure 9(c): kNN query vs. object count for k in 1..200 (with
    M_idx).  30 floors."""
    scale = scale or current_scale()
    floors = 30
    rows = []
    for count in scale.object_counts:
        framework = _query_framework(floors, count)
        row = {"objects": count}
        for k in scale.fig9_ks:
            row[f"k{k}_ms"] = _measure_queries(
                framework,
                floors,
                scale.query_count,
                lambda fw, q, k=k: knn_query(fw, q, k, use_index=True),
                seed=93,
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_table(rows: List[dict], title: str = "") -> str:
    """Plain-text table, one row per x-axis point, floats to 2 decimals."""
    if not rows:
        return f"{title}\n(no data)"
    columns = list(rows[0].keys())
    widths = {c: max(len(c), 12) for c in columns}

    def fmt(value):
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.rjust(widths[c]) for c in columns))
    for row in rows:
        lines.append("  ".join(fmt(row[c]).rjust(widths[c]) for c in columns))
    return "\n".join(lines)
