"""Tests for Algorithm 6 (nearest neighbour / kNN), verified against the
brute-force pt2pt oracle."""

import random

import pytest

from repro.exceptions import ModelError, QueryError
from repro.geometry import Point, Segment, rectangle
from repro.index import IndexFramework, IndoorObject
from repro.model import IndoorSpaceBuilder
from repro.queries import brute_force_knn, knn_query, nn_query
from tests.queries.conftest import random_point_in


class TestBasics:
    def test_k_must_be_positive(self, populated_figure1):
        with pytest.raises(QueryError):
            knn_query(populated_figure1, Point(5, 5), 0)

    def test_query_outside_any_partition_raises(self, populated_figure1):
        with pytest.raises(ModelError):
            knn_query(populated_figure1, Point(100, 100), 1)

    def test_returns_at_most_k(self, populated_figure1):
        assert len(knn_query(populated_figure1, Point(5, 5), 5)) == 5

    def test_k_larger_than_population(self, populated_figure1):
        result = knn_query(populated_figure1, Point(5, 5), 10_000)
        assert len(result) == len(populated_figure1.objects)

    def test_results_sorted_by_distance(self, populated_figure1):
        result = knn_query(populated_figure1, Point(5, 5), 20)
        distances = [d for _, d in result]
        assert distances == sorted(distances)

    def test_nn_query_wrapper(self, populated_figure1):
        nearest = nn_query(populated_figure1, Point(5, 5))
        assert nearest is not None
        assert nearest == knn_query(populated_figure1, Point(5, 5), 1)[0]

    def test_nn_query_empty_store(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        framework = IndexFramework.build(builder.build())
        assert nn_query(framework, Point(5, 5)) is None


class TestAgainstBruteForce:
    @pytest.mark.parametrize("k", [1, 3, 10, 25])
    def test_matches_oracle(self, populated_figure1, k):
        framework = populated_figure1
        rng = random.Random(21)
        for _ in range(8):
            q = random_point_in(framework.space, rng)
            expected = brute_force_knn(framework.space, framework.objects, q, k)
            got = knn_query(framework, q, k)
            got_distances = [d for _, d in got]
            expected_distances = [d for _, d in expected]
            assert got_distances == pytest.approx(expected_distances), (q, k)
            # Ids must agree except possibly among exact ties.
            for (gid, gd), (eid, ed) in zip(got, expected):
                if gid != eid:
                    assert gd == pytest.approx(ed)

    def test_no_index_baseline_matches_indexed(self, populated_figure1):
        framework = populated_figure1
        rng = random.Random(5)
        for _ in range(8):
            q = random_point_in(framework.space, rng)
            k = rng.choice([1, 5, 15])
            indexed = knn_query(framework, q, k, use_index=True)
            unindexed = knn_query(framework, q, k, use_index=False)
            assert [d for _, d in indexed] == pytest.approx(
                [d for _, d in unindexed]
            )


class TestStructuralBehaviour:
    def test_object_in_host_partition_wins(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_door(1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2))
        space = builder.build()
        framework = IndexFramework.build(
            space,
            [IndoorObject(1, Point(3, 3)), IndoorObject(2, Point(11, 5))],
        )
        assert nn_query(framework, Point(2, 2))[0] == 1

    def test_object_through_door_wins_when_closer(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_door(1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2))
        space = builder.build()
        framework = IndexFramework.build(
            space,
            [IndoorObject(1, Point(1, 9)), IndoorObject(2, Point(10.5, 5))],
        )
        # From (9.5, 5): object 2 is ~1 m through the door; object 1 ~9.4 m.
        nearest_id, nearest_dist = nn_query(framework, Point(9.5, 5))
        assert nearest_id == 2
        expected = (
            Point(9.5, 5).distance_to(Point(10, 5))
            + Point(10, 5).distance_to(Point(10.5, 5))
        )
        assert nearest_dist == pytest.approx(expected)

    def test_one_way_door_excludes_unreachable_objects(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(2, 1), one_way=True
        )
        space = builder.build()
        framework = IndexFramework.build(space, [IndoorObject(1, Point(12, 2))])
        assert knn_query(framework, Point(5, 5), 1) == []

    def test_knn_distance_is_minimum_over_routes(self):
        """Two doors lead to the same object; kNN must report the cheaper."""
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_door(1, Segment(Point(10, 0.5), Point(10, 1.5)), connects=(1, 2))
        builder.add_door(2, Segment(Point(10, 8.5), Point(10, 9.5)), connects=(1, 2))
        space = builder.build()
        framework = IndexFramework.build(space, [IndoorObject(7, Point(11, 9))])
        q = Point(9, 9)
        _, dist = nn_query(framework, q)
        expected = (
            q.distance_to(Point(10, 9)) + Point(10, 9).distance_to(Point(11, 9))
        )
        assert dist == pytest.approx(expected)

    def test_bound_tightens_across_partitions(self, populated_figure1):
        """k=1 must equal the global minimum over all objects."""
        framework = populated_figure1
        q = Point(5, 5)
        nearest_id, nearest_dist = nn_query(framework, q)
        from repro.distance import pt2pt_distance_refined

        for obj in framework.objects:
            d = pt2pt_distance_refined(framework.space, q, obj.position)
            assert nearest_dist <= d + 1e-9
