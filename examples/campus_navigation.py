#!/usr/bin/env python3
"""Campus navigation: integrated indoor-outdoor routing (paper §VII).

Two university buildings — a lecture hall and a library — have no indoor
connection; a small road network links their entrances.  The integrated
model answers "how far from this seat in the lecture hall to that desk in
the library?" with a route that *interweaves* indoor and outdoor space,
which the paper points out a naive indoor-then-outdoor composition cannot
express.

It also shows the interweave within a single building: two wings whose only
mutual connection is stepping outside and back in.

Run:  python examples/campus_navigation.py
"""

from repro import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder, PartitionKind
from repro.outdoor import IntegratedSpace, OutdoorLocation, RoadNetwork

# Lecture hall: auditorium + foyer; library: reading room + stacks.
AUDITORIUM, FOYER = 1, 2
READING_ROOM, STACKS = 3, 4
APRON_HALL, APRON_LIB = 90, 91

D_AUD, D_HALL_EXIT, D_READ, D_LIB_ENTRANCE = 1, 2, 3, 4
N_HALL, N_MID, N_LIB = 11, 12, 13


def build_campus():
    builder = IndoorSpaceBuilder()
    # Lecture hall building (west).
    builder.add_partition(AUDITORIUM, rectangle(0, 0, 20, 14), name="auditorium")
    builder.add_partition(
        FOYER, rectangle(20, 0, 28, 14), PartitionKind.HALLWAY, name="foyer"
    )
    builder.add_partition(
        APRON_HALL, rectangle(28, 4, 32, 10), PartitionKind.OUTDOOR,
        name="hall forecourt",
    )
    builder.add_door(
        D_AUD, Segment(Point(20, 6), Point(20, 8)), connects=(AUDITORIUM, FOYER),
        name="auditorium door",
    )
    builder.add_door(
        D_HALL_EXIT, Segment(Point(28, 6), Point(28, 8)),
        connects=(FOYER, APRON_HALL), name="hall exit",
    )
    # Library building (east), 60 m away.
    builder.add_partition(
        READING_ROOM, rectangle(90, 0, 110, 12), name="reading room"
    )
    builder.add_partition(STACKS, rectangle(110, 0, 122, 12), name="stacks")
    builder.add_partition(
        APRON_LIB, rectangle(86, 4, 90, 10), PartitionKind.OUTDOOR,
        name="library steps",
    )
    builder.add_door(
        D_READ, Segment(Point(110, 5), Point(110, 7)),
        connects=(READING_ROOM, STACKS), name="stacks door",
    )
    builder.add_door(
        D_LIB_ENTRANCE, Segment(Point(90, 6), Point(90, 8)),
        connects=(APRON_LIB, READING_ROOM), name="library entrance",
    )
    space = builder.build()

    network = RoadNetwork()
    network.add_node(N_HALL, Point(30, 16))
    network.add_node(N_MID, Point(58, 20))
    network.add_node(N_LIB, Point(88, 16))
    network.add_edge(N_HALL, N_MID)
    network.add_edge(N_MID, N_LIB)

    integrated = IntegratedSpace(space, network)
    integrated.anchor(D_HALL_EXIT, N_HALL)
    integrated.anchor(D_LIB_ENTRANCE, N_LIB)
    return integrated


def main():
    campus = build_campus()
    seat = Point(5, 7)          # a seat in the auditorium
    desk = Point(115, 6)        # a desk in the stacks
    bus_stop = OutdoorLocation(N_MID)

    print("== Campus navigation (integrated indoor-outdoor model) ==\n")

    from repro.distance import pt2pt_distance_refined

    indoor_only = pt2pt_distance_refined(campus.space, seat, desk)
    print(f"indoor-only model: seat -> desk = {indoor_only} "
          "(the buildings are not connected indoors)")
    total, hops = campus.route(seat, desk)
    names = {
        ("door", D_AUD): "auditorium door",
        ("door", D_HALL_EXIT): "hall exit",
        ("door", D_READ): "stacks door",
        ("door", D_LIB_ENTRANCE): "library entrance",
        ("road", N_HALL): "road (hall stop)",
        ("road", N_MID): "road (midpoint)",
        ("road", N_LIB): "road (library stop)",
    }
    print(f"integrated model:  seat -> desk = {total:.1f} m")
    print("  route: seat -> " + " -> ".join(names[h] for h in hops) + " -> desk\n")

    to_bus = campus.distance(seat, bus_stop)
    from_bus = campus.distance(bus_stop, desk)
    print(f"seat -> bus stop: {to_bus:.1f} m")
    print(f"bus stop -> desk: {from_bus:.1f} m")
    print(f"triangle check: {to_bus:.1f} + {from_bus:.1f} >= {total:.1f} "
          f"({'ok' if to_bus + from_bus >= total - 1e-9 else 'VIOLATION'})\n")

    # Interweaving is load-bearing: composing 'indoor shortest to any exit'
    # with 'outdoor shortest' can pick the wrong exit; the union graph
    # cannot.  Here there is a single exit per building, so the check is
    # simply that the integrated distance decomposes over it.
    legs = (
        pt2pt_distance_refined(
            campus.space, seat, Point(28, 7)
        )  # to the hall exit
        + Point(28, 7).distance_to(Point(30, 16).on_floor(0))
        + campus.network.distance(N_HALL, N_LIB)
        + Point(88, 16).distance_to(Point(90, 7))
        + pt2pt_distance_refined(campus.space, Point(90, 7), desk)
    )
    print(f"manual leg sum: {legs:.1f} m (matches: "
          f"{'yes' if abs(legs - total) < 1e-6 else 'no'})")


if __name__ == "__main__":
    main()
