"""Indoor distance-aware query processing (paper §V).

* :mod:`repro.queries.range_query` — Algorithm 5, the range query.
* :mod:`repro.queries.knn_query` — Algorithm 6 and its k > 1 extension.
* :mod:`repro.queries.baselines` — brute-force oracles used for result
  verification (every object's exact pt2pt distance), complementing the
  ``use_index=False`` no-M_idx baseline built into the query functions.
* :mod:`repro.queries.engine` — :class:`~repro.queries.engine.QueryEngine`,
  the public facade tying the model, indexes, and queries together.
"""

from repro.queries.range_query import range_query
from repro.queries.knn_query import knn_query, nn_query
from repro.queries.baselines import brute_force_knn, brute_force_range
from repro.queries.advanced import (
    aggregate_nn,
    closest_pair,
    distance_join,
    distances_to_all_objects,
    range_query_with_distances,
)
from repro.queries.engine import QueryEngine

__all__ = [
    "range_query",
    "range_query_with_distances",
    "knn_query",
    "nn_query",
    "brute_force_range",
    "brute_force_knn",
    "aggregate_nn",
    "closest_pair",
    "distance_join",
    "distances_to_all_objects",
    "QueryEngine",
]
