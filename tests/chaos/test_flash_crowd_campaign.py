"""Flash-crowd campaign config, plan, and overload report plumbing."""

import pytest

from repro.chaos import (
    CampaignConfig,
    CampaignReport,
    FaultPlan,
    flash_crowd_plan,
)


class TestFlashCrowdPlan:
    def test_casualties_land_inside_the_spike_window(self):
        plan = flash_crowd_plan(200, shards=3)
        assert isinstance(plan, FaultPlan)
        for action in plan.actions:
            assert 200 * 0.3 <= action.at_op <= 200 * 0.7
        kinds = [action.action for action in plan.actions]
        assert kinds.count("kill_shard") == 3
        assert kinds.count("hang_shard") == 1

    def test_targets_stay_inside_the_fleet(self):
        plan = flash_crowd_plan(100, shards=2)
        for action in plan.actions:
            shard = action.params.get("shard")
            if shard is not None:
                assert 0 <= shard < 2

    def test_validation(self):
        with pytest.raises(ValueError, match="duration_ops"):
            flash_crowd_plan(10)
        with pytest.raises(ValueError, match="shards"):
            flash_crowd_plan(100, shards=1)


class TestCampaignConfig:
    def test_workload_and_hedging_round_trip(self):
        config = CampaignConfig(
            seed=5,
            duration_ops=60,
            shards=3,
            workload="flash_crowd",
            hedging=True,
        )
        restored = CampaignConfig.from_dict(config.to_dict())
        assert restored.workload == "flash_crowd"
        assert restored.hedging is True
        assert restored.shards == 3

    def test_flash_crowd_default_plan_is_the_spike_plan(self):
        config = CampaignConfig(
            duration_ops=80, shards=3, workload="flash_crowd"
        )
        assert (
            config.resolved_plan().actions
            == flash_crowd_plan(80, shards=3).actions
        )

    def test_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="workload"):
            CampaignConfig(workload="thundering_herd")

    def test_rejects_hedging_without_shards(self):
        with pytest.raises(ValueError, match="hedg"):
            CampaignConfig(hedging=True, shards=0)


class TestOverloadReportField:
    def test_overload_survives_a_save_load_cycle(self, tmp_path):
        report = CampaignReport(
            config={"seed": 0},
            incidents=[],
            ops_executed=10,
            overload={"counters": {"overload.hedged": 3}},
        ).finalize()
        loaded = CampaignReport.load(report.save(tmp_path / "r.json"))
        assert loaded.overload == {"counters": {"overload.hedged": 3}}

    def test_overload_never_enters_the_digest(self):
        base = CampaignReport(
            config={"seed": 0}, incidents=[], ops_executed=10
        ).finalize()
        noisy = CampaignReport(
            config={"seed": 0},
            incidents=[],
            ops_executed=10,
            overload={"counters": {"overload.hedged": 99}},
        ).finalize()
        assert base.digest == noisy.digest
        assert base.digest  # sealed, not the empty sentinel
