"""Unit and property tests for polygons and bounding boxes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geometry import BoundingBox, Point, Polygon, rectangle
from repro.geometry.polygon import convex_hull
from repro.geometry.primitives import Segment


class TestBoundingBox:
    def test_inverted_box_raises(self):
        with pytest.raises(GeometryError):
            BoundingBox(1, 0, 0, 1)

    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.center == (2, 1)

    def test_contains_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains_point(Point(1, 1))
        assert box.contains_point(Point(0, 0))
        assert not box.contains_point(Point(3, 1))

    def test_intersects_and_union(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(1, 1, 3, 3)
        c = BoundingBox(5, 5, 6, 6)
        assert a.intersects(b)
        assert not a.intersects(c)
        assert a.union(b) == BoundingBox(0, 0, 3, 3)

    def test_enlargement(self):
        a = BoundingBox(0, 0, 2, 2)
        assert a.enlargement(BoundingBox(0, 0, 1, 1)) == 0
        assert a.enlargement(BoundingBox(0, 0, 4, 2)) == pytest.approx(4)

    def test_min_max_distance_to_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.min_distance_to_point(Point(1, 1)) == 0
        assert box.min_distance_to_point(Point(5, 1)) == pytest.approx(3)
        assert box.max_distance_to_point(Point(0, 0)) == pytest.approx(8 ** 0.5)


class TestPolygon:
    def test_too_few_vertices_raises(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_mixed_floors_raise(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0, 0), Point(1, 0, 1), Point(1, 1, 0)])

    def test_duplicate_vertices_raise(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 0), Point(1, 0), Point(0, 1)])

    def test_degenerate_polygon_raises(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_winding_is_normalised_to_ccw(self):
        clockwise = Polygon([Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)])
        assert clockwise.signed_area() > 0

    def test_area_and_centroid_of_unit_square(self):
        square = rectangle(0, 0, 1, 1)
        assert square.area == pytest.approx(1.0)
        assert square.centroid.approx_equals(Point(0.5, 0.5), tol=1e-9)

    def test_contains_point_interior_boundary_exterior(self):
        square = rectangle(0, 0, 2, 2)
        assert square.contains_point(Point(1, 1))
        assert square.contains_point(Point(0, 1))  # boundary inclusive
        assert square.contains_point(Point(2, 2))  # corner inclusive
        assert not square.contains_point(Point(2.1, 1))
        assert not square.contains_point(Point(1, 1, floor=3))

    def test_strictly_contains_excludes_boundary(self):
        square = rectangle(0, 0, 2, 2)
        assert square.strictly_contains_point(Point(1, 1))
        assert not square.strictly_contains_point(Point(0, 1))

    def test_contains_point_nonconvex(self):
        # L-shaped polygon: the notch is outside.
        shape = Polygon(
            [
                Point(0, 0),
                Point(4, 0),
                Point(4, 2),
                Point(2, 2),
                Point(2, 4),
                Point(0, 4),
            ]
        )
        assert shape.contains_point(Point(1, 3))
        assert shape.contains_point(Point(3, 1))
        assert not shape.contains_point(Point(3, 3))

    def test_contains_segment(self):
        square = rectangle(0, 0, 4, 4)
        assert square.contains_segment(Segment(Point(1, 1), Point(3, 3)))
        assert not square.contains_segment(Segment(Point(1, 1), Point(5, 5)))

    def test_contains_segment_nonconvex_notch(self):
        shape = Polygon(
            [
                Point(0, 0),
                Point(4, 0),
                Point(4, 2),
                Point(2, 2),
                Point(2, 4),
                Point(0, 4),
            ]
        )
        # Both endpoints inside, but the straight line leaves through the notch.
        assert not shape.contains_segment(Segment(Point(1, 3.5), Point(3.5, 1)))
        assert shape.contains_segment(Segment(Point(0.5, 0.5), Point(0.5, 3.5)))

    def test_edges_count_and_closure(self):
        square = rectangle(0, 0, 1, 1)
        edges = square.edges()
        assert len(edges) == 4
        assert edges[-1].end == edges[0].start

    def test_bounding_box(self):
        tri = Polygon([Point(0, 0), Point(4, 1), Point(2, 3)])
        assert tri.bounding_box == BoundingBox(0, 0, 4, 3)

    def test_on_floor_and_translated(self):
        square = rectangle(0, 0, 1, 1)
        moved = square.translated(2, 3).on_floor(5)
        assert moved.floor == 5
        assert moved.bounding_box == BoundingBox(2, 3, 3, 4)

    def test_rectangle_validation(self):
        with pytest.raises(GeometryError):
            rectangle(2, 0, 1, 1)

    @given(
        st.floats(min_value=0.5, max_value=50, allow_nan=False),
        st.floats(min_value=0.5, max_value=50, allow_nan=False),
    )
    def test_rectangle_area_property(self, w, h):
        assert rectangle(0, 0, w, h).area == pytest.approx(w * h)


class TestConvexHull:
    def test_square_hull(self):
        points = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2), Point(1, 1)]
        hull = convex_hull(points)
        assert len(hull) == 4
        assert Point(1, 1) not in hull

    def test_collinear_points_collapse(self):
        hull = convex_hull([Point(0, 0), Point(1, 0), Point(2, 0)])
        assert len(hull) == 2

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-20, max_value=20),
                st.integers(min_value=-20, max_value=20),
            ),
            min_size=3,
            max_size=30,
        )
    )
    def test_hull_contains_all_points(self, raw):
        points = [Point(float(x), float(y)) for x, y in raw]
        hull = convex_hull(points)
        if len(hull) < 3:
            return
        polygon = Polygon(hull)
        for p in points:
            assert polygon.contains_point(p, tol=1e-7)
