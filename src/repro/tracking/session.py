"""The tracking session: object mutations fanned out to standing queries."""

from __future__ import annotations

from typing import List, Union

from repro.geometry import Point
from repro.index.objects import IndoorObject
from repro.queries.engine import QueryEngine
from repro.tracking.monitors import KnnMonitor, RangeMonitor

Monitor = Union[RangeMonitor, KnnMonitor]


class TrackingSession:
    """Wraps a :class:`QueryEngine`, keeping standing queries consistent.

    All object churn must flow through the session's mutation methods; each
    registered monitor is updated (and its events appended) before the call
    returns.

    Example::

        session = TrackingSession(engine)
        watch = session.watch_range(gate_position, radius=40.0)
        session.move_object(passenger_id, new_position)
        for event in watch.events:
            ...  # ENTER/EXIT notifications
    """

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine
        self._monitors: List[Monitor] = []

    # ------------------------------------------------------------------
    # Standing queries
    # ------------------------------------------------------------------
    def watch_range(self, position: Point, radius: float) -> RangeMonitor:
        """Register a standing range query."""
        monitor = RangeMonitor(self.engine.framework, position, radius)
        self._monitors.append(monitor)
        return monitor

    def watch_knn(self, position: Point, k: int) -> KnnMonitor:
        """Register a standing kNN query."""
        monitor = KnnMonitor(self.engine.framework, position, k)
        self._monitors.append(monitor)
        return monitor

    def unwatch(self, monitor: Monitor) -> None:
        """Deregister a monitor (its result freezes)."""
        self._monitors.remove(monitor)

    @property
    def monitor_count(self) -> int:
        """How many standing queries are registered."""
        return len(self._monitors)

    # ------------------------------------------------------------------
    # Object churn
    # ------------------------------------------------------------------
    def add_object(self, obj: IndoorObject) -> int:
        """Insert an object and update every monitor."""
        partition_id = self.engine.add_object(obj)
        for monitor in self._monitors:
            monitor.on_added(obj.object_id)
        return partition_id

    def remove_object(self, object_id: int) -> IndoorObject:
        """Remove an object and update every monitor."""
        removed = self.engine.remove_object(object_id)
        for monitor in self._monitors:
            monitor.on_removed(object_id)
        return removed

    def move_object(self, object_id: int, new_position: Point) -> IndoorObject:
        """Relocate an object and update every monitor."""
        moved = self.engine.move_object(object_id, new_position)
        for monitor in self._monitors:
            monitor.on_moved(object_id)
        return moved
