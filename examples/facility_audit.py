#!/usr/bin/env python3
"""Facility audit: lint a floor plan, find its structural weak points.

Sketches a small office floor as ASCII art, parses it, lints it, and then
runs the topological-significance analysis the paper defers to future
research (§IV-A): which doors carry the most shortest-path traffic, and
which are single points of failure whose closure would strand people?

Run:  python examples/facility_audit.py
"""

from repro.analysis import critical_doors, door_betweenness
from repro.io import parse_ascii_plan
from repro.model.validation import validate_space
from repro.routing import evacuation_report

# A: open-plan office   B: meeting room   C: lab (via B only!)
# H: hallway            E: entrance lobby
OFFICE = """
###################
#AAAAAA#BBBB#CCCCC#
#AAAAAA1BBBB2CCCCC#
#AAAAAA#BBBB#CCCCC#
###3#######4#######
#HHHHHHHHHHHHHHHHH#
###5###############
#EEEEE#############
###################
"""


def main():
    plan = parse_ascii_plan(OFFICE, cell_size=2.0)
    space = plan.space
    name_of = {pid: letter for letter, pid in plan.partitions.items()}

    print("== Facility audit ==")
    print(f"partitions: {space.num_partitions}, doors: {space.num_doors}\n")

    issues = validate_space(space)
    print(f"lint: {len(issues)} issue(s)")
    for issue in issues:
        print(f"  {issue}")
    print()

    print("door traffic ranking (betweenness over shortest door paths):")
    scores = door_betweenness(space)
    for door_id, score in sorted(scores.items(), key=lambda kv: -kv[1]):
        door = space.door(door_id)
        partitions = " <-> ".join(
            name_of[p] for p in sorted(space.topology.partitions_of(door_id))
        )
        print(f"  {door.label:<6} ({partitions:<9}) {score:5.0%}")
    print()

    critical = critical_doors(space)
    print("single points of failure (closure strands someone):")
    for door_id in critical:
        partitions = " <-> ".join(
            name_of[p] for p in sorted(space.topology.partitions_of(door_id))
        )
        print(f"  {space.door(door_id).label} ({partitions})")
    print()

    # Evacuation: the lobby E is the exit.
    report = evacuation_report(space, [plan.partitions["E"]])
    print(f"evacuation via lobby E: "
          f"{'all partitions safe' if report.is_safe else 'TRAPPED: ' + str(report.trapped)}")
    # What if the lab door fails?  Use the temporal layer to simulate.
    from repro.temporal import DoorSchedule, TemporalIndoorSpace

    lab_door = plan.doors[(2, 12)]  # door '2' between B and C
    schedule = DoorSchedule()
    schedule.set_closed(lab_door)
    snapshot = TemporalIndoorSpace(space, schedule).snapshot(0.0)
    broken = evacuation_report(snapshot, [plan.partitions["E"]])
    trapped = [name_of[p] for p in broken.trapped]
    print(f"with door {space.door(lab_door).label} jammed: trapped = {trapped}")


if __name__ == "__main__":
    main()
