"""WAL-driven incremental label repair (repro.labels.repair)."""

from types import SimpleNamespace

import pytest

from repro.geometry import Point, Segment, rectangle
from repro.index import IndexFramework
from repro.labels import repair_framework, repair_labels
from repro.model.figure1 import ROOM_12, build_figure1


def _add_shortcut_door(space):
    """A new door between room 12 and partition 11 — only *adds* door-graph
    edges, so the incremental patch path applies."""
    space.add_door(
        99,
        Segment(Point(4.0, 7.0), Point(4.0, 8.0)),
        connects=(ROOM_12, 11),
    )


@pytest.fixture
def stale_labels_framework():
    space = build_figure1()
    framework = IndexFramework.build(space, backend="labels")
    _add_shortcut_door(space)
    return framework


class TestRepairFramework:
    def test_added_door_is_patched_not_rebuilt(self, stale_labels_framework):
        repaired, outcome = repair_framework(stale_labels_framework)
        assert outcome.repaired
        assert 99 in outcome.patch_hubs
        assert repaired.is_fresh
        assert 99 in repaired.distance_index.door_ids
        assert repaired.distance_index.patch_count >= 1

    def test_patched_answers_match_a_full_dense_rebuild(
        self, stale_labels_framework
    ):
        """Repair is *mathematically* exact: every patched answer equals
        the dense rebuild up to one ulp of re-association (the overlay
        sums half-paths and folds backward rows on the transposed graph,
        where Dijkstra folds one forward chain), and the forward rows
        from the patch hub itself are bitwise canonical."""
        repaired, outcome = repair_framework(stale_labels_framework)
        assert outcome.repaired
        reference = IndexFramework.build(
            repaired.space, backend="matrix"
        ).distance_index
        for u in reference.door_ids:
            for v in reference.door_ids:
                got = repaired.distance_index.distance(u, v)
                want = reference.distance(u, v)
                assert got == pytest.approx(want, rel=1e-12, abs=0.0) or (
                    got == want
                )
        for v in reference.door_ids:
            assert repaired.distance_index.distance(
                99, v
            ) == reference.distance(99, v)

    def test_rebuild_after_repair_restores_bit_identity(
        self, stale_labels_framework
    ):
        """The overlay trades the last ulp for incrementality; a full
        rebuild gets the canonical-correction pass back, so scan order and
        every value are bitwise equal to the dense backend again."""
        repaired, _ = repair_framework(stale_labels_framework)
        rebuilt = repaired.rebuild()
        assert rebuilt.distance_index.kind == "labels"
        assert rebuilt.distance_index.patch_count == 0
        reference = IndexFramework.build(
            rebuilt.space, backend="matrix"
        ).distance_index
        for u in reference.door_ids:
            assert list(rebuilt.distance_index.doors_by_distance(u)) == list(
                reference.doors_by_distance(u)
            )

    def test_remove_door_record_forces_rebuild(self):
        space = build_figure1()
        framework = IndexFramework.build(space, backend="labels")
        _add_shortcut_door(space)
        repaired, outcome = repair_framework(
            framework, records=[SimpleNamespace(op="remove_door")]
        )
        assert not outcome.repaired
        assert "remove_door" in outcome.reason
        assert repaired.is_fresh  # rebuilt instead
        assert repaired.distance_index.patch_count == 0

    def test_max_patches_forces_rebuild(self, stale_labels_framework):
        repaired, outcome = repair_framework(
            stale_labels_framework, max_patches=0
        )
        assert not outcome.repaired
        assert "max_patches" in outcome.reason
        assert repaired.is_fresh

    def test_rebuild_fallback_preserves_the_labels_backend(
        self, stale_labels_framework
    ):
        repaired, _ = repair_framework(stale_labels_framework, max_patches=0)
        assert repaired.distance_index.kind == "labels"

    def test_matrix_framework_has_no_repair_path(self):
        space = build_figure1()
        framework = IndexFramework.build(space, backend="matrix")
        _add_shortcut_door(space)
        repaired, outcome = repair_framework(framework)
        assert not outcome.repaired
        assert "no repair path" in outcome.reason
        assert repaired.is_fresh
        assert repaired.distance_index.kind == "matrix"

    def test_partition_only_mutation_needs_no_patch(self):
        space = build_figure1()
        framework = IndexFramework.build(space, backend="labels")
        space.add_partition(77, rectangle(40, 40, 44, 44))
        repaired, outcome = repair_framework(framework)
        assert outcome.repaired
        assert "unchanged" in outcome.reason
        assert repaired.is_fresh
        assert repaired.distance_index.patch_count == 0


class TestRepairLabels:
    def test_removed_door_returns_none(self):
        space = build_figure1()
        framework = IndexFramework.build(space, backend="labels")
        from repro.model.figure1 import D15

        space.remove_door(D15)
        graph = space.distance_graph
        graph.precompute()
        repaired, outcome = repair_labels(
            framework.distance_index, graph
        )
        assert repaired is None
        assert "removed" in outcome.reason

    def test_cone_is_reported(self):
        space = build_figure1()
        framework = IndexFramework.build(space, backend="labels")
        _add_shortcut_door(space)
        graph = space.distance_graph
        graph.precompute()
        repaired, outcome = repair_labels(framework.distance_index, graph)
        assert repaired is not None
        assert outcome.cone_size >= 0
