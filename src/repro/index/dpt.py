"""The Door-to-Partition Table (paper §IV-B).

Each record is the paper's 5-tuple ``(d_i, vPtr1, dist1, vPtr2, dist2)``:

* for a unidirectional door ``v_j → v_k``: ``vPtr1`` is null, ``dist1 = ∞``,
  ``vPtr2`` points to ``v_k``'s object bucket, ``dist2 = f_dv(d_i, v_k)``;
* for a bidirectional door between ``v_j < v_k``: ``vPtr1 → v_j`` with
  ``dist1 = f_dv(d_i, v_j)`` and ``vPtr2 → v_k`` with
  ``dist2 = f_dv(d_i, v_k)``.

The "pointers" are partition ids here (the bucket lives in the
:class:`~repro.index.objects.ObjectStore`); the distances are the f_dv
longest-reach values that let Algorithm 5 decide a whole partition lies
inside a query range without opening its bucket.  The table is sorted by
door id (its primary key), as the paper specifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import UnknownEntityError
from repro.model.distance_graph import DistanceAwareGraph


@dataclass(frozen=True)
class DptRecord:
    """One Door-to-Partition Table row.

    Attributes:
        door_id: the primary key.
        partition1: id of the first enterable partition or ``None``.
        dist1: f_dv into ``partition1`` (``inf`` when ``partition1`` is None).
        partition2: id of the second enterable partition (never ``None`` —
            every door can be entered from somewhere by construction).
        dist2: f_dv into ``partition2``.
    """

    door_id: int
    partition1: Optional[int]
    dist1: float
    partition2: int
    dist2: float

    def enterable(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(partition_id, f_dv)`` for each enterable partition."""
        if self.partition1 is not None:
            yield self.partition1, self.dist1
        yield self.partition2, self.dist2


class DoorPartitionTable:
    """All DPT records, keyed and sorted by door id."""

    def __init__(self, records: Dict[int, DptRecord]) -> None:
        self._records = dict(sorted(records.items()))

    @classmethod
    def build(cls, graph: DistanceAwareGraph) -> "DoorPartitionTable":
        """Derive the table from a distance-aware graph."""
        topology = graph.space.topology
        records: Dict[int, DptRecord] = {}
        for door_id in topology.door_ids:
            enterable = sorted(topology.enterable_partitions(door_id))
            if len(enterable) == 1:
                target = enterable[0]
                records[door_id] = DptRecord(
                    door_id,
                    partition1=None,
                    dist1=math.inf,
                    partition2=target,
                    dist2=graph.fdv(door_id, target),
                )
            else:
                first, second = enterable
                records[door_id] = DptRecord(
                    door_id,
                    partition1=first,
                    dist1=graph.fdv(door_id, first),
                    partition2=second,
                    dist2=graph.fdv(door_id, second),
                )
        return cls(records)

    def record(self, door_id: int) -> DptRecord:
        """DPT[d_i]: the record for a door."""
        try:
            return self._records[door_id]
        except KeyError:
            raise UnknownEntityError("door", door_id) from None

    def without(self, door_ids: Iterable[int]) -> "DoorPartitionTable":
        """A copy of the table with the given records dropped.

        Used by the fault-injection harness (:mod:`repro.runtime.faults`) to
        simulate lost DPT records without mutating the original table.
        """
        dropped = set(door_ids)
        return DoorPartitionTable(
            {d: r for d, r in self._records.items() if d not in dropped}
        )

    def has_record(self, door_id: int) -> bool:
        """True when the table holds a record for ``door_id``."""
        return door_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DptRecord]:
        return iter(self._records.values())

    @property
    def door_ids(self) -> List[int]:
        """All door ids, ascending (the table's sort order)."""
        return list(self._records)

    def memory_bytes(self) -> int:
        """The paper's §VI-B size accounting: 28 bytes per record
        (4 + 4 + 8 + 4 + 8)."""
        return 28 * len(self._records)
