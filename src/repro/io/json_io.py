"""JSON (de)serialisation of indoor spaces and object sets.

The format is versioned and deliberately explicit: partitions carry their
polygon ring, obstacles, kind, and staircase walking length; doors carry
their doorway segment and the *directed* D2P edges, from which the builder
reconstructs directionality exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.exceptions import SerializationError
from repro.geometry import Point, Polygon, Segment
from repro.index.objects import IndoorObject
from repro.model.builder import IndoorSpace, IndoorSpaceBuilder
from repro.model.entities import PartitionKind

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _point_to_list(point: Point) -> list:
    return [point.x, point.y, point.floor]


def _point_from_list(raw: list) -> Point:
    return Point(float(raw[0]), float(raw[1]), int(raw[2]))


def _polygon_to_list(polygon: Polygon) -> list:
    return [_point_to_list(v) for v in polygon.vertices]


def _polygon_from_list(raw: list) -> Polygon:
    return Polygon([_point_from_list(v) for v in raw])


def space_to_dict(space: IndoorSpace) -> dict:
    """A JSON-ready dict capturing the full indoor space model."""
    partitions = []
    for partition in space.partitions():
        partitions.append(
            {
                "id": partition.partition_id,
                "kind": partition.kind.value,
                "name": partition.name,
                "polygon": _polygon_to_list(partition.polygon),
                "obstacles": [_polygon_to_list(o) for o in partition.obstacles],
                "stair_length": partition.stair_length,
            }
        )
    doors = []
    for door in space.doors():
        edges = sorted(space.topology.d2p(door.door_id))
        doors.append(
            {
                "id": door.door_id,
                "name": door.name,
                "segment": [
                    _point_to_list(door.segment.start),
                    _point_to_list(door.segment.end),
                ],
                "edges": [list(edge) for edge in edges],
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "partitions": partitions,
        "doors": doors,
    }


def space_from_dict(data: dict) -> IndoorSpace:
    """Rebuild an :class:`IndoorSpace` from :func:`space_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported floor-plan format version: {version!r}"
        )
    builder = IndoorSpaceBuilder()
    try:
        for raw in data["partitions"]:
            builder.add_partition(
                int(raw["id"]),
                _polygon_from_list(raw["polygon"]),
                PartitionKind(raw["kind"]),
                name=raw.get("name", ""),
                obstacles=tuple(
                    _polygon_from_list(o) for o in raw.get("obstacles", [])
                ),
                stair_length=raw.get("stair_length"),
            )
        for raw in data["doors"]:
            start, end = raw["segment"]
            segment = Segment(_point_from_list(start), _point_from_list(end))
            edges = [tuple(edge) for edge in raw["edges"]]
            if not edges:
                raise SerializationError(f"door {raw['id']} has no edges")
            reverse = {(b, a) for a, b in edges}
            one_way = not reverse <= set(edges)
            from_p, to_p = edges[0]
            builder.add_door(
                int(raw["id"]),
                segment,
                connects=(int(from_p), int(to_p)),
                one_way=one_way,
                name=raw.get("name", ""),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed floor-plan data: {exc}") from exc
    return builder.build()


def save_space(space: IndoorSpace, path: PathLike) -> None:
    """Write a floor plan to a JSON file."""
    Path(path).write_text(json.dumps(space_to_dict(space), indent=1))


def load_space(path: PathLike) -> IndoorSpace:
    """Read a floor plan from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return space_from_dict(data)


def objects_to_dict(objects: List[IndoorObject]) -> dict:
    """A JSON-ready dict for an object set."""
    return {
        "format_version": FORMAT_VERSION,
        "objects": [
            {
                "id": obj.object_id,
                "position": _point_to_list(obj.position),
                "payload": obj.payload,
            }
            for obj in objects
        ],
    }


def objects_from_dict(data: dict) -> List[IndoorObject]:
    """Rebuild an object list from :func:`objects_to_dict` output."""
    if data.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported object-set format version: {data.get('format_version')!r}"
        )
    try:
        return [
            IndoorObject(
                int(raw["id"]),
                _point_from_list(raw["position"]),
                raw.get("payload", ""),
            )
            for raw in data["objects"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed object data: {exc}") from exc


def save_objects(objects: List[IndoorObject], path: PathLike) -> None:
    """Write an object set to a JSON file."""
    Path(path).write_text(json.dumps(objects_to_dict(objects), indent=1))


def load_objects(path: PathLike) -> List[IndoorObject]:
    """Read an object set from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return objects_from_dict(data)
