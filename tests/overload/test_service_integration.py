"""QueryService + limiter + retry-budget integration tests."""

import pytest

from repro.overload import AdaptiveConcurrencyLimiter, RetryBudget
from repro.serve import QueryKind, QueryRequest, QueryService


def range_request(position, radius=8.0):
    return QueryRequest(kind=QueryKind.RANGE, position=position, radius=radius)


@pytest.fixture
def limited_service(serve_framework):
    limiter = AdaptiveConcurrencyLimiter(
        slo_ms=250.0,
        initial_limit=8,
        min_limit=2,
        max_limit=32,
        adjust_every=4,
    )
    budget = RetryBudget(capacity=4.0)
    service = QueryService(
        serve_framework,
        workers=2,
        queue_capacity=16,
        enable_cache=False,
        limiter=limiter,
        retry_budget=budget,
    )
    service.start()
    yield service, limiter, budget
    service.stop()


class TestLimiterIntegration:
    def test_limiter_and_budget_adopt_the_service_registry(
        self, limited_service
    ):
        service, limiter, budget = limited_service
        assert limiter.metrics is service.metrics
        assert budget.metrics is service.metrics

    def test_served_requests_feed_the_limiter(
        self, limited_service, query_positions
    ):
        service, limiter, _ = limited_service
        responses = service.serve(
            [range_request(p) for p in query_positions]
        )
        assert all(r.value is not None for r in responses)
        # Every response observes its latency into the limiter window;
        # 12 fast answers against a 250 ms SLO close at least one
        # healthy 4-observation window, so the limit climbs.
        snapshot = limiter.snapshot()
        assert snapshot["increases"] >= 1
        assert limiter.limit > 8

    def test_full_quality_answers_refill_the_budget(
        self, limited_service, query_positions
    ):
        service, _, budget = limited_service
        for _ in range(3):
            assert budget.try_spend()
        drained = budget.tokens
        responses = service.serve(
            [range_request(p) for p in query_positions]
        )
        assert budget.tokens > drained
        # Only full-quality answers deposit tokens: shed or breaker
        # responses must not finance the retries that keep a degraded
        # service degraded.
        full_quality = sum(
            1 for r in responses if not r.shed and not r.breaker
        )
        assert full_quality >= 1
        assert budget.snapshot()["successes"] == full_quality

    def test_admission_occupancy_uses_the_live_limit(self, serve_framework):
        # With the limiter installed, shed decisions divide queue depth
        # by limiter.limit, not the static queue capacity: a tiny limit
        # must make a modest backlog shed where the static bound would
        # not.  Exercised indirectly: a service whose limiter is pinned
        # at min_limit=1 sheds a burst submitted before workers start.
        limiter = AdaptiveConcurrencyLimiter(
            slo_ms=0.5,
            initial_limit=1,
            min_limit=1,
            max_limit=2,
        )
        service = QueryService(
            serve_framework,
            workers=1,
            queue_capacity=64,
            enable_cache=False,
            limiter=limiter,
        )
        try:
            objects = list(service.engine.framework.objects)
            burst = [
                range_request(obj.position, radius=12.0)
                for obj in objects[:12]
            ]
            responses = service.serve(burst)
            assert any(r.shed for r in responses)
        finally:
            service.stop()
