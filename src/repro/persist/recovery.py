"""Generational snapshot storage and the crash-recovery ladder.

:class:`SnapshotStore` manages a directory of numbered snapshot generations
(``snapshot-000001.snap``, ...) plus the topology WAL (``wal.log``).  Saves
are atomic and never overwrite an older generation, so the last-known-good
snapshot survives any failed write.

:class:`RecoveryManager` is the load path a supervised service runs at
startup.  The ladder, newest generation first:

1. verify the snapshot container (whole-file digest + per-section CRC32)
   and deserialise it;
2. replay WAL records newer than the snapshot's epoch; if any applied, the
   restored indexes are stale and are rebuilt against the replayed topology
   (deterministic, so bit-identical to a from-scratch build);
3. run :func:`~repro.runtime.integrity.check_index_integrity` — checksums
   catch bit rot, the integrity invariants catch semantic damage a correct
   checksum can still encode;
4. on any failure: quarantine the file (rename to ``*.corrupt``, keeping
   the evidence) and try the previous generation;
5. with no loadable generation left, fall back to the configured fresh
   rebuild — or raise :class:`~repro.exceptions.RecoveryError`.

A corrupt snapshot is therefore *never served silently*: it is either
quarantined or the process refuses to come up.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.exceptions import (
    CorruptIndexError,
    RecoveryError,
    SnapshotCorruptError,
    StaleIndexError,
    WalCorruptError,
)
from repro.index.framework import IndexFramework
from repro.persist.snapshot import load_snapshot, read_manifest, save_snapshot
from repro.persist.wal import ReplayReport, TopologyWAL
from repro.runtime.integrity import require_index_integrity

PathLike = Union[str, Path]

_GENERATION = re.compile(r"^snapshot-(\d{6})\.snap$")


class SnapshotStore:
    """A directory of generational snapshots plus the topology WAL.

    Args:
        directory: storage root (created if missing).
        keep: completed generations retained by :meth:`prune`
            (the newest ``keep`` survive).
    """

    def __init__(self, directory: PathLike, keep: int = 2) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._keep = keep

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def wal_path(self) -> Path:
        """Where the store's topology WAL lives."""
        return self.directory / "wal.log"

    def wal(self, fsync: bool = True) -> TopologyWAL:
        """The store's topology WAL (opened fresh on each call)."""
        return TopologyWAL(self.wal_path, fsync=fsync)

    def path_for(self, generation: int) -> Path:
        """The snapshot file of one generation."""
        return self.directory / f"snapshot-{generation:06d}.snap"

    def generations(self) -> List[int]:
        """All generation numbers present, ascending."""
        found = []
        for entry in self.directory.iterdir():
            match = _GENERATION.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest(self) -> Optional[int]:
        """The newest generation number, or ``None`` when empty."""
        generations = self.generations()
        return generations[-1] if generations else None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def save(self, framework: IndexFramework, wal_seq: int = 0) -> Path:
        """Write the next generation atomically; never touches older ones."""
        latest = self.latest()
        generation = 1 if latest is None else latest + 1
        return save_snapshot(
            framework, self.path_for(generation), wal_seq=wal_seq
        )

    def checkpoint(self, framework: IndexFramework) -> Path:
        """Save a new generation that covers the whole WAL, then truncate
        the WAL — the durable equivalent of a clean rebuild.

        A framework whose space mutated after its indexes were built is
        rebuilt first: persisting stale indexes next to the new topology
        would produce a self-contradictory (hence unloadable) snapshot and
        silently drop the WAL the truncation discards.
        """
        if not framework.is_fresh:
            framework = framework.rebuild()
        wal = self.wal()
        path = self.save(framework, wal_seq=wal.last_seq)
        wal.truncate()
        self.prune()
        return path

    def quarantine(self, generation: int) -> Path:
        """Rename a damaged generation to ``*.corrupt`` (evidence kept,
        never loaded again)."""
        source = self.path_for(generation)
        target = source.with_suffix(".snap.corrupt")
        source.rename(target)
        return target

    def quarantine_wal(self) -> Path:
        """Rename a damaged WAL to ``wal.log.corrupt`` so recovery can
        proceed from snapshots alone (the loss is reported, never silent)."""
        target = self.wal_path.with_suffix(".log.corrupt")
        self.wal_path.rename(target)
        return target

    def prune(self) -> List[Path]:
        """Delete all but the newest ``keep`` generations; returns what was
        removed."""
        generations = self.generations()
        removed = []
        for generation in generations[: -self._keep]:
            path = self.path_for(generation)
            path.unlink()
            removed.append(path)
        return removed

    def stale_temp_files(self) -> List[Path]:
        """Leftover ``.tmp.<pid>`` files from writers that died mid-write.

        These are never loadable (the rename never happened); recovery
        reports and removes them.
        """
        return sorted(self.directory.glob("*.snap.tmp.*"))


class RecoverySource(enum.Enum):
    """Where the recovered framework came from."""

    SNAPSHOT = "snapshot"
    SNAPSHOT_WAL = "snapshot+wal"
    REBUILD = "rebuild"


@dataclass
class RecoveryReport:
    """Everything :meth:`RecoveryManager.recover` did.

    Attributes:
        framework: the restored (or rebuilt) index framework.
        source: which rung of the ladder produced it.
        generation: the snapshot generation served (``None`` for a rebuild).
        replay: the WAL replay outcome (``None`` when no WAL applied).
        quarantined: damaged files renamed to ``*.corrupt`` on the way.
        removed_partials: dead writers' temp files that were cleaned up.
        notes: human-readable trail of what happened, in order.
    """

    framework: IndexFramework
    source: RecoverySource
    generation: Optional[int] = None
    replay: Optional[ReplayReport] = None
    quarantined: List[Path] = field(default_factory=list)
    removed_partials: List[Path] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)


class RecoveryManager:
    """The supervised load path: verify, replay, quarantine, fall back.

    Args:
        store: the generational snapshot store to recover from.
        rebuild: zero-argument callable producing a fresh
            :class:`IndexFramework` when no generation is loadable
            (omit to make that case fatal).
        verify_integrity: also run the §IV invariant checks on every
            restored framework (recommended; checksums alone cannot catch
            semantic corruption that was persisted faithfully).
    """

    def __init__(
        self,
        store: SnapshotStore,
        rebuild: Optional[Callable[[], IndexFramework]] = None,
        verify_integrity: bool = True,
    ) -> None:
        self.store = store
        self._rebuild = rebuild
        self._verify_integrity = verify_integrity

    def recover(self) -> RecoveryReport:
        """Run the ladder; returns a report whose framework is safe to serve.

        Raises:
            RecoveryError: nothing loadable and no rebuild fallback.
        """
        quarantined: List[Path] = []
        notes: List[str] = []

        removed = []
        for partial in self.store.stale_temp_files():
            partial.unlink()
            removed.append(partial)
            notes.append(f"removed partial write {partial.name}")

        for generation in reversed(self.store.generations()):
            outcome = self._try_generation(generation, notes, quarantined)
            if outcome is None:
                quarantined.append(self.store.quarantine(generation))
                notes.append(
                    f"quarantined generation {generation} -> "
                    f"{quarantined[-1].name}"
                )
                continue
            framework, replay = outcome
            source = (
                RecoverySource.SNAPSHOT_WAL
                if replay is not None and replay.applied
                else RecoverySource.SNAPSHOT
            )
            return RecoveryReport(
                framework=framework,
                source=source,
                generation=generation,
                replay=replay,
                quarantined=quarantined,
                removed_partials=removed,
                notes=notes,
            )

        if self._rebuild is None:
            raise RecoveryError(
                "no loadable snapshot generation and no rebuild fallback "
                f"configured (quarantined: {[p.name for p in quarantined]})"
            )
        notes.append("no loadable generation; rebuilding from scratch")
        framework = self._rebuild()
        return RecoveryReport(
            framework=framework,
            source=RecoverySource.REBUILD,
            quarantined=quarantined,
            removed_partials=removed,
            notes=notes,
        )

    def _try_generation(
        self, generation: int, notes: List[str], quarantined: List[Path]
    ) -> Optional[Tuple[IndexFramework, Optional[ReplayReport]]]:
        """Load + replay + verify one generation; ``None`` means damaged."""
        path = self.store.path_for(generation)
        try:
            framework, _ = load_snapshot(path)
        except SnapshotCorruptError as exc:
            notes.append(f"generation {generation}: {exc}")
            return None

        replay: Optional[ReplayReport] = None
        if self.store.wal_path.exists():
            try:
                wal = self.store.wal()
                replay = wal.replay(framework.space)
            except WalCorruptError as exc:
                # The log, not the snapshot, is damaged.  Quarantine the
                # log (keeping the evidence, reporting the loss) and fall
                # back to the snapshot alone — replay may have partially
                # mutated the space, so reload from the verified file.
                quarantined.append(self.store.quarantine_wal())
                notes.append(
                    f"WAL corrupt, quarantined to {quarantined[-1].name}: "
                    f"{exc}"
                )
                try:
                    framework, _ = load_snapshot(path)
                except SnapshotCorruptError as reload_exc:
                    notes.append(f"generation {generation}: {reload_exc}")
                    return None
                replay = None
            else:
                if replay.applied:
                    notes.append(
                        f"generation {generation}: replayed {replay.applied} "
                        f"WAL record(s) to epoch "
                        f"{framework.space.topology_epoch}"
                    )
                if replay.dropped_tail and wal.repair_torn_tail():
                    # A torn final record is harmless to read past, but a
                    # future append after it would look like mid-log rot.
                    # Truncate it now, while we know it is only a tail.
                    notes.append(
                        "truncated torn WAL tail left by a crash mid-append"
                    )

        if not framework.is_fresh:
            # WAL replay (or a snapshot saved mid-mutation) moved the
            # topology past the persisted indexes; the deterministic
            # builders make this bit-identical to a from-scratch build.
            framework = framework.rebuild()

        if self._verify_integrity:
            try:
                require_index_integrity(framework, include_stale=True)
            except (CorruptIndexError, StaleIndexError) as exc:
                notes.append(
                    f"generation {generation}: integrity check failed: {exc}"
                )
                return None
        return framework, replay

    def verify(self, path: PathLike) -> dict:
        """Checksum-verify one snapshot file and return its manifest
        (convenience passthrough for CLI tooling)."""
        return read_manifest(path)
