"""Overload-control test fixtures (reuses the serving-layer building)."""

from tests.serve.conftest import (  # noqa: F401
    query_positions,
    serve_framework,
)
