"""Deterministic chaos campaigns with correctness oracles.

The robustness layers of this repo — the degradation ladder
(:mod:`repro.runtime`), crash-safe persistence (:mod:`repro.persist`), and
the supervised serving stack (:mod:`repro.serve`) — each have unit tests,
but unit tests exercise one failure at a time.  This package composes them:
a :class:`CampaignRunner` replays a seeded query workload through a full
:class:`~repro.serve.lifecycle.SupervisedQueryService` while a
:class:`~repro.chaos.plan.FaultPlan` injects scripted faults (index
corruption, snapshot bit-rot, torn WAL crashes, topology mutations,
latency), and three oracle families judge every served answer:

* differential — recompute on a pristine engine, compare per rung
  guarantee;
* metamorphic — d_E ≤ d_I, symmetry on undirected spaces, the triangle
  inequality;
* epoch — topology-epoch linearizability.

Every incident is classified (:class:`~repro.chaos.report.IncidentClass`);
a single ``SILENT_WRONG_ANSWER`` or ``UNRECOVERED`` fails the campaign.
Everything derives from one seed, so the same config reproduces the same
incident digest byte-for-byte (``repro chaos replay``).  See
``docs/chaos.md``.
"""

from repro.chaos.injectors import (
    LatencyDistanceIndex,
    apply_topology_action,
    install_latency,
)
from repro.chaos.oracles import (
    EPS,
    DifferentialOracle,
    EpochOracle,
    OracleViolation,
    euclidean_bound_violation,
    space_is_undirected,
    symmetry_violation,
    triangle_violation,
)
from repro.chaos.plan import (
    ACTIONS,
    INJECTING_ACTIONS,
    FaultAction,
    FaultPlan,
    flash_crowd_plan,
    shard_reconfig_plan,
    shard_standard_plan,
    standard_plan,
)
from repro.chaos.report import (
    FAILING_CLASSES,
    CampaignReport,
    Incident,
    IncidentClass,
    incident_digest,
)
from repro.chaos.runner import (
    BUILDINGS,
    CampaignConfig,
    CampaignRunner,
)

__all__ = [
    "ACTIONS",
    "BUILDINGS",
    "CampaignConfig",
    "CampaignReport",
    "CampaignRunner",
    "DifferentialOracle",
    "EPS",
    "EpochOracle",
    "FAILING_CLASSES",
    "FaultAction",
    "FaultPlan",
    "INJECTING_ACTIONS",
    "Incident",
    "IncidentClass",
    "LatencyDistanceIndex",
    "OracleViolation",
    "apply_topology_action",
    "euclidean_bound_violation",
    "flash_crowd_plan",
    "incident_digest",
    "install_latency",
    "shard_reconfig_plan",
    "shard_standard_plan",
    "space_is_undirected",
    "standard_plan",
    "symmetry_violation",
    "triangle_violation",
]
