"""Tests for probabilistic threshold queries over uncertain objects."""

import pytest

from repro.exceptions import ModelError, QueryError
from repro.geometry import Point, rectangle
from repro.model import IndoorSpaceBuilder
from repro.uncertain import UncertainObject, probabilistic_knn, probabilistic_range


@pytest.fixture(scope="module")
def open_room():
    builder = IndoorSpaceBuilder()
    builder.add_partition(1, rectangle(0, 0, 40, 10))
    return builder.build()


class TestUncertainObject:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ModelError):
            UncertainObject(1, ((Point(0, 0), 0.5), (Point(1, 1), 0.4)))

    def test_probabilities_must_be_positive(self):
        with pytest.raises(ModelError):
            UncertainObject(1, ((Point(0, 0), 1.2), (Point(1, 1), -0.2)))

    def test_needs_samples(self):
        with pytest.raises(ModelError):
            UncertainObject(1, ())

    def test_certain_constructor(self):
        obj = UncertainObject.certain(1, Point(3, 3), payload="tag")
        assert obj.sample_count == 1
        assert obj.samples[0] == (Point(3, 3), 1.0)

    def test_expected_position(self):
        obj = UncertainObject(
            1, ((Point(0, 0), 0.5), (Point(4, 0), 0.25), (Point(0, 8), 0.25))
        )
        assert obj.expected_position().approx_equals(Point(1.0, 2.0))

    def test_expected_position_across_floors_raises(self):
        obj = UncertainObject(
            1, ((Point(0, 0, 0), 0.5), (Point(0, 0, 1), 0.5))
        )
        with pytest.raises(ModelError):
            obj.expected_position()


class TestProbabilisticRange:
    def test_probability_mass_within_radius(self, open_room):
        obj = UncertainObject(
            1, ((Point(5, 5), 0.6), (Point(20, 5), 0.3), (Point(39, 5), 0.1))
        )
        query = Point(4, 5)
        results = probabilistic_range(open_room, [obj], query, 5.0, 0.5)
        assert results == [(1, pytest.approx(0.6))]

    def test_threshold_filters(self, open_room):
        obj = UncertainObject(1, ((Point(5, 5), 0.4), (Point(30, 5), 0.6)))
        query = Point(4, 5)
        assert probabilistic_range(open_room, [obj], query, 5.0, 0.5) == []
        assert probabilistic_range(open_room, [obj], query, 5.0, 0.4) == [
            (1, pytest.approx(0.4))
        ]

    def test_sorted_by_probability(self, open_room):
        a = UncertainObject(1, ((Point(5, 5), 0.5), (Point(30, 5), 0.5)))
        b = UncertainObject.certain(2, Point(6, 5))
        results = probabilistic_range(open_room, [a, b], Point(4, 5), 5.0, 0.1)
        assert [oid for oid, _ in results] == [2, 1]

    def test_validation(self, open_room):
        with pytest.raises(QueryError):
            probabilistic_range(open_room, [], Point(4, 5), -1.0, 0.5)
        with pytest.raises(QueryError):
            probabilistic_range(open_room, [], Point(4, 5), 1.0, 0.0)


class TestProbabilisticKnn:
    def test_certain_objects_reduce_to_plain_knn(self, open_room):
        objects = [
            UncertainObject.certain(1, Point(5, 5)),
            UncertainObject.certain(2, Point(10, 5)),
            UncertainObject.certain(3, Point(30, 5)),
        ]
        results = probabilistic_knn(open_room, objects, Point(4, 5), 2, 0.5)
        assert results == [(1, pytest.approx(1.0)), (2, pytest.approx(1.0))]

    def test_two_object_hand_computation(self, open_room):
        # Object 1 is at 1 m (p=0.5) or 20 m (p=0.5); object 2 is surely at
        # 10 m.  P(1 in 1NN) = 0.5, P(2 in 1NN) = 0.5.
        query = Point(4, 5)
        objects = [
            UncertainObject(1, ((Point(5, 5), 0.5), (Point(24, 5), 0.5))),
            UncertainObject.certain(2, Point(14, 5)),
        ]
        results = probabilistic_knn(open_room, objects, query, 1, 0.3)
        as_dict = dict(results)
        assert as_dict[1] == pytest.approx(0.5)
        assert as_dict[2] == pytest.approx(0.5)

    def test_three_way_joint_worlds(self, open_room):
        # Object 1: 2 m (0.5) / 12 m (0.5); object 2: 6 m certain;
        # object 3: 4 m (0.5) / 30 m (0.5).  k=1 winner per world:
        #   1@2  & 3@4  -> 1   (0.25)
        #   1@2  & 3@30 -> 1   (0.25)
        #   1@12 & 3@4  -> 3   (0.25)
        #   1@12 & 3@30 -> 2   (0.25)
        query = Point(0, 5)
        objects = [
            UncertainObject(1, ((Point(2, 5), 0.5), (Point(12, 5), 0.5))),
            UncertainObject.certain(2, Point(6, 5)),
            UncertainObject(3, ((Point(4, 5), 0.5), (Point(30, 5), 0.5))),
        ]
        results = dict(probabilistic_knn(open_room, objects, query, 1, 0.2))
        assert results[1] == pytest.approx(0.5)
        assert results[2] == pytest.approx(0.25)
        assert results[3] == pytest.approx(0.25)

    def test_monte_carlo_approximates_exact(self, open_room, monkeypatch):
        import repro.uncertain.queries as queries

        query = Point(0, 5)
        objects = [
            UncertainObject(1, ((Point(2, 5), 0.5), (Point(12, 5), 0.5))),
            UncertainObject.certain(2, Point(6, 5)),
            UncertainObject(3, ((Point(4, 5), 0.5), (Point(30, 5), 0.5))),
        ]
        exact = dict(probabilistic_knn(open_room, objects, query, 1, 0.01))
        monkeypatch.setattr(queries, "EXACT_WORLD_LIMIT", 1)
        approx = dict(
            probabilistic_knn(
                open_room, objects, query, 1, 0.01,
                monte_carlo_worlds=8_000, seed=3,
            )
        )
        for object_id, probability in exact.items():
            assert approx[object_id] == pytest.approx(probability, abs=0.03)

    def test_membership_mass_sums_to_k(self, open_room):
        query = Point(0, 5)
        objects = [
            UncertainObject(1, ((Point(2, 5), 0.3), (Point(12, 5), 0.7))),
            UncertainObject(2, ((Point(6, 5), 0.6), (Point(25, 5), 0.4))),
            UncertainObject.certain(3, Point(9, 5)),
        ]
        for k in (1, 2, 3):
            results = probabilistic_knn(open_room, objects, query, k, 1e-9)
            assert sum(p for _, p in results) == pytest.approx(min(k, 3))

    def test_empty_and_validation(self, open_room):
        assert probabilistic_knn(open_room, [], Point(4, 5), 1, 0.5) == []
        with pytest.raises(QueryError):
            probabilistic_knn(
                open_room, [UncertainObject.certain(1, Point(5, 5))],
                Point(4, 5), 0, 0.5,
            )
        with pytest.raises(QueryError):
            probabilistic_knn(
                open_room, [UncertainObject.certain(1, Point(5, 5))],
                Point(4, 5), 1, 1.5,
            )

    def test_walls_shape_the_probabilities(self):
        """Walking distance (not Euclidean) drives the probabilities: an
        object Euclidean-near but behind a wall loses."""
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        from repro.geometry import Segment

        builder.add_door(1, Segment(Point(10, 8.5), Point(10, 9.5)), connects=(1, 2))
        space = builder.build()
        query = Point(9, 1)
        objects = [
            # Euclidean 2 m away, but the walk rounds through the far door.
            UncertainObject.certain(1, Point(11, 1)),
            # Euclidean 7 m away, same room: wins.
            UncertainObject.certain(2, Point(2, 1)),
        ]
        results = probabilistic_knn(space, objects, query, 1, 0.5)
        assert results == [(2, pytest.approx(1.0))]
