"""Tests for the topology write-ahead log (repro.persist.wal)."""

import numpy as np
import pytest

from repro.exceptions import ModelError, WalCorruptError
from repro.geometry import Point, Segment, rectangle
from repro.index import IndexFramework
from repro.model.figure1 import D21, HALLWAY, ROOM_11, build_figure1
from repro.persist import TopologyWAL, WalRecorder, load_snapshot, save_snapshot
from repro.persist.wal import WalRecord


@pytest.fixture
def wal(tmp_path):
    return TopologyWAL(tmp_path / "wal.log", fsync=False)


NEW_ROOM = 30
NEW_DOOR = 31
NEW_ROOM_POLYGON = rectangle(0, 10, 4, 14)
NEW_DOOR_GEOMETRY = Segment(Point(1.6, 10), Point(2.4, 10))


def _mutate_figure1(target):
    """The shared mutation script: a new room off room 11, one door gone.

    ``target`` is anything exposing the space mutation API — the raw
    :class:`IndoorSpace` (direct mutation) or a :class:`WalRecorder`
    (durable mutation); both must produce the same topology.
    """
    target.add_partition(NEW_ROOM, NEW_ROOM_POLYGON, name="annex")
    target.add_door(
        NEW_DOOR, NEW_DOOR_GEOMETRY, connects=(NEW_ROOM, ROOM_11),
        name="annex door",
    )
    target.remove_door(D21)


class TestRecorder:
    def test_log_precedes_apply(self, wal):
        space = build_figure1()
        recorder = WalRecorder(space, wal)
        recorder.remove_door(D21)
        records = list(wal.records())
        assert [r.op for r in records] == ["remove_door"]
        assert records[0].seq == 1
        assert records[0].epoch == space.topology_epoch == 1
        assert D21 not in space.door_ids

    def test_failed_mutation_rolls_back_the_record(self, wal):
        space = build_figure1()
        recorder = WalRecorder(space, wal)
        recorder.remove_door(D21)
        with pytest.raises(ModelError):
            # Duplicate door id: the apply fails after the append, so the
            # record must be physically removed or replay would refuse the
            # log (its epoch never happened).
            recorder.add_door(
                D21 - 10, Segment(Point(0, 0), Point(1, 0)),
                connects=(HALLWAY, ROOM_11),
            )
        assert [r.op for r in wal.records()] == ["remove_door"]
        assert wal.last_seq == 1
        # The log is still coherent: a fresh space replays cleanly.
        TopologyWAL(wal.path, fsync=False).replay(build_figure1())

    def test_recorder_returns_the_model_objects(self, wal):
        space = build_figure1()
        recorder = WalRecorder(space, wal)
        door = recorder.remove_door(D21)
        assert door.door_id == D21


class TestReplay:
    def test_replay_is_epoch_aware_and_idempotent(self, wal):
        space = build_figure1()
        _mutate_figure1(WalRecorder(space, wal))

        fresh = build_figure1()
        report = wal.replay(fresh)
        assert (report.applied, report.skipped) == (3, 0)
        assert fresh.topology_epoch == space.topology_epoch == 3
        assert set(fresh.door_ids) == set(space.door_ids)

        again = wal.replay(fresh)
        assert (again.applied, again.skipped) == (0, 3)

    def test_replay_rejects_mismatched_history(self, wal):
        # A log whose first un-skipped record targets an epoch more than
        # one ahead belongs to a different snapshot lineage.
        space = build_figure1()
        wal.append("remove_door", {"id": D21}, epoch=5)
        with pytest.raises(WalCorruptError, match="mismatch"):
            wal.replay(space)

    def test_replay_wraps_inapplicable_records(self, wal):
        wal.append("remove_door", {"id": 9999}, epoch=1)
        with pytest.raises(WalCorruptError, match="does not apply"):
            wal.replay(build_figure1())

    def test_truncate_drops_everything(self, wal):
        space = build_figure1()
        WalRecorder(space, wal).remove_door(D21)
        wal.truncate()
        assert list(wal.records()) == []
        assert wal.last_seq == 0
        assert not wal.path.exists()


class TestLogDamage:
    def _three_records(self, wal):
        _mutate_figure1(WalRecorder(build_figure1(), wal))
        return wal.path.read_bytes().splitlines(keepends=True)

    def test_torn_tail_is_tolerated(self, wal):
        lines = self._three_records(wal)
        wal.path.write_bytes(b"".join(lines[:2]) + lines[2][: len(lines[2]) // 2])
        survivors = list(TopologyWAL(wal.path, fsync=False).records())
        assert [r.seq for r in survivors] == [1, 2]
        report = TopologyWAL(wal.path, fsync=False).replay(build_figure1())
        assert report.dropped_tail
        assert report.applied == 2

    def test_damage_before_tail_is_fatal(self, wal):
        lines = self._three_records(wal)
        damaged = bytearray(lines[1])
        damaged[len(damaged) // 2] ^= 0xFF
        wal.path.write_bytes(lines[0] + bytes(damaged) + lines[2])
        with pytest.raises(WalCorruptError, match="followed by further"):
            list(TopologyWAL(wal.path, fsync=False).records())

    def test_sequence_jump_is_fatal(self, wal):
        lines = self._three_records(wal)
        wal.path.write_bytes(lines[0] + lines[2])  # seq 1 then seq 3
        with pytest.raises(WalCorruptError, match="sequence jumps"):
            list(TopologyWAL(wal.path, fsync=False).records())

    def test_append_resumes_after_existing_records(self, wal):
        self._three_records(wal)
        resumed = TopologyWAL(wal.path, fsync=False)
        assert resumed.last_seq == 3
        record = resumed.append("remove_door", {"id": 1}, epoch=4)
        assert record.seq == 4

    def test_unknown_op_refused(self, wal):
        with pytest.raises(WalCorruptError, match="unknown WAL op"):
            wal.append("drop_table", {}, epoch=1)

    def test_rollback_requires_matching_tail(self, wal):
        space = build_figure1()
        recorder = WalRecorder(space, wal)
        recorder.remove_door(D21)
        stale = WalRecord(seq=1, epoch=1, op="remove_door", args={"id": 999})
        with pytest.raises(WalCorruptError, match="does not match"):
            wal.rollback(stale)


class TestReplayEquivalence:
    """Snapshot + WAL replay must equal a from-scratch build, bit for bit."""

    def _assert_bit_identical(self, recovered, scratch):
        assert recovered.space.topology_epoch == scratch.space.topology_epoch
        assert (
            recovered.distance_index.door_ids
            == scratch.distance_index.door_ids
        )
        assert np.array_equal(
            recovered.distance_index.md2d, scratch.distance_index.md2d
        )
        assert np.array_equal(
            recovered.distance_index.midx, scratch.distance_index.midx
        )
        assert list(recovered.dpt) == list(scratch.dpt)

    def test_figure1(self, figure1_framework, tmp_path):
        objects = list(figure1_framework.objects)
        path = save_snapshot(figure1_framework, tmp_path / "s.snap")
        wal = TopologyWAL(tmp_path / "wal.log", fsync=False)
        _mutate_figure1(WalRecorder(figure1_framework.space, wal))

        restored, _ = load_snapshot(path)
        replay = wal.replay(restored.space)
        assert replay.applied == 3
        assert not restored.is_fresh
        recovered = restored.rebuild()

        scratch_space = build_figure1()
        _mutate_figure1(scratch_space)
        scratch = IndexFramework.build(scratch_space, objects)
        self._assert_bit_identical(recovered, scratch)

    def test_multi_floor_building(self, building_framework, tmp_path):
        objects = list(building_framework.objects)
        space = building_framework.space
        floor = max(p.floor for p in space.partitions())
        annex_id = max(space.partition_ids) + 100
        annex_door = max(space.door_ids) + 100
        polygon = rectangle(-6, 0, -1, 4, floor=floor)
        geometry = Segment(Point(-1, 1.5, floor), Point(-1, 2.5, floor))
        neighbour = next(
            p.partition_id for p in space.partitions_on_floor(floor)
        )

        def mutate(target):
            target.add_partition(annex_id, polygon, name="annex")
            target.add_door(
                annex_door, geometry, connects=(annex_id, neighbour)
            )

        path = save_snapshot(building_framework, tmp_path / "s.snap")
        wal = TopologyWAL(tmp_path / "wal.log", fsync=False)
        mutate(WalRecorder(space, wal))

        restored, _ = load_snapshot(path)
        assert wal.replay(restored.space).applied == 2
        recovered = restored.rebuild()

        from repro.synthetic import BuildingConfig, generate_building

        scratch_space = generate_building(
            BuildingConfig(floors=3, rooms_per_floor=6)
        ).space
        mutate(scratch_space)
        scratch = IndexFramework.build(scratch_space, objects)
        self._assert_bit_identical(recovered, scratch)
