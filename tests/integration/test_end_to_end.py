"""End-to-end integration tests across every subsystem: generate → persist
→ reload → index → query → verify, plus temporal and routing layers on top
of the same spaces."""

import math
import random

import numpy as np
import pytest

from repro import (
    IndexFramework,
    Point,
    QueryEngine,
    pt2pt_distance,
)
from repro.distance import pt2pt_distance_refined
from repro.index import DistanceIndexMatrix
from repro.io import (
    load_distance_index,
    load_objects,
    load_space,
    save_distance_index,
    save_objects,
    save_space,
)
from repro.model.validation import validate_space
from repro.queries import brute_force_knn, brute_force_range
from repro.routing import evacuation_report
from repro.synthetic import (
    BuildingConfig,
    build_object_store,
    generate_building,
    random_positions,
)
from repro.temporal import DoorSchedule, TemporalIndoorSpace, TimeInterval


@pytest.fixture(scope="module")
def building():
    return generate_building(BuildingConfig(floors=3, rooms_per_floor=8))


class TestPersistencePipeline:
    def test_full_round_trip_preserves_queries(self, building, tmp_path):
        space = building.space
        plan_path = tmp_path / "building.json"
        objects_path = tmp_path / "objects.json"
        matrix_path = tmp_path / "matrix.npz"

        store = build_object_store(building, 120, seed=5)
        save_space(space, plan_path)
        save_objects(list(store), objects_path)
        index = DistanceIndexMatrix.build(space.distance_graph)
        save_distance_index(index, matrix_path)

        # A fresh process would do exactly this:
        restored_space = load_space(plan_path)
        restored_objects = load_objects(objects_path)
        restored_index = load_distance_index(matrix_path)

        np.testing.assert_allclose(restored_index.md2d, index.md2d)
        engine_a = QueryEngine.for_space(space)
        engine_a.add_objects(list(store))
        engine_b = QueryEngine.for_space(restored_space)
        engine_b.add_objects(restored_objects)

        for q in random_positions(building, 5, seed=77):
            assert engine_a.range_query(q, 18.0) == engine_b.range_query(q, 18.0)
            knn_a = [d for _, d in engine_a.knn(q, k=7)]
            knn_b = [d for _, d in engine_b.knn(q, k=7)]
            assert knn_a == pytest.approx(knn_b)

    def test_restored_plan_is_lint_clean(self, building, tmp_path):
        plan_path = tmp_path / "plan.json"
        save_space(building.space, plan_path)
        assert validate_space(load_space(plan_path)) == []


class TestQueriesAgainstOracle:
    def test_synthetic_building_queries_match_brute_force(self, building):
        store = build_object_store(building, 80, seed=9)
        framework = IndexFramework.build(building.space).with_objects(store)
        for q in random_positions(building, 4, seed=13):
            assert framework is not None
            from repro.queries import knn_query, range_query

            assert range_query(framework, q, 25.0) == brute_force_range(
                building.space, store, q, 25.0
            )
            got = [d for _, d in knn_query(framework, q, 9)]
            expected = [
                d for _, d in brute_force_knn(building.space, store, q, 9)
            ]
            assert got == pytest.approx(expected)


class TestTemporalOverSyntheticBuilding:
    def test_night_lockdown_of_a_staircase(self, building):
        space = building.space
        schedule = DoorSchedule()
        # Close every staircase door overnight (open 6:00-22:00).
        for staircase_id in building.staircase_ids:
            for door_id in space.topology.doors_of(staircase_id):
                schedule.set_open(door_id, [TimeInterval(6.0, 22.0)])
        temporal = TemporalIndoorSpace(space, schedule)

        ground = Point(2.5, 2.0, 0)
        upstairs = Point(2.5, 2.0, 1)
        day = temporal.distance(12.0, ground, upstairs)
        assert day == pytest.approx(pt2pt_distance(space, ground, upstairs))
        assert math.isinf(temporal.distance(23.0, ground, upstairs))

    def test_evacuation_report_follows_the_schedule(self, building):
        space = building.space
        ground_hallway = building.hallway_on_floor(0)
        report = evacuation_report(space, [ground_hallway])
        assert report.is_safe

        schedule = DoorSchedule()
        for staircase_id in building.staircase_ids:
            for door_id in space.topology.doors_of(staircase_id):
                schedule.set_closed(door_id)
        night = TemporalIndoorSpace(space, schedule).snapshot(0.0)
        night_report = evacuation_report(night, [ground_hallway])
        assert not night_report.is_safe
        # Everything above the ground floor is trapped.
        upper = {
            p.partition_id
            for p in space.partitions()
            if p.floor > 0 and p.partition_id not in building.staircase_ids
        }
        assert upper <= set(night_report.trapped)


class TestEngineOnFigure1AndSynthetic:
    def test_engine_distance_agrees_with_free_functions(self, building):
        engine = QueryEngine.for_space(building.space)
        rng = random.Random(3)
        pts = random_positions(building, 6, seed=21)
        for a, b in zip(pts[::2], pts[1::2]):
            assert engine.distance(a, b) == pytest.approx(
                pt2pt_distance_refined(building.space, a, b)
            )

    def test_advanced_queries_compose(self, building):
        store = build_object_store(building, 40, seed=2)
        framework = IndexFramework.build(building.space).with_objects(store)
        engine = QueryEngine(framework)
        q = random_positions(building, 1, seed=4)[0]
        ranked = engine.range_query_with_distances(q, 30.0)
        assert sorted(oid for oid, _ in ranked) == engine.range_query(q, 30.0)
        pair = engine.closest_pair()
        assert pair is not None
        join = engine.distance_join(pair[2] + 1e-6)
        assert (pair[0], pair[1]) in {(a, b) for a, b, _ in join}
