"""The topology write-ahead log: door/partition mutations between snapshots.

Rebuilding M_d2d after every ``add_door`` is exactly what a production
deployment schedules *around*, not inside, the mutation path.  The WAL makes
mutations durable the moment they happen: each record is appended (and
fsynced) *before* the in-memory space mutates, so recovery after a crash is
always ``load snapshot + replay WAL`` up to the current epoch.

Format: one JSON object per line.  Each record carries a monotone ``seq``,
the topology epoch the space reaches *after* applying it, the operation and
its arguments, and a CRC32 over the record's canonical payload.  A torn
final record (the process died mid-append) is tolerated and dropped; a
damaged record *followed by valid ones* means the log itself rotted and
raises :class:`~repro.exceptions.WalCorruptError`.

Replay is epoch-aware: records whose ``epoch`` is at or below the space's
current epoch are skipped (the snapshot already contains them), and after
each applied record the space's epoch must equal the record's — any drift
means the log and snapshot describe different histories.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.exceptions import InjectedCrashError, WalCorruptError
from repro.geometry import Point, Polygon, Segment
from repro.model.builder import IndoorSpace
from repro.model.entities import PartitionKind
from repro.runtime import crashpoints

PathLike = Union[str, Path]

#: Operations the log understands.
WAL_OPS = ("add_partition", "add_door", "remove_door")


def _point_to_list(point: Point) -> list:
    return [point.x, point.y, point.floor]


def _point_from_list(raw: list) -> Point:
    return Point(float(raw[0]), float(raw[1]), int(raw[2]))


def _geometry_to_payload(geometry) -> dict:
    if isinstance(geometry, Point):
        return {"point": _point_to_list(geometry)}
    if isinstance(geometry, Segment):
        return {
            "segment": [
                _point_to_list(geometry.start),
                _point_to_list(geometry.end),
            ]
        }
    raise WalCorruptError(
        f"door geometry must be a Point or Segment, got {type(geometry)!r}"
    )


def _geometry_from_payload(payload: dict):
    if "point" in payload:
        return _point_from_list(payload["point"])
    start, end = payload["segment"]
    return Segment(_point_from_list(start), _point_from_list(end))


@dataclass(frozen=True)
class WalRecord:
    """One durable topology mutation.

    Attributes:
        seq: monotone record number (1-based within one log file).
        epoch: the space's topology epoch *after* this mutation applies.
        op: one of :data:`WAL_OPS`.
        args: the operation's serialised arguments.
    """

    seq: int
    epoch: int
    op: str
    args: dict

    def payload(self) -> bytes:
        """Canonical bytes the record's CRC32 covers."""
        return json.dumps(
            {"seq": self.seq, "epoch": self.epoch, "op": self.op,
             "args": self.args},
            sort_keys=True,
        ).encode("utf-8")

    def to_dict(self) -> dict:
        """JSON/pipe-safe representation (the reconfig delta wire format)."""
        return {"seq": self.seq, "epoch": self.epoch, "op": self.op,
                "args": self.args}

    @staticmethod
    def from_dict(raw: dict) -> "WalRecord":
        """Inverse of :meth:`to_dict`."""
        return WalRecord(
            int(raw["seq"]), int(raw["epoch"]), str(raw["op"]),
            dict(raw["args"]),
        )

    def to_line(self) -> bytes:
        """Serialise as one JSON log line (CRC32 over :meth:`payload`)."""
        body = {"seq": self.seq, "epoch": self.epoch, "op": self.op,
                "args": self.args, "crc32": zlib.crc32(self.payload())}
        return json.dumps(body, sort_keys=True).encode("utf-8") + b"\n"


@dataclass(frozen=True)
class ReplayReport:
    """What :meth:`TopologyWAL.replay` did.

    Attributes:
        applied: records applied to the space.
        skipped: records already covered by the snapshot's epoch.
        dropped_tail: a torn final record was discarded.
        last_seq: sequence number of the last valid record in the log
            (0 when the log is empty).
    """

    applied: int
    skipped: int
    dropped_tail: bool
    last_seq: int


class TopologyWAL:
    """An append-only, CRC-guarded topology mutation log.

    Args:
        path: log file (created on first append).
        fsync: force every appended record to stable storage before the
            in-memory mutation proceeds (disable only in tests).
    """

    def __init__(self, path: PathLike, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._next_seq = self._scan_last_seq() + 1

    def _scan_last_seq(self) -> int:
        last = 0
        for record in self.records():
            last = record.seq
        return last

    # ------------------------------------------------------------------
    # Append side
    # ------------------------------------------------------------------
    def append(self, op: str, args: dict, epoch: int) -> WalRecord:
        """Durably append one record; returns it.

        Two chaos crash points live here (see
        :mod:`repro.runtime.crashpoints`): ``wal.append.torn`` writes half
        the record line and then dies — the classic torn tail — and
        ``wal.append.before_fsync`` dies after the OS-level flush but
        before fsync.
        """
        if op not in WAL_OPS:
            raise WalCorruptError(f"unknown WAL op {op!r}")
        record = WalRecord(self._next_seq, epoch, op, dict(args))
        line = record.to_line()
        if crashpoints.consume("wal.append.torn"):
            with open(self.path, "ab") as handle:
                handle.write(line[: len(line) // 2])
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
            raise InjectedCrashError("wal.append.torn")
        with open(self.path, "ab") as handle:
            handle.write(line)
            handle.flush()
            crashpoints.fire("wal.append.before_fsync")
            if self._fsync:
                os.fsync(handle.fileno())
        self._next_seq += 1
        return record

    def repair_torn_tail(self) -> bool:
        """Truncate a torn final record (a crash mid-append) off the file.

        A torn tail is tolerated by readers, but a subsequent *append*
        would put a valid record after the damage — which readers rightly
        treat as fatal rot.  Recovery calls this before the log is written
        to again.  Returns ``True`` when a tail was removed; damage before
        the tail is left for the quarantine path to handle.
        """
        try:
            records, dropped = self._read_all()
        except WalCorruptError:
            return False
        if not dropped:
            return False
        valid_bytes = sum(len(r.to_line()) for r in records)
        with open(self.path, "rb+") as handle:
            handle.truncate(valid_bytes)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        self._next_seq = (records[-1].seq if records else 0) + 1
        return True

    def truncate(self) -> None:
        """Drop every record — call right after a snapshot that contains
        them all (the snapshot's manifest records the covered ``wal_seq``)."""
        if self.path.exists():
            self.path.unlink()
        self._next_seq = 1

    def rollback(self, record: WalRecord) -> None:
        """Physically remove the final record — the mutation it announced
        failed to apply, so the logical transaction aborted.

        Only the most recent record can be rolled back, and the file tail
        must still match it byte-for-byte.
        """
        if record.seq != self._next_seq - 1:
            raise WalCorruptError(
                f"can only roll back the final record (seq "
                f"{self._next_seq - 1}), not seq {record.seq}"
            )
        line = record.to_line()
        with open(self.path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size < len(line):
                raise WalCorruptError(f"{self.path}: tail shorter than record")
            handle.seek(size - len(line))
            if handle.read(len(line)) != line:
                raise WalCorruptError(
                    f"{self.path}: tail does not match the record to roll back"
                )
            handle.truncate(size - len(line))
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        self._next_seq -= 1

    @property
    def last_seq(self) -> int:
        """Sequence number the most recent append produced (0 when empty)."""
        return self._next_seq - 1

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def records(self) -> Iterator[WalRecord]:
        """Yield every valid record in order.

        Tolerates a torn final record; raises :class:`WalCorruptError` when
        damage is followed by further valid data.
        """
        records, _ = self._read_all()
        return iter(records)

    def _read_all(self) -> Tuple[List[WalRecord], bool]:
        if not self.path.exists():
            return [], False
        raw_lines = self.path.read_bytes().split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()
        records: List[WalRecord] = []
        bad_at: Optional[int] = None
        for index, line in enumerate(raw_lines):
            record = self._parse_line(line)
            if record is None:
                bad_at = index
                break
            if records and record.seq != records[-1].seq + 1:
                raise WalCorruptError(
                    f"{self.path}: record sequence jumps from "
                    f"{records[-1].seq} to {record.seq}"
                )
            records.append(record)
        if bad_at is not None and bad_at < len(raw_lines) - 1:
            # Damage *before* the tail cannot be a torn append.
            raise WalCorruptError(
                f"{self.path}: damaged record at line {bad_at + 1} is "
                "followed by further records; the log is corrupt"
            )
        return records, bad_at is not None

    @staticmethod
    def _parse_line(line: bytes) -> Optional[WalRecord]:
        try:
            body = json.loads(line.decode("utf-8"))
            record = WalRecord(
                int(body["seq"]), int(body["epoch"]), body["op"],
                body["args"],
            )
            if body["crc32"] != zlib.crc32(record.payload()):
                return None
            if record.op not in WAL_OPS:
                return None
            return record
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, space: IndoorSpace) -> ReplayReport:
        """Apply every record newer than the space's epoch, in order.

        The space ends at the log's final epoch; after each applied record
        the space's epoch must match the record's (each mutation bumps it by
        exactly one), otherwise the log and the snapshot describe different
        histories and :class:`WalCorruptError` is raised.
        """
        records, dropped = self._read_all()
        applied = skipped = 0
        for record in records:
            if record.epoch <= space.topology_epoch:
                skipped += 1
                continue
            if record.epoch != space.topology_epoch + 1:
                raise WalCorruptError(
                    f"{self.path}: record seq={record.seq} targets epoch "
                    f"{record.epoch} but the space is at "
                    f"{space.topology_epoch}; a snapshot/WAL generation "
                    "mismatch"
                )
            try:
                _apply(space, record)
            except WalCorruptError:
                raise
            except Exception as exc:
                raise WalCorruptError(
                    f"{self.path}: record seq={record.seq} ({record.op}) "
                    f"does not apply to the restored space: {exc}"
                ) from exc
            if space.topology_epoch != record.epoch:
                raise WalCorruptError(
                    f"{self.path}: applying seq={record.seq} left the space "
                    f"at epoch {space.topology_epoch}, expected {record.epoch}"
                )
            applied += 1
        last = records[-1].seq if records else 0
        return ReplayReport(applied, skipped, dropped, last)


def apply_record(space: IndoorSpace, record: WalRecord) -> None:
    """Apply one record to a space whose epoch is exactly ``record.epoch - 1``.

    This is the single mutation interpreter shared by WAL replay and the
    sharded tier's reconfiguration protocol (workers apply the prepare
    delta to a private copy of their space with it).  The same epoch
    contract as :meth:`TopologyWAL.replay` holds: applying the record must
    leave the space at ``record.epoch``.
    """
    if record.epoch != space.topology_epoch + 1:
        raise WalCorruptError(
            f"record seq={record.seq} targets epoch {record.epoch} but the "
            f"space is at {space.topology_epoch}"
        )
    _apply(space, record)
    if space.topology_epoch != record.epoch:
        raise WalCorruptError(
            f"applying seq={record.seq} left the space at epoch "
            f"{space.topology_epoch}, expected {record.epoch}"
        )


def replay_records(space: IndoorSpace, records: List[WalRecord]) -> int:
    """Apply every record newer than the space's epoch, in order.

    File-less counterpart of :meth:`TopologyWAL.replay` for deltas that
    arrived over a pipe rather than from disk.  Returns the number of
    records applied; records at or below the space's epoch are skipped
    (idempotent re-delivery is expected under retries).
    """
    applied = 0
    for record in records:
        if record.epoch <= space.topology_epoch:
            continue
        apply_record(space, record)
        applied += 1
    return applied


def _apply(space: IndoorSpace, record: WalRecord) -> None:
    args = record.args
    if record.op == "add_partition":
        space.add_partition(
            int(args["id"]),
            Polygon([_point_from_list(v) for v in args["polygon"]]),
            PartitionKind(args["kind"]),
            name=args.get("name", ""),
            obstacles=tuple(
                Polygon([_point_from_list(v) for v in ring])
                for ring in args.get("obstacles", [])
            ),
            stair_length=args.get("stair_length"),
        )
    elif record.op == "add_door":
        space.add_door(
            int(args["id"]),
            _geometry_from_payload(args["geometry"]),
            connects=(int(args["connects"][0]), int(args["connects"][1])),
            one_way=bool(args.get("one_way", False)),
            name=args.get("name", ""),
        )
    else:  # remove_door
        space.remove_door(int(args["id"]))


class WalRecorder:
    """Write-ahead mutation facade over an :class:`IndoorSpace`.

    Mirrors the space's mutation API; each call durably appends the WAL
    record first, then applies the mutation.  A crash between the two is
    safe: replay skips nothing (the epoch check sees the mutation as not yet
    applied) and re-applies it.

    Example::

        recorder = WalRecorder(space, TopologyWAL(dir / "wal.log"))
        recorder.remove_door(21)          # logged, then applied
    """

    def __init__(self, space: IndoorSpace, wal: TopologyWAL) -> None:
        self.space = space
        self.wal = wal
        #: The record the most recent successful mutation appended — the
        #: sharded tier reads it back as the prepare delta for the round
        #: it is about to run.  ``None`` until the first mutation lands.
        self.last_record: Optional[WalRecord] = None

    def add_partition(
        self,
        partition_id: int,
        polygon: Polygon,
        kind: PartitionKind = PartitionKind.ROOM,
        name: str = "",
        obstacles: Tuple[Polygon, ...] = (),
        stair_length: Optional[float] = None,
    ):
        """Log then register a new partition (see
        :meth:`IndoorSpace.add_partition`)."""
        record = self.wal.append(
            "add_partition",
            {
                "id": partition_id,
                "polygon": [_point_to_list(v) for v in polygon.vertices],
                "kind": kind.value,
                "name": name,
                "obstacles": [
                    [_point_to_list(v) for v in o.vertices] for o in obstacles
                ],
                "stair_length": stair_length,
            },
            epoch=self.space.topology_epoch + 1,
        )
        try:
            result = self.space.add_partition(
                partition_id, polygon, kind, name, tuple(obstacles),
                stair_length,
            )
        except BaseException:
            self.wal.rollback(record)
            raise
        self.last_record = record
        return result

    def add_door(
        self,
        door_id: int,
        geometry,
        connects: Tuple[int, int],
        one_way: bool = False,
        name: str = "",
    ):
        """Log then open a new door (see :meth:`IndoorSpace.add_door`)."""
        record = self.wal.append(
            "add_door",
            {
                "id": door_id,
                "geometry": _geometry_to_payload(geometry),
                "connects": [int(connects[0]), int(connects[1])],
                "one_way": one_way,
                "name": name,
            },
            epoch=self.space.topology_epoch + 1,
        )
        try:
            result = self.space.add_door(
                door_id, geometry, connects, one_way, name
            )
        except BaseException:
            self.wal.rollback(record)
            raise
        self.last_record = record
        return result

    def remove_door(self, door_id: int):
        """Log then remove a door (see :meth:`IndoorSpace.remove_door`)."""
        record = self.wal.append(
            "remove_door", {"id": door_id},
            epoch=self.space.topology_epoch + 1,
        )
        try:
            result = self.space.remove_door(door_id)
        except BaseException:
            self.wal.rollback(record)
            raise
        self.last_record = record
        return result
